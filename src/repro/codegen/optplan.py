"""Per-module optimization plans and the constant-folding transforms.

The pass framework (:mod:`repro.passes`) analyzes each elaborated
module and condenses its conclusions into one :class:`OptPlan` per
specialization; codegen consumes the plan without ever mutating the
shared :class:`~repro.ir.netlist.ModuleIR` (which analyzer caches and
pickled artifacts alias).

The transforms here are width-exact: every literal introduced carries
the width the replaced read had, and constant subtrees collapse with
the same width rules :class:`~repro.codegen.exprgen.ExprGen` applies at
runtime — so optimized and plain code are bit-identical by
construction.  ``$signed``/``$unsigned`` wrappers block folding (their
signedness changes how an *enclosing* compare or shift lowers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..hdl import ast_nodes as ast
from .exprgen import mask_of

OPT_LEVELS = ("none", "basic", "full")


@dataclass(frozen=True)
class OptPlan:
    """Everything codegen needs to emit the optimized variant.

    * ``consts`` — comb wires proven constant; reads are replaced with
      sized literals (values already masked to the declared width).
    * ``dead_assigns`` / ``dead_blocks`` — schedule-index sets whose
      results nothing live reads; their emission is skipped.
    * ``guard_blocks`` — comb blocks that get a per-block input-change
      guard in ``eval_seq`` (two appended state slots each, in
      ``guard_blocks`` order); ``guard_inputs`` maps each guarded block
      to the ordered residual read list forming its key.
    * ``skip_children`` — instance indices whose subtree is pure
      (stateless): their ``eval_seq``/``tick`` calls are elided.
    """

    level: str = "none"
    consts: Dict[str, int] = field(default_factory=dict)
    const_widths: Dict[str, int] = field(default_factory=dict)
    dead_assigns: Tuple[int, ...] = ()
    dead_blocks: Tuple[int, ...] = ()
    guard_blocks: Tuple[int, ...] = ()
    guard_inputs: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    skip_children: Tuple[int, ...] = ()

    @property
    def is_noop(self) -> bool:
        return (
            not self.consts
            and not self.dead_assigns
            and not self.dead_blocks
            and not self.guard_blocks
            and not self.skip_children
        )


# ----------------------------------------------------------------------------
# Width-exact constant folding
# ----------------------------------------------------------------------------


def num_width(num: ast.Num) -> int:
    """The width ExprGen.width_of assigns this literal."""
    if num.width is not None:
        return num.width
    return max(32, num.value.bit_length())


def num_value(num: ast.Num) -> int:
    """The masked value ExprGen.gen emits for this literal."""
    return num.value & mask_of(num_width(num))


def _fold_unary(op: str, operand: ast.Num, line: int):
    width = num_width(operand)
    value = num_value(operand)
    if op == "~":
        return ast.Num(value=(~value) & mask_of(width), width=width, line=line)
    if op == "-":
        return ast.Num(value=(-value) & mask_of(width), width=width, line=line)
    if op == "!":
        return ast.Num(value=0 if value else 1, width=1, line=line)
    if op == "&":
        return ast.Num(
            value=1 if value == mask_of(width) else 0, width=1, line=line
        )
    if op == "|":
        return ast.Num(value=1 if value else 0, width=1, line=line)
    if op == "^":
        return ast.Num(value=bin(value).count("1") & 1, width=1, line=line)
    return None


def _fold_binary(op: str, left: ast.Num, right: ast.Num, line: int):
    wl, wr = num_width(left), num_width(right)
    lv, rv = num_value(left), num_value(right)
    wide = max(wl, wr)
    if op in ("+", "-", "*"):
        value = {"+": lv + rv, "-": lv - rv, "*": lv * rv}[op]
        return ast.Num(value=value & mask_of(wide), width=wide, line=line)
    if op == "/":
        return ast.Num(
            value=(lv // rv) if rv else mask_of(wide), width=wide, line=line
        )
    if op == "%":
        return ast.Num(value=(lv % rv) if rv else lv, width=wide, line=line)
    if op in ("<<", "<<<"):
        value = (lv << rv) & mask_of(wl) if rv < wl + 1 else 0
        return ast.Num(value=value, width=wl, line=line)
    if op in (">>", ">>>"):
        # Bare literals are unsigned (is_signed needs a $signed node,
        # and $signed wrappers block folding entirely).
        return ast.Num(value=lv >> rv, width=wl, line=line)
    if op in ("==", "==="):
        return ast.Num(value=int(lv == rv), width=1, line=line)
    if op in ("!=", "!=="):
        return ast.Num(value=int(lv != rv), width=1, line=line)
    if op in ("<", "<=", ">", ">="):
        result = {
            "<": lv < rv, "<=": lv <= rv, ">": lv > rv, ">=": lv >= rv
        }[op]
        return ast.Num(value=int(result), width=1, line=line)
    if op == "&&":
        return ast.Num(value=int(bool(lv) and bool(rv)), width=1, line=line)
    if op == "||":
        return ast.Num(value=int(bool(lv) or bool(rv)), width=1, line=line)
    if op in ("&", "|", "^"):
        value = {"&": lv & rv, "|": lv | rv, "^": lv ^ rv}[op]
        return ast.Num(value=value, width=wide, line=line)
    return None


def substitute_expr(
    expr: ast.Expr, consts: Dict[str, int], widths: Dict[str, int]
) -> ast.Expr:
    """Replace reads of constant signals with sized literals and
    collapse the constant subtrees that creates.  Returns a new tree
    (or ``expr`` itself when nothing applies); never mutates."""
    if isinstance(expr, ast.Num):
        return expr
    if isinstance(expr, ast.Id):
        if expr.name in consts:
            return ast.Num(
                value=consts[expr.name], width=widths[expr.name],
                line=expr.line,
            )
        return expr
    if isinstance(expr, ast.Unary):
        operand = substitute_expr(expr.operand, consts, widths)
        if isinstance(operand, ast.Num):
            folded = _fold_unary(expr.op, operand, expr.line)
            if folded is not None:
                return folded
        return ast.Unary(op=expr.op, operand=operand, line=expr.line)
    if isinstance(expr, ast.Binary):
        left = substitute_expr(expr.left, consts, widths)
        right = substitute_expr(expr.right, consts, widths)
        if isinstance(left, ast.Num) and isinstance(right, ast.Num):
            folded = _fold_binary(expr.op, left, right, expr.line)
            if folded is not None:
                return folded
        return ast.Binary(op=expr.op, left=left, right=right, line=expr.line)
    if isinstance(expr, ast.Ternary):
        cond = substitute_expr(expr.cond, consts, widths)
        if_true = substitute_expr(expr.if_true, consts, widths)
        if_false = substitute_expr(expr.if_false, consts, widths)
        if (
            isinstance(cond, ast.Num)
            and isinstance(if_true, ast.Num)
            and isinstance(if_false, ast.Num)
        ):
            # Ternary width is max(arms); keep it on the survivor.
            width = max(num_width(if_true), num_width(if_false))
            chosen = if_true if num_value(cond) else if_false
            return ast.Num(value=num_value(chosen), width=width,
                           line=expr.line)
        return ast.Ternary(cond=cond, if_true=if_true, if_false=if_false,
                           line=expr.line)
    if isinstance(expr, ast.Concat):
        parts = [substitute_expr(p, consts, widths) for p in expr.parts]
        if all(isinstance(p, ast.Num) for p in parts):
            total = sum(num_width(p) for p in parts)
            value, offset = 0, total
            for part in parts:
                offset -= num_width(part)
                value |= num_value(part) << offset
            return ast.Num(value=value, width=total, line=expr.line)
        return ast.Concat(parts=parts, line=expr.line)
    if isinstance(expr, ast.Repl):
        count = substitute_expr(expr.count, consts, widths)
        value = substitute_expr(expr.value, consts, widths)
        if (
            isinstance(count, ast.Num)
            and isinstance(value, ast.Num)
            and count.value >= 1
        ):
            vw = num_width(value)
            factor = sum(1 << (i * vw) for i in range(count.value))
            return ast.Num(value=num_value(value) * factor,
                           width=count.value * vw, line=expr.line)
        return ast.Repl(count=count, value=value, line=expr.line)
    if isinstance(expr, ast.Index):
        index = substitute_expr(expr.index, consts, widths)
        if expr.base in consts and isinstance(index, ast.Num):
            return ast.Num(
                value=(consts[expr.base] >> num_value(index)) & 1,
                width=1, line=expr.line,
            )
        return ast.Index(base=expr.base, index=index, line=expr.line)
    if isinstance(expr, ast.Slice):
        msb = substitute_expr(expr.msb, consts, widths)
        lsb = substitute_expr(expr.lsb, consts, widths)
        if (
            expr.base in consts
            and isinstance(msb, ast.Num)
            and isinstance(lsb, ast.Num)
            and msb.value >= lsb.value
        ):
            width = msb.value - lsb.value + 1
            return ast.Num(
                value=(consts[expr.base] >> lsb.value) & mask_of(width),
                width=width, line=expr.line,
            )
        return ast.Slice(base=expr.base, msb=msb, lsb=lsb, line=expr.line)
    if isinstance(expr, ast.IndexedPart):
        start = substitute_expr(expr.start, consts, widths)
        width_e = substitute_expr(expr.width, consts, widths)
        if (
            expr.base in consts
            and isinstance(start, ast.Num)
            and isinstance(width_e, ast.Num)
            and width_e.value > 0
        ):
            width = width_e.value
            shift = (
                num_value(start) if expr.ascending
                else num_value(start) - (width - 1)
            )
            if shift >= 0:  # negative shifts fault at runtime; keep those
                return ast.Num(
                    value=(consts[expr.base] >> shift) & mask_of(width),
                    width=width, line=expr.line,
                )
        return ast.IndexedPart(base=expr.base, start=start, width=width_e,
                               ascending=expr.ascending, line=expr.line)
    if isinstance(expr, ast.SysCall):
        return ast.SysCall(
            func=expr.func,
            args=[substitute_expr(a, consts, widths) for a in expr.args],
            line=expr.line,
        )
    return expr


# ----------------------------------------------------------------------------
# Statement-level: substitution plus unreachable-branch pruning
# ----------------------------------------------------------------------------


def optimize_stmts(
    stmts: List[ast.Stmt], consts: Dict[str, int], widths: Dict[str, int]
) -> List[ast.Stmt]:
    """Substitute constants through a statement body and drop branches
    whose condition folds to a literal.  Used both by codegen (the code
    that is emitted) and by the dead-logic pass (the reads that remain)
    — one implementation so the two can never disagree."""
    out: List[ast.Stmt] = []
    for stmt in stmts:
        out.extend(_opt_stmt(stmt, consts, widths))
    return out


def _opt_lvalue(lval: ast.LValue, consts, widths) -> ast.LValue:
    return ast.LValue(
        name=lval.name,
        index=(substitute_expr(lval.index, consts, widths)
               if lval.index is not None else None),
        msb=(substitute_expr(lval.msb, consts, widths)
             if lval.msb is not None else None),
        lsb=(substitute_expr(lval.lsb, consts, widths)
             if lval.lsb is not None else None),
        line=lval.line,
    )


def _opt_stmt(stmt: ast.Stmt, consts, widths) -> List[ast.Stmt]:
    if isinstance(stmt, ast.NonBlocking):
        return [ast.NonBlocking(
            target=_opt_lvalue(stmt.target, consts, widths),
            value=substitute_expr(stmt.value, consts, widths),
            line=stmt.line,
        )]
    if isinstance(stmt, ast.Blocking):
        return [ast.Blocking(
            target=_opt_lvalue(stmt.target, consts, widths),
            value=substitute_expr(stmt.value, consts, widths),
            line=stmt.line,
        )]
    if isinstance(stmt, ast.If):
        cond = substitute_expr(stmt.cond, consts, widths)
        if isinstance(cond, ast.Num):
            live = stmt.then_body if num_value(cond) else stmt.else_body
            return optimize_stmts(live, consts, widths)
        return [ast.If(
            cond=cond,
            then_body=optimize_stmts(stmt.then_body, consts, widths),
            else_body=optimize_stmts(stmt.else_body, consts, widths),
            line=stmt.line,
        )]
    if isinstance(stmt, ast.Case):
        subject = substitute_expr(stmt.subject, consts, widths)
        arms = [
            ([substitute_expr(lbl, consts, widths) for lbl in labels], body)
            for labels, body in stmt.arms
        ]
        all_const = isinstance(subject, ast.Num) and all(
            isinstance(lbl, ast.Num) for labels, _ in arms for lbl in labels
        )
        if all_const:
            sv = num_value(subject)
            default = None
            for labels, body in arms:
                if not labels:
                    default = body
                    continue
                if any(num_value(lbl) == sv for lbl in labels):
                    return optimize_stmts(body, consts, widths)
            if default is not None:
                return optimize_stmts(default, consts, widths)
            return []
        return [ast.Case(
            subject=subject,
            arms=[
                (labels, optimize_stmts(body, consts, widths))
                for labels, body in arms
            ],
            line=stmt.line,
        )]
    return [stmt]
