"""Code generation: netlist IR -> executable Python.

Two generators implement the two compilation philosophies the paper
contrasts (Fig. 4):

* :mod:`repro.codegen.pygen` — the LiveSim style.  Each module
  specialization compiles to one shared, hot-swappable code object;
  every instance reuses it.
* :mod:`repro.codegen.flatgen` — the Verilator style.  The whole
  hierarchy is flattened and code is replicated per instance (optionally
  fully inlined into one function), trading compile time and code
  footprint for intra-instance optimization.

:mod:`repro.codegen.cost` derives static instruction/branch/memory
costs from the IR for the host performance model (Table VII).
"""

from .cost import DesignCost, ModuleCost, design_cost, module_cost
from .pygen import CompiledModule, compile_module, compile_netlist

__all__ = [
    "CompiledModule",
    "compile_netlist",
    "compile_module",
    "ModuleCost",
    "module_cost",
    "DesignCost",
    "design_cost",
]
