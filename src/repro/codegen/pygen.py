"""Shared-module code generation (the LiveSim compilation model).

Each module specialization compiles to exactly one set of functions,
regardless of how many instances exist.  Instances share the code
object and differ only in their state arrays, reproducing the paper's
Fig. 4d: *"Each module is only compiled once, which drastically reduces
the amount of code that needs to be compiled."*

Evaluation is two-phase, the standard cycle-simulator structure:

* ``eval_out(state, children, *comb_inputs) -> outputs`` — a *pure*
  function of the instance state and the inputs that combinationally
  affect outputs (see :mod:`repro.ir.dataflow`).  Results are memoized
  per instance on the argument tuple, so repeated calls within one
  cycle cost a tuple compare.  Sequential-only inputs (resets, stalls,
  enables) are NOT arguments — which is what lets a pipeline with
  feedback (branch redirect into fetch, writeback into decode)
  schedule in one ordered pass with no fixed-point iteration.
* ``eval_seq(state, children, *all_inputs)`` — runs once per cycle
  with every input settled: recomputes the combinational values it
  needs (child outputs come from the memoized ``eval_out``), computes
  pending register values and memory writes, and recurses into
  children's ``eval_seq``.
* ``tick(state, children)`` — commits pending values and invalidates
  the memo (the clock edge).

State array layout per instance (a plain Python list)::

    [0 .. NR)          current register values
    [NR .. 2*NR)       pending (next-cycle) values
    [2*NR]             eval_out memo key (args tuple or None)
    [2*NR + 1]         eval_out memo value (outputs tuple)
    [2*NR+2 + j]       memory j contents (list of ints)
    [2*NR+2+NM + j]    memory j pending writes (list of (addr, value))

Anything that mutates state outside ``tick`` (snapshot restore, pokes,
direct memory writes) must invalidate the memo — see
:meth:`repro.sim.stage.StageInst.invalidate_cache`.
"""

from __future__ import annotations

import hashlib
import linecache
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from .. import obs
from ..hdl import ast_nodes as ast
from ..hdl.consteval import stmt_reads_writes
from ..hdl.errors import CodegenError
from ..ir.netlist import ModuleIR, Netlist
from .emitter import FunctionEmitter, block
from .exprgen import ExprGen, Resolver, StmtGen, mask_of
from .optplan import OptPlan, optimize_stmts, substitute_expr

CACHE_SLOTS = 2


@dataclass
class MemSpec:
    name: str
    width: int
    depth: int
    slot: int  # state index of the contents list
    pending_slot: int  # state index of the pending-writes list
    poison_slot: int = -1  # word-poison bitmap slot (sanitized builds only)


@dataclass
class CompiledModule:
    """A hot-swappable compiled module specialization.

    The Python analogue of one of the paper's shared-object libraries:
    a self-contained unit that instances point at and that hot reload
    can replace in flight.
    """

    key: str
    name: str
    ir: ModuleIR
    eval_out_fn: Callable
    eval_seq_fn: Callable
    tick_fn: Callable
    source: str
    inputs: Tuple[str, ...]
    comb_input_ports: Tuple[str, ...]  # the eval_out argument list
    outputs: Tuple[str, ...]
    num_regs: int
    state_size: int
    reg_slots: Dict[str, int]  # register name -> current-value slot
    reg_widths: Dict[str, int]
    mem_specs: Dict[str, MemSpec]
    child_insts: Tuple[Tuple[str, str], ...]  # (instance name, child key)
    interface_fp: str
    source_hash: str
    compile_seconds: float
    mux_style: str
    # Sanitized builds (repro.sanitize) extend the state layout past
    # ``base = 2*NR + CACHE_SLOTS + 2*NM`` with:
    #   [base]          register poison bitmap (bit i <-> reg slot i)
    #   [base+1 + j]    memory j word-poison bitmap
    #   [base+1 + NM]   per-cycle nonblocking-write dict
    sanitize: bool = False
    # Optimized builds (opt=full) append ``sens_slot_count`` guard
    # pairs after the sanitizer region (or directly after base when
    # not sanitized):
    #   [sens_base + 2*g]      guard g's input-key tuple (or None)
    #   [sens_base + 2*g + 1]  guard g's cached output tuple
    opt: str = "none"
    sens_slot_count: int = 0
    # Proof-driven elision accounting (repro.sanitize.elide): total
    # instrumentation sites this build considered, and how many the
    # stable-tier value facts removed or downgraded.
    san_sites: int = 0
    san_elided: int = 0
    # Registers proven constant from reset (env tier): hot reload
    # initializes swap-introduced registers from this map instead of
    # poisoning them.
    reg_const_init: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_key_slot(self) -> int:
        return 2 * self.num_regs

    @property
    def sanitize_base(self) -> int:
        return 2 * self.num_regs + CACHE_SLOTS + 2 * len(self.mem_specs)

    @property
    def sens_base(self) -> int:
        return self.sanitize_base + (
            len(self.mem_specs) + 2 if self.sanitize else 0
        )

    @property
    def reg_poison_slot(self) -> int:
        return self.sanitize_base if self.sanitize else -1

    @property
    def nw_slot(self) -> int:
        if not self.sanitize:
            return -1
        return self.sanitize_base + 1 + len(self.mem_specs)

    def make_state(self) -> list:
        state: list = [0] * (2 * self.num_regs)
        state.extend([None, None])  # eval_out memo (key, value)
        ordered = sorted(self.mem_specs.values(), key=lambda m: m.slot)
        for spec in ordered:
            state.append([0] * spec.depth)
        for spec in ordered:
            state.append([])
        if self.sanitize:
            # Cold start is defined power-on zero: all poison clear.
            state.append(0)  # register poison bitmap
            state.extend(0 for _ in ordered)  # per-memory word poison
            state.append({})  # nonblocking writes this cycle
        for _ in range(self.sens_slot_count):
            state.extend([None, None])  # guard (key, outputs) — cold miss
        return state


# ----------------------------------------------------------------------------
# Module compilation
# ----------------------------------------------------------------------------


class _ModuleCompiler:
    def __init__(self, ir: ModuleIR, netlist: Netlist, mux_style: str,
                 sanitize: bool = False, plan: Optional[OptPlan] = None,
                 elision=None):
        self._ir = ir
        self._netlist = netlist
        self._mux_style = mux_style
        self._sanitize = sanitize
        # ElisionPlan (repro.sanitize.elide), sanitized builds only.
        self._elide = elision if sanitize else None
        self._san_sites = 0
        self._san_elided = 0
        self._emit = FunctionEmitter()
        self._comb_ports = list(ir.comb_input_ports)
        if ir.needs_fixpoint:
            # A genuine comb loop: memoizing would freeze the iteration
            # the runtime uses to settle it, and seq-only inputs cannot
            # be deferred reliably — fall back to the conservative ABI.
            self._comb_ports = list(ir.inputs)
            plan = None  # comb locals round-trip the memo slot: no opt
        self._plan = plan
        self._seq_phase = False
        self._dead_assigns: Set[int] = set()
        self._dead_blocks: Set[int] = set()
        self._guard_pos: Dict[int, int] = {}
        self._opt_bodies: Dict[Tuple[str, int], list] = {}
        if plan is not None:
            self._dead_assigns = set(plan.dead_assigns)
            self._dead_blocks = set(plan.dead_blocks)
            self._guard_pos = {
                blk: pos for pos, blk in enumerate(plan.guard_blocks)
            }
            # Pre-transform block bodies once: constant substitution plus
            # static branch pruning, shared between eval_out and eval_seq.
            for i, comb in enumerate(ir.comb_blocks):
                self._opt_bodies[("comb", i)] = optimize_stmts(
                    comb.body, plan.consts, plan.const_widths
                )
            for i, seq in enumerate(ir.seq_blocks):
                self._opt_bodies[("seq", i)] = optimize_stmts(
                    seq.body, plan.consts, plan.const_widths
                )
        base = 2 * ir.num_regs + CACHE_SLOTS
        nm = len(ir.memories)
        sbase = base + 2 * nm  # start of the sanitizer slots
        self._poison_slot = sbase if sanitize else -1
        self._nw_slot = sbase + 1 + nm if sanitize else -1
        self._sens_base = sbase + (nm + 2 if sanitize else 0)
        # Instrumentation sites (module, signal, file-absolute line),
        # emitted as a literal _SAN_I table inside the generated source
        # so store rehydration carries them for free.
        self._san_infos: List[Tuple[str, str, int]] = []
        self._mem_slot: Dict[str, MemSpec] = {}
        for i, mem in enumerate(
            sorted(ir.memories.values(), key=lambda m: m.mem_index)
        ):
            self._mem_slot[mem.name] = MemSpec(
                name=mem.name,
                width=mem.width,
                depth=mem.depth,
                slot=base + i,
                pending_slot=base + nm + i,
                poison_slot=sbase + 1 + i if sanitize else -1,
            )

    @property
    def comb_ports(self) -> List[str]:
        return self._comb_ports

    @property
    def sens_slot_count(self) -> int:
        return len(self._plan.guard_blocks) if self._plan is not None else 0

    # -- optimization plan plumbing -------------------------------------------

    def _expr(self, expr):
        """The expression codegen actually emits: constant-substituted
        (and folded) under an active plan, verbatim otherwise."""
        if self._plan is None:
            return expr
        return substitute_expr(
            expr, self._plan.consts, self._plan.const_widths
        )

    def _comb_body_stmts(self, index: int) -> list:
        if self._plan is None:
            return self._ir.comb_blocks[index].body
        return self._opt_bodies[("comb", index)]

    def _seq_body_stmts(self, index: int) -> list:
        if self._plan is None:
            return self._ir.seq_blocks[index].body
        return self._opt_bodies[("seq", index)]

    def _skip_children(self) -> Set[int]:
        if self._plan is None:
            return set()
        return set(self._plan.skip_children)

    # -- name resolution ------------------------------------------------------

    def _resolver(self, available_inputs: Optional[Set[str]] = None) -> Resolver:
        """``available_inputs`` restricts which input ports may be read;
        others lower to literal 0.

        Used by eval_out, whose arguments are only the comb-relevant
        inputs: the per-output dataflow guarantees that any value
        tainted by a zeroed input cannot reach an output (if it could,
        the input would have been comb-relevant), so the zeros only
        flow into dead-for-phase-1 values that eval_seq recomputes with
        the real inputs.
        """
        ir = self._ir

        def signal_ref(name: str) -> str:
            sig = ir.signals.get(name)
            if sig is None:
                raise CodegenError(f"unknown signal {name!r} in {ir.name}")
            if sig.kind == "input":
                if available_inputs is not None and name not in available_inputs:
                    return "0"
                return f"i_{name}"
            if sig.state_index is not None:
                return f"s[{sig.state_index}]"
            return f"v_{name}"

        def signal_width(name: str) -> Optional[int]:
            sig = ir.signals.get(name)
            return sig.width if sig is not None else None

        def memory_ref(name: str) -> Optional[str]:
            spec = self._mem_slot.get(name)
            return f"_m_{name}" if spec is not None else None

        resolver = Resolver(
            signal_ref=signal_ref,
            signal_width=signal_width,
            memory_ref=memory_ref,
            memory_width=lambda n: self._mem_slot[n].width,
            memory_depth=lambda n: self._mem_slot[n].depth,
        )
        if self._sanitize:
            self._attach_sanitize_hooks(resolver)
        return resolver

    # -- sanitizer instrumentation (repro.sanitize) ---------------------------

    def _seq_writer_blocks(self) -> Dict[str, Set[int]]:
        """Signal -> seq block ids that may write it, over the ORIGINAL
        bodies (optimization only removes writes, so this map is an
        over-approximation of the emitted writers — safe for the
        single-writer nw fast path)."""
        cached = getattr(self, "_seq_writers", None)
        if cached is None:
            cached = {}
            for bid, blk in enumerate(self._ir.seq_blocks):
                _, writes = stmt_reads_writes(blk.body)
                for name in writes:
                    cached.setdefault(name, set()).add(bid)
            self._seq_writers = cached
        return cached

    def _san_info(self, signal: str, line: int) -> str:
        """Register one instrumentation site; returns its table ref."""
        self._san_infos.append((self._ir.name, signal, line))
        return f"_SAN_I[{len(self._san_infos) - 1}]"

    def _attach_sanitize_hooks(self, resolver: Resolver) -> None:
        ir = self._ir
        elide = self._elide

        def reg_read_hook(name: str, ref: str, line: int) -> Optional[str]:
            sig = ir.signals.get(name)
            if sig is None or sig.state_index is None:
                return None  # inputs and comb wires carry no poison
            self._san_sites += 1
            call = (
                f"_san.rr(s[{self._poison_slot}], {sig.state_index}, "
                f"{ref}, {self._san_info(name, line)})"
            )
            if elide is not None and elide.rr_fast:
                # Inline poison-bit fast path: the hook runs exactly
                # when the bit is set (when it would report/trap), so
                # findings and hit counts are preserved bit-for-bit.
                return (
                    f"{ref} if not s[{self._poison_slot}] >> "
                    f"{sig.state_index} & 1 else {call}"
                )
            return call

        def mem_read_hook(name: str, index_code: str, line: int) -> str:
            spec = self._mem_slot[name]
            self._san_sites += 1
            info = self._san_info(name, line)
            if elide is not None and elide.rr_fast:
                # In-bounds and unpoisoned is the common case; the hook
                # returns mem[index % depth], which equals mem[t] when
                # t < depth, so the fast path is bit-exact and the call
                # is made exactly when it would report.
                t = f"_sv{len(self._san_infos)}"
                return (
                    f"(_m_{name}[{t}] if ({t} := ({index_code})) < "
                    f"{spec.depth} and not s[{spec.poison_slot}] >> {t} & 1 "
                    f"else _san.mr(_m_{name}, s[{spec.poison_slot}], "
                    f"{t}, {info}))"
                )
            return (
                f"_san.mr(_m_{name}, s[{spec.poison_slot}], "
                f"({index_code}), {info})"
            )

        def index_bound_hook(
            name: str, index_code: str, bound: int, line: int
        ) -> str:
            self._san_sites += 1
            if elide is not None and (name, line) in elide.ob_safe:
                self._san_elided += 1
                return index_code  # proven in range for any reg state
            info = self._san_info(name, line)
            if elide is not None and elide.rr_fast:
                # ob returns the index unchanged either way; only call
                # out when it would report (index >= bound).
                t = f"_sv{len(self._san_infos)}"
                return (
                    f"({t} if ({t} := ({index_code})) < {bound} "
                    f"else _san.ob({t}, {bound}, {info}))"
                )
            return f"_san.ob(({index_code}), {bound}, {info})"

        resolver.reg_read_hook = reg_read_hook
        resolver.mem_read_hook = mem_read_hook
        resolver.index_bound_hook = index_bound_hook

    def _trunc_hook(self, value_code: str, declared: int, line: int,
                    target: str) -> str:
        mask = mask_of(declared)
        self._san_sites += 1
        if self._elide is not None and (target, line) in self._elide.tr_safe:
            # Proven to fit: no bits exist above the mask to lose.
            self._san_elided += 1
            return f"(({value_code}) & {mask})"
        info = self._san_info(target, line)
        if self._elide is not None and self._elide.rr_fast:
            # Values are non-negative, so bits above the mask exist
            # exactly when value > mask; tr returns the value, so the
            # call only matters when it would report.
            t = f"_sv{len(self._san_infos)}"
            return (
                f"(({t} if ({t} := ({value_code})) <= {mask} "
                f"else _san.tr({t}, {mask}, {info})) & {mask})"
            )
        return f"(_san.tr(({value_code}), {mask}, {info}) & {mask})"

    # -- generation ------------------------------------------------------------

    def generate(self) -> str:
        self._gen_eval_out()
        self._emit.blank()
        self._gen_eval_seq()
        self._emit.blank()
        self._gen_tick()
        if self._sanitize:
            # Module-level, after the defs: the hooks index it at call
            # time, so ordering relative to the functions is free.
            self._emit.blank()
            self._emit.line(f"_SAN_I = {self._san_infos!r}")
        return self._emit.source()

    def _arg_list(self, ports: List[str]) -> str:
        args = ", ".join(f"i_{name}" for name in ports)
        return (", " + args) if args else ""

    def _mask_inputs(self, ports: List[str]) -> None:
        for name in ports:
            width = self._ir.signals[name].width
            self._emit.line(f"i_{name} &= {mask_of(width)}")

    def _bind_memories(self, names: List[str]) -> None:
        for name in names:
            self._emit.line(f"_m_{name} = s[{self._mem_slot[name].slot}]")

    def _bind_registered_child_outputs(self) -> None:
        """Registered child outputs are state: bind them up front so
        consumers never wait on the producing instance."""
        for index, inst in enumerate(self._ir.instances):
            child = self._netlist.modules[inst.child_key]
            for port in inst.registered_ports:
                target = inst.output_conns[port]
                slot = child.signals[port].state_index
                self._emit.line(f"v_{target} = ch[{index}].state[{slot}]")

    # -- the combinational body (shared between eval_out and eval_seq) -----------

    def _gen_early_binds(self) -> None:
        """Prepass for wiring cycles (see repro.ir.schedule): call the
        involved children with zero arguments and bind only their
        dependency-free outputs, which are correct under any inputs."""
        by_instance: Dict[int, List[Tuple[str, str]]] = {}
        for index, port, target in self._ir.early_bind:
            by_instance.setdefault(index, []).append((port, target))
        for index, bindings in by_instance.items():
            inst = self._ir.instances[index]
            child = self._netlist.modules[inst.child_key]
            ref = self._emit.fresh("e")
            self._emit.line(f"{ref} = ch[{index}]")
            zeros = ", ".join("0" for _ in self._child_comb_ports(inst))
            result = self._emit.fresh("er")
            self._emit.line(
                f"{result} = {ref}.code.eval_out_fn({ref}.state, "
                f"{ref}.children{', ' + zeros if zeros else ''})"
            )
            for port, target in bindings:
                j = list(child.outputs).index(port)
                self._emit.line(f"v_{target} = {result}[{j}]")

    def _comb_signal_names(self) -> List[str]:
        """Every comb-driven signal local, in deterministic order."""
        names: List[str] = []
        for assign in self._ir.comb_assigns:
            names.append(assign.defines)
        for comb in self._ir.comb_blocks:
            names.extend(comb.defines)
        for inst in self._ir.instances:
            registered = set(inst.registered_ports)
            for port, target in inst.output_conns.items():
                if port not in registered:
                    names.append(target)
        seen = set()
        unique = []
        for name in names:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return unique

    def _gen_fixpoint_prelude(self) -> None:
        """For genuine comb loops: seed every comb local from the value
        slot (carried across fixpoint passes), or zero on the first
        pass of a cycle.  tick() clears the slot."""
        names = self._comb_signal_names()
        if not names:
            return
        slot = 2 * self._ir.num_regs  # the memo-key slot doubles as the guard
        locals_tuple = ", ".join(f"v_{n}" for n in names)
        if len(names) == 1:
            locals_tuple += ","
        with block(self._emit, f"if s[{slot}] is None:"):
            for name in names:
                self._emit.line(f"v_{name} = 0")
        with block(self._emit, "else:"):
            self._emit.line(f"({locals_tuple}) = s[{slot}]")

    def _gen_fixpoint_save(self) -> None:
        names = self._comb_signal_names()
        if not names:
            return
        slot = 2 * self._ir.num_regs
        locals_tuple = ", ".join(f"v_{n}" for n in names)
        if len(names) == 1:
            locals_tuple += ","
        self._emit.line(f"s[{slot}] = ({locals_tuple})")

    def _gen_comb_body(self, exprgen: ExprGen) -> None:
        if self._ir.needs_fixpoint:
            self._gen_fixpoint_prelude()
        self._gen_early_binds()
        for unit_kind, index in self._ir.schedule:
            if unit_kind == "assign":
                self._gen_comb_assign(exprgen, index)
            elif unit_kind == "block":
                self._gen_comb_block(exprgen, index)
            else:
                self._gen_instance_out(exprgen, index)

    def _gen_comb_assign(self, exprgen: ExprGen, index: int) -> None:
        if index in self._dead_assigns:
            return
        assign = self._ir.comb_assigns[index]
        code = exprgen.gen(self._expr(assign.value))
        width = self._ir.signals[assign.target.name].width
        if exprgen.width_of(assign.value) > width:
            if self._sanitize:
                code = self._trunc_hook(
                    code, width,
                    getattr(assign.target, "line", 0),
                    assign.target.name,
                )
            else:
                code = f"(({code}) & {mask_of(width)})"
        self._emit.line(f"v_{assign.target.name} = {code}")

    def _gen_comb_block(self, exprgen: ExprGen, index: int) -> None:
        if index in self._dead_blocks:
            return
        comb = self._ir.comb_blocks[index]
        body = self._comb_body_stmts(index)
        stmtgen = StmtGen(
            exprgen=exprgen,
            emitter=self._emit,
            write_target=lambda target, code: self._emit.line(
                f"v_{target.name} = {code}"
            ),
            read_target_current=lambda name: f"v_{name}",
            mem_write=self._forbid_comb_mem_write,
            is_memory=lambda name: name in self._mem_slot,
            target_width=lambda name: self._ir.signals[name].width,
            trunc_hook=self._trunc_hook if self._sanitize else None,
        )
        pos = self._guard_pos.get(index) if self._seq_phase else None
        if pos is None:
            for name in comb.defines:
                self._emit.line(f"v_{name} = 0")
            stmtgen.gen_stmts(body)
            return
        # Sensitivity guard (opt=full, eval_seq only): if this block's
        # residual inputs match last cycle's, restore the cached output
        # tuple instead of re-evaluating the body.  Sound because the
        # outputs are a pure function of the key — defines start from a
        # deterministic zero-init every evaluation.
        kslot = self._sens_base + 2 * pos
        vslot = kslot + 1
        key_names = self._plan.guard_inputs[index]
        key_refs = [
            exprgen.gen(ast.Id(name=name, line=comb.line))
            for name in key_names
        ]
        key_code = ", ".join(key_refs)
        if len(key_refs) == 1:
            key_code += ","
        sk = self._emit.fresh("sk")
        self._emit.line(f"{sk} = ({key_code})")
        defines = list(comb.defines)
        locals_tuple = ", ".join(f"v_{name}" for name in defines)
        if len(defines) == 1:
            locals_tuple += ","
        with block(self._emit, f"if s[{kslot}] == {sk}:"):
            self._emit.line(f"({locals_tuple}) = s[{vslot}]")
        with block(self._emit, "else:"):
            for name in defines:
                self._emit.line(f"v_{name} = 0")
            stmtgen.gen_stmts(body)
            self._emit.line(f"s[{kslot}] = {sk}")
            self._emit.line(f"s[{vslot}] = ({locals_tuple})")

    @staticmethod
    def _forbid_comb_mem_write(name: str, addr: str, value: str, line: int) -> None:
        raise CodegenError(
            f"memory {name!r} may only be written in always @(posedge)", line
        )

    def _child_comb_ports(self, inst) -> List[str]:
        child = self._netlist.modules[inst.child_key]
        if child.needs_fixpoint:
            return list(child.inputs)
        return child.comb_input_ports

    def _gen_instance_out(self, exprgen: ExprGen, index: int) -> None:
        inst = self._ir.instances[index]
        child = self._netlist.modules[inst.child_key]
        ref = self._emit.fresh("c")
        self._emit.line(f"{ref} = ch[{index}]")
        arg_codes = [
            exprgen.gen(self._expr(inst.input_conns[port]))
            for port in self._child_comb_ports(inst)
        ]
        result = self._emit.fresh("r")
        call_args = ", ".join(arg_codes)
        self._emit.line(
            f"{result} = {ref}.code.eval_out_fn({ref}.state, {ref}.children"
            f"{', ' + call_args if call_args else ''})"
        )
        registered = set(inst.registered_ports)
        for j, port in enumerate(child.outputs):
            target = inst.output_conns.get(port)
            if target is not None and port not in registered:
                self._emit.line(f"v_{target} = {result}[{j}]")

    def _memories_read_in_comb(self) -> List[str]:
        reads: Set[str] = set()
        for assign in self._ir.comb_assigns:
            reads |= set(assign.reads)
        for comb in self._ir.comb_blocks:
            reads |= set(comb.reads)
        for inst in self._ir.instances:
            reads |= set(inst.reads)
        return [name for name in self._mem_slot if name in reads]

    def _output_ref(self, name: str) -> str:
        sig = self._ir.signals[name]
        if sig.state_index is not None:
            # Registered outputs expose the current (pre-tick) value.
            return f"s[{sig.state_index}]"
        return f"v_{name}"

    # -- phase 1: eval_out --------------------------------------------------------

    def _gen_eval_out(self) -> None:
        ir = self._ir
        use_cache = not ir.needs_fixpoint
        exprgen = ExprGen(
            self._resolver(available_inputs=set(self._comb_ports)),
            self._emit,
            self._mux_style,
        )
        header = f"def eval_out(s, ch{self._arg_list(self._comb_ports)}):"
        cache_slot = 2 * ir.num_regs
        with block(self._emit, header):
            self._mask_inputs(self._comb_ports)
            if use_cache:
                args_tuple = ", ".join(f"i_{p}" for p in self._comb_ports)
                if self._comb_ports:
                    self._emit.line(f"_ck = ({args_tuple},)")
                else:
                    self._emit.line("_ck = ()")
                with block(self._emit, f"if s[{cache_slot}] == _ck:"):
                    self._emit.line(f"return s[{cache_slot + 1}]")
            self._bind_memories(self._memories_read_in_comb())
            self._bind_registered_child_outputs()
            self._gen_comb_body(exprgen)
            if not use_cache:
                self._gen_fixpoint_save()
            returns = ", ".join(self._output_ref(name) for name in ir.outputs)
            if len(ir.outputs) == 1:
                returns += ","
            self._emit.line(f"_ret = ({returns})")
            if use_cache:
                self._emit.line(f"s[{cache_slot}] = _ck")
                self._emit.line(f"s[{cache_slot + 1}] = _ret")
            self._emit.line("return _ret")

    # -- phase 2: eval_seq ----------------------------------------------------------

    def _gen_eval_seq(self) -> None:
        ir = self._ir
        all_ports = list(ir.inputs)
        exprgen = ExprGen(self._resolver(), self._emit, self._mux_style)
        header = f"def eval_seq(s, ch{self._arg_list(all_ports)}):"
        self._seq_phase = True  # guards only here; eval_out keeps its memo
        with block(self._emit, header):
            wrote = False
            if ir.inputs:
                self._mask_inputs(all_ports)
                wrote = True
            comb_mems = self._memories_read_in_comb()
            seq_mems = [
                name
                for name in self._mem_slot
                if name not in comb_mems
                and (self._memory_written(name) or self._memory_read_in_seq(name))
            ]
            self._bind_memories(comb_mems + seq_mems)
            wrote = wrote or bool(comb_mems or seq_mems)
            for name in self._mem_slot:
                if self._memory_written(name):
                    spec = self._mem_slot[name]
                    self._emit.line(f"_pw_{name} = s[{spec.pending_slot}]")
                    self._emit.line(f"del _pw_{name}[:]")
                    wrote = True
            if self._sanitize and ir.seq_blocks and ir.num_regs:
                # Fresh per-cycle write tracking for the nb-conflict
                # check and tick's poison clearing.
                self._emit.line(f"s[{self._nw_slot}].clear()")
                wrote = True
            self._bind_registered_child_outputs()
            self._gen_comb_body(exprgen)
            wrote = wrote or bool(ir.schedule) or bool(ir.instances)
            if ir.num_regs:
                self._emit.line(
                    f"s[{ir.num_regs}:{2 * ir.num_regs}] = s[0:{ir.num_regs}]"
                )
                wrote = True
            for block_id, seq in enumerate(ir.seq_blocks):
                self._gen_seq_block(exprgen, seq, block_id)
                wrote = True
            skip = self._skip_children()
            for index, inst in enumerate(ir.instances):
                if index in skip:
                    # Pure subtree: stateless, so eval_seq would only
                    # recompute values tick never commits.  Skip it.
                    continue
                child = self._netlist.modules[inst.child_key]
                ref = self._emit.fresh("c")
                self._emit.line(f"{ref} = ch[{index}]")
                arg_codes = [
                    exprgen.gen(self._expr(inst.input_conns[port]))
                    for port in child.inputs
                ]
                call_args = ", ".join(arg_codes)
                self._emit.line(
                    f"{ref}.code.eval_seq_fn({ref}.state, {ref}.children"
                    f"{', ' + call_args if call_args else ''})"
                )
                wrote = True
            if not wrote:
                self._emit.line("pass")
        self._seq_phase = False

    def _memory_written(self, name: str) -> bool:
        for seq in self._ir.seq_blocks:
            _, writes = stmt_reads_writes(seq.body)
            if name in writes:
                return True
        return False

    def _memory_read_in_seq(self, name: str) -> bool:
        for seq in self._ir.seq_blocks:
            reads, _ = stmt_reads_writes(seq.body)
            if name in reads:
                return True
        return False

    def _gen_seq_block(self, exprgen: ExprGen, seq, block_id: int = 0) -> None:
        num_regs = self._ir.num_regs

        def write_target(target: ast.LValue, code: str) -> None:
            sig = self._ir.signals[target.name]
            if sig.state_index is None:
                raise CodegenError(
                    f"sequential assignment to non-register {target.name!r}",
                    target.line,
                )
            self._emit.line(f"s[{sig.state_index + num_regs}] = {code}")

        def read_pending(name: str) -> str:
            sig = self._ir.signals[name]
            return f"s[{sig.state_index + num_regs}]"

        def mem_write(name: str, addr: str, value: str, line: int) -> None:
            spec = self._mem_slot[name]
            if self._sanitize:
                self._san_sites += 1
                if self._elide is not None \
                        and (name, line) in self._elide.ob_safe:
                    self._san_elided += 1  # address proven < depth
                else:
                    # Bound-check the address before the wrap hides it.
                    addr = (
                        f"_san.ob(({addr}), {spec.depth}, "
                        f"{self._san_info(name, line)})"
                    )
            if spec.depth & (spec.depth - 1) == 0:
                addr_code = f"({addr}) & {spec.depth - 1}"
            else:
                addr_code = f"({addr}) % {spec.depth}"
            self._emit.line(
                f"_pw_{name}.append(({addr_code}, "
                f"({value}) & {mask_of(spec.width)}))"
            )

        def write_note(name: str, wmask: Optional[int], line: int) -> None:
            sig = self._ir.signals[name]
            full = mask_of(sig.width)
            mask = full if wmask is None else (wmask & full)
            self._san_sites += 1
            if self._elide is not None and self._elide.rr_fast \
                    and len(self._seq_writer_blocks().get(name, ())) <= 1:
                # One statically-possible writer block: the cross-block
                # conflict can never fire, and tick only reads the dict
                # keys to clear poison — write the entry inline.
                self._emit.line(
                    f"s[{self._nw_slot}][{sig.state_index}] = "
                    f"({block_id}, {mask})"
                )
                return
            self._emit.line(
                f"_san.nw(s[{self._nw_slot}], {sig.state_index}, "
                f"{block_id}, {mask}, {self._san_info(name, line)})"
            )

        stmtgen = StmtGen(
            exprgen=exprgen,
            emitter=self._emit,
            write_target=write_target,
            read_target_current=read_pending,
            mem_write=mem_write,
            is_memory=lambda name: name in self._mem_slot,
            target_width=lambda name: self._ir.signals[name].width,
            trunc_hook=self._trunc_hook if self._sanitize else None,
            write_note=write_note if self._sanitize else None,
        )
        stmtgen.gen_stmts(self._seq_body_stmts(block_id))

    # -- tick ---------------------------------------------------------------

    def _gen_tick(self) -> None:
        ir = self._ir
        cache_slot = 2 * ir.num_regs
        with block(self._emit, "def tick(s, ch):"):
            if ir.num_regs:
                self._emit.line(
                    f"s[0:{ir.num_regs}] = s[{ir.num_regs}:{2 * ir.num_regs}]"
                )
            self._emit.line(f"s[{cache_slot}] = None")
            if self._sanitize and ir.num_regs and ir.seq_blocks:
                # A register written this cycle (nw-dict key) is defined
                # from here on: clear its poison bit at commit.  The dict
                # itself is cleared at the start of the next eval_seq.
                self._emit.line(f"_nw = s[{self._nw_slot}]")
                with block(self._emit, "if _nw:"):
                    self._emit.line(f"_p = s[{self._poison_slot}]")
                    with block(self._emit, "for _i in _nw:"):
                        self._emit.line("_p &= ~(1 << _i)")
                    self._emit.line(f"s[{self._poison_slot}] = _p")
            for name, spec in self._mem_slot.items():
                if not self._memory_written(name):
                    continue
                self._emit.line(f"_pw = s[{spec.pending_slot}]")
                with block(self._emit, "if _pw:"):
                    self._emit.line(f"_m = s[{spec.slot}]")
                    with block(self._emit, "for _a, _v in _pw:"):
                        self._emit.line("_m[_a] = _v")
                        if self._sanitize:
                            self._emit.line(
                                f"s[{spec.poison_slot}] &= ~(1 << _a)"
                            )
                    self._emit.line("del _pw[:]")
            if ir.instances:
                skip = self._skip_children()
                if not skip:
                    with block(self._emit, "for _c in ch:"):
                        self._emit.line(
                            "_c.code.tick_fn(_c.state, _c.children)"
                        )
                else:
                    # Pure subtrees have nothing to commit.
                    for index in range(len(ir.instances)):
                        if index in skip:
                            continue
                        self._emit.line(
                            f"_c = ch[{index}]"
                        )
                        self._emit.line(
                            "_c.code.tick_fn(_c.state, _c.children)"
                        )


def compile_module(
    ir: ModuleIR,
    netlist: Netlist,
    mux_style: str = "branch",
    sanitize: bool = False,
    runtime: object = None,
    opt_plan: Optional[OptPlan] = None,
    opt_level: str = "none",
    elision=None,
    reg_const_init: Optional[Dict[str, int]] = None,
) -> CompiledModule:
    """Compile one specialization into a :class:`CompiledModule`.

    With ``sanitize=True`` the generated source is instrumented with
    calls into ``runtime`` (a :class:`repro.sanitize.SanitizerRuntime`),
    bound as the module-global ``_san`` at exec time.  ``elision`` (an
    :class:`repro.sanitize.ElisionPlan`) drops ob/tr sites the value
    facts prove safe and puts the inline poison-bit fast path on
    register reads; ``reg_const_init`` rides along for hot reload.

    With an ``opt_plan`` (see :mod:`repro.passes`), the emitted code is
    constant-folded, dead logic is dropped, and opt=full adds
    sensitivity guards plus pure-subtree skips.
    """
    if opt_plan is not None and opt_plan.is_noop:
        opt_plan = None  # nothing to apply: emit the plain shape
    if not sanitize:
        elision = None
    started = time.perf_counter()
    with obs.span("codegen.module", key=ir.key, sanitize=sanitize,
                  opt=opt_level):
        compiler = _ModuleCompiler(
            ir, netlist, mux_style, sanitize=sanitize, plan=opt_plan,
            elision=elision,
        )
        source = compiler.generate()
        # Distinct linecache entries per build flavour of the same
        # specialization (clean / sanitized / elided / optimized).
        if sanitize:
            flavor = ":san-e" if elision is not None else ":san"
            filename = f"<lhdl:{ir.key}{flavor}>"
        else:
            filename = f"<lhdl:{ir.key}>"
        if opt_level != "none":
            filename = filename[:-1] + f":o-{opt_level}>"
        code = compile(source, filename, "exec")
        namespace: Dict[str, object] = {"_san": runtime} if sanitize else {}
        exec(code, namespace)  # noqa: S102 - generated, trusted code
        linecache.cache[filename] = (
            len(source), None, source.splitlines(keepends=True), filename
        )
    elapsed = time.perf_counter() - started
    obs.incr("codegen.modules_compiled")
    reg_slots = {
        name: sig.state_index
        for name, sig in ir.signals.items()
        if sig.state_index is not None
    }
    mem_specs = dict(compiler._mem_slot)
    return CompiledModule(
        key=ir.key,
        name=ir.name,
        ir=ir,
        eval_out_fn=namespace["eval_out"],  # type: ignore[arg-type]
        eval_seq_fn=namespace["eval_seq"],  # type: ignore[arg-type]
        tick_fn=namespace["tick"],  # type: ignore[arg-type]
        source=source,
        inputs=tuple(ir.inputs),
        comb_input_ports=tuple(compiler.comb_ports),
        outputs=tuple(ir.outputs),
        num_regs=ir.num_regs,
        state_size=(
            2 * ir.num_regs + CACHE_SLOTS + 2 * len(ir.memories)
            + (len(ir.memories) + 2 if sanitize else 0)
            + 2 * compiler.sens_slot_count
        ),
        reg_slots=reg_slots,  # type: ignore[arg-type]
        reg_widths={name: ir.signals[name].width for name in reg_slots},
        mem_specs=mem_specs,
        child_insts=tuple((i.name, i.child_key) for i in ir.instances),
        interface_fp=ir.interface_fingerprint(),
        source_hash=hashlib.sha256(source.encode()).hexdigest(),
        compile_seconds=elapsed,
        mux_style=mux_style,
        sanitize=sanitize,
        opt=opt_level,
        sens_slot_count=compiler.sens_slot_count,
        san_sites=compiler._san_sites,
        san_elided=compiler._san_elided,
        reg_const_init=dict(reg_const_init or {}),
    )


def compile_netlist(
    netlist: Netlist,
    mux_style: str = "branch",
    sanitize: bool = False,
    runtime: object = None,
) -> Dict[str, CompiledModule]:
    """Compile every specialization in ``netlist`` (bottom-up).

    Returns key -> CompiledModule.  The total work is proportional to
    the number of *unique* specializations, not instances — a 256-core
    mesh compiles its core modules once.
    """
    compiled: Dict[str, CompiledModule] = {}

    def visit(key: str) -> None:
        if key in compiled:
            return
        ir = netlist.modules[key]
        for inst in ir.instances:
            visit(inst.child_key)
        compiled[key] = compile_module(
            ir, netlist, mux_style, sanitize=sanitize, runtime=runtime
        )

    visit(netlist.top)
    return compiled
