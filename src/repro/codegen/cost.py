"""Static cost model of generated simulator code.

The host performance model (Table VII) needs to know, for each
compilation style, roughly how much host code a design's inner loop
touches and what it does per simulated cycle:

* how many host instructions one evaluation of each module executes,
* how many of those are branches,
* how many data loads/stores hit the instance's state,
* how many bytes of host code the compiled module occupies.

These are derived by walking the IR with simple per-op weights — the
same methodology a compiler person would use for a first-order
footprint estimate.  The absolute numbers are uncalibrated; the host
model calibrates the 1x1 design against the paper's measured column and
everything else follows from *relative* footprint growth, which is the
effect the paper attributes the Verilator cliff to.

Styles:

* ``"branch"`` (LiveSim): muxes lower to branches; one arm evaluated.
* ``"select"`` (Verilator-like): muxes lower to arithmetic selects;
  both arms evaluated, almost no branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..hdl import ast_nodes as ast
from ..ir.netlist import ModuleIR, Netlist

_BYTES_PER_INSTR = 4.2  # x86-64 average instruction length
_CALL_OVERHEAD = 12  # instructions per child-module call (LiveSim style)
_INLINE_FACTOR = 0.85  # cross-module optimization benefit of full inlining


@dataclass
class OpCount:
    """Raw operation counts for one expression/statement walk."""

    alu: float = 0.0
    branches: float = 0.0
    loads: float = 0.0
    stores: float = 0.0

    def add(self, other: "OpCount") -> None:
        self.alu += other.alu
        self.branches += other.branches
        self.loads += other.loads
        self.stores += other.stores

    def scaled(self, factor: float) -> "OpCount":
        return OpCount(
            alu=self.alu * factor,
            branches=self.branches * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
        )


@dataclass
class ModuleCost:
    """Cost of evaluating one instance of one module for one cycle."""

    key: str
    style: str
    instructions: float
    branches: float
    loads: float
    stores: float
    code_bytes: float  # host code footprint of the compiled module
    state_bytes: int  # per-instance data footprint


@dataclass
class DesignCost:
    """Whole-design per-cycle cost for one compilation style."""

    style: str
    instructions: float  # executed per simulated cycle, all instances
    branches: float
    loads: float
    stores: float
    code_bytes: float  # total compiled code footprint (the I$ working set)
    data_bytes: float  # total state footprint (the D$ working set)
    module_costs: Dict[str, ModuleCost] = field(default_factory=dict)
    instance_counts: Dict[str, int] = field(default_factory=dict)


class _CostWalker:
    def __init__(self, ir: ModuleIR, style: str):
        self._ir = ir
        self._style = style

    # -- expressions ---------------------------------------------------------

    def expr(self, node: ast.Expr) -> OpCount:
        count = OpCount()
        self._expr(node, count)
        return count

    def _expr(self, node: ast.Expr, out: OpCount) -> None:
        if isinstance(node, ast.Num):
            return
        if isinstance(node, ast.Id):
            sig = self._ir.signals.get(node.name)
            if sig is not None and (sig.state_index is not None):
                out.loads += 1
            else:
                out.alu += 0.2  # local/register-allocated value
            return
        if isinstance(node, ast.Unary):
            out.alu += 1
            self._expr(node.operand, out)
            return
        if isinstance(node, ast.Binary):
            out.alu += 2 if node.op in ("*", "/", "%") else 1
            self._expr(node.left, out)
            self._expr(node.right, out)
            return
        if isinstance(node, ast.Ternary):
            cond = OpCount()
            self._expr(node.cond, cond)
            out.add(cond)
            if_true = OpCount()
            self._expr(node.if_true, if_true)
            if_false = OpCount()
            self._expr(node.if_false, if_false)
            if self._style == "branch":
                out.branches += 1
                out.alu += 1
                # One arm executes; charge the average.
                out.add(if_true.scaled(0.5))
                out.add(if_false.scaled(0.5))
            else:
                out.alu += 4  # mask construction and merge
                out.add(if_true)
                out.add(if_false)
            return
        if isinstance(node, ast.Concat):
            out.alu += 2 * max(len(node.parts) - 1, 0)
            for part in node.parts:
                self._expr(part, out)
            return
        if isinstance(node, ast.Repl):
            out.alu += 1
            self._expr(node.value, out)
            return
        if isinstance(node, ast.Index):
            if node.base in self._ir.memories:
                out.loads += 1
                out.alu += 1
            else:
                out.alu += 2
                self._name_read(node.base, out)
            self._expr(node.index, out)
            return
        if isinstance(node, ast.Slice):
            out.alu += 2
            self._name_read(node.base, out)
            return
        if isinstance(node, ast.IndexedPart):
            out.alu += 2
            self._name_read(node.base, out)
            self._expr(node.start, out)
            return
        if isinstance(node, ast.SysCall):
            for arg in node.args:
                self._expr(arg, out)
            return

    def _name_read(self, name: str, out: OpCount) -> None:
        sig = self._ir.signals.get(name)
        if sig is not None and sig.state_index is not None:
            out.loads += 1
        else:
            out.alu += 0.2

    # -- statements -----------------------------------------------------------

    def stmts(self, body: List[ast.Stmt], is_seq: bool) -> OpCount:
        count = OpCount()
        for stmt in body:
            count.add(self._stmt(stmt, is_seq))
        return count

    def _stmt(self, stmt: ast.Stmt, is_seq: bool) -> OpCount:
        out = OpCount()
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            out.add(self.expr(stmt.value))
            if stmt.target.name in self._ir.memories or is_seq:
                out.stores += 1
            else:
                out.alu += 0.2
            if stmt.target.index is not None:
                out.add(self.expr(stmt.target.index))
                out.alu += 3  # read-modify-write merge
            return out
        if isinstance(stmt, ast.If):
            out.add(self.expr(stmt.cond))
            out.branches += 1
            then_cost = self.stmts(stmt.then_body, is_seq)
            else_cost = self.stmts(stmt.else_body, is_seq)
            # Control flow always branches (both styles); charge the average
            # executed path but the full code footprint elsewhere.
            out.add(then_cost.scaled(0.5))
            out.add(else_cost.scaled(0.5))
            return out
        if isinstance(stmt, ast.Case):
            out.add(self.expr(stmt.subject))
            arms = max(len(stmt.arms), 1)
            out.branches += arms / 2
            out.alu += arms / 2
            for _, body in stmt.arms:
                out.add(self.stmts(body, is_seq).scaled(1.0 / arms))
            return out
        return out

    # -- static (footprint) size: every op, no execution averaging -------------

    def static_expr(self, node: ast.Expr) -> float:
        if isinstance(node, (ast.Num,)):
            return 0.5
        if isinstance(node, ast.Id):
            return 1.0
        if isinstance(node, ast.Unary):
            return 1 + self.static_expr(node.operand)
        if isinstance(node, ast.Binary):
            return 1 + self.static_expr(node.left) + self.static_expr(node.right)
        if isinstance(node, ast.Ternary):
            return (
                2
                + self.static_expr(node.cond)
                + self.static_expr(node.if_true)
                + self.static_expr(node.if_false)
            )
        if isinstance(node, ast.Concat):
            return 1 + sum(self.static_expr(p) for p in node.parts)
        if isinstance(node, ast.Repl):
            return 1 + self.static_expr(node.value)
        if isinstance(node, ast.Index):
            return 2 + self.static_expr(node.index)
        if isinstance(node, (ast.Slice,)):
            return 2.0
        if isinstance(node, ast.IndexedPart):
            return 2 + self.static_expr(node.start)
        if isinstance(node, ast.SysCall):
            return sum(self.static_expr(a) for a in node.args)
        return 1.0

    def static_stmts(self, body: List[ast.Stmt]) -> float:
        total = 0.0
        for stmt in body:
            if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
                total += 1 + self.static_expr(stmt.value)
                if stmt.target.index is not None:
                    total += self.static_expr(stmt.target.index) + 3
            elif isinstance(stmt, ast.If):
                total += 1 + self.static_expr(stmt.cond)
                total += self.static_stmts(stmt.then_body)
                total += self.static_stmts(stmt.else_body)
            elif isinstance(stmt, ast.Case):
                total += 1 + self.static_expr(stmt.subject)
                for labels, body_arm in stmt.arms:
                    total += 1 + len(labels)
                    total += self.static_stmts(body_arm)
        return total


def module_cost(ir: ModuleIR, style: str) -> ModuleCost:
    """Per-instance, per-cycle cost of one module in one style."""
    walker = _CostWalker(ir, style)
    dynamic = OpCount()
    static_ops = 0.0
    for assign in ir.comb_assigns:
        dynamic.add(walker.expr(assign.value))
        dynamic.alu += 0.2
        static_ops += 1 + walker.static_expr(assign.value)
    for comb in ir.comb_blocks:
        dynamic.add(walker.stmts(comb.body, is_seq=False))
        static_ops += walker.static_stmts(comb.body)
    for seq in ir.seq_blocks:
        dynamic.add(walker.stmts(seq.body, is_seq=True))
        static_ops += walker.static_stmts(seq.body)
    # Register pending-copy + commit work.
    dynamic.loads += ir.num_regs
    dynamic.stores += 2 * ir.num_regs
    static_ops += 2 * ir.num_regs
    # Child call glue.
    for inst in ir.instances:
        child_args = len(inst.input_conns) + len(inst.output_conns)
        if style == "branch":
            dynamic.alu += _CALL_OVERHEAD + child_args
            static_ops += _CALL_OVERHEAD + child_args
        else:
            # Fully inlined: glue disappears but the child body is
            # accounted per instance at design level.
            dynamic.alu += child_args * 0.5
            static_ops += child_args * 0.5
        for expr in inst.input_conns.values():
            dynamic.add(walker.expr(expr))
            static_ops += walker.static_expr(expr)

    instructions = dynamic.alu + dynamic.branches + dynamic.loads + dynamic.stores
    state_bytes = 8 * 2 * ir.num_regs + sum(
        8 * m.depth for m in ir.memories.values()
    )
    if style == "select":
        instructions *= _INLINE_FACTOR
        static_ops *= _INLINE_FACTOR
    return ModuleCost(
        key=ir.key,
        style=style,
        instructions=instructions,
        branches=dynamic.branches,
        loads=dynamic.loads,
        stores=dynamic.stores,
        code_bytes=static_ops * _BYTES_PER_INSTR,
        state_bytes=state_bytes,
    )


def design_cost(netlist: Netlist, style: str) -> DesignCost:
    """Aggregate cost for the whole design in one compilation style.

    The decisive difference between the styles (paper Table VII):

    * ``branch``/LiveSim — code is shared, so the I$ working set is the
      sum over *unique* specializations;
    * ``select``/Verilator — code is replicated, so the I$ working set
      is the sum over *instances*.
    """
    counts = netlist.instance_count()
    module_costs = {
        key: module_cost(netlist.modules[key], style) for key in counts
    }
    total = DesignCost(style=style, instructions=0.0, branches=0.0, loads=0.0,
                       stores=0.0, code_bytes=0.0, data_bytes=0.0,
                       module_costs=module_costs, instance_counts=dict(counts))
    for key, n in counts.items():
        cost = module_costs[key]
        total.instructions += n * cost.instructions
        total.branches += n * cost.branches
        total.loads += n * cost.loads
        total.stores += n * cost.stores
        total.data_bytes += n * cost.state_bytes
        if style == "branch":
            total.code_bytes += cost.code_bytes  # shared once
        else:
            total.code_bytes += n * cost.code_bytes  # replicated
    return total
