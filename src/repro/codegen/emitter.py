"""Small indented-source emitter shared by both code generators."""

from __future__ import annotations

from typing import List


class FunctionEmitter:
    """Accumulates Python source lines with indentation and fresh temps."""

    def __init__(self, indent: str = "    "):
        self._lines: List[str] = []
        self._indent_str = indent
        self._level = 0
        self._temp_counter = 0

    def line(self, text: str) -> None:
        self._lines.append(self._indent_str * self._level + text)

    def blank(self) -> None:
        self._lines.append("")

    def push(self) -> None:
        self._level += 1

    def pop(self) -> None:
        if self._level == 0:
            raise RuntimeError("unbalanced indentation pop")
        self._level -= 1

    def fresh(self, hint: str = "t") -> str:
        self._temp_counter += 1
        return f"_{hint}{self._temp_counter}"

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"

    @property
    def line_count(self) -> int:
        return len(self._lines)


class Block:
    """Context manager for an indented block: ``with emit.block("if x:"):``."""

    def __init__(self, emitter: FunctionEmitter, header: str):
        self._emitter = emitter
        self._header = header

    def __enter__(self) -> "Block":
        self._emitter.line(self._header)
        self._emitter.push()
        return self

    def __exit__(self, *exc: object) -> None:
        self._emitter.pop()


def block(emitter: FunctionEmitter, header: str) -> Block:
    return Block(emitter, header)
