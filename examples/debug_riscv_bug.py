#!/usr/bin/env python3
"""The paper's primary use case: debugging a single simulation.

A RISC-V core carries a decode bug (immediates zero-extend instead of
sign-extend — a classic, lifted from the kind of fixes found in real
core histories).  A countdown program exposes it thousands of cycles
into the run.  We fix the one affected pipeline-stage module through
the live loop and watch the simulation update in milliseconds instead
of recompiling and rerunning everything.

Run:  python examples/debug_riscv_bug.py
"""

import time

from repro.live.session import LiveSession
from repro.riscv import build_pgas_source
from repro.riscv.patches import get_patch
from repro.riscv.programs import boot_program, boot_program_spec, node_result

COUNTDOWN = """
    li   s0, 1000000        # count down from a million
loop:
    addi s0, s0, -1         # <-- needs a sign-extended immediate!
    sd   s0, 0x200(zero)    # publish progress
    bnez s0, loop
    ecall
"""


def main() -> None:
    patch = get_patch("id-imm-sign")
    buggy_source = patch.inject(build_pgas_source(1))
    print(f"injected bug: {patch.description}")

    session = LiveSession(buggy_source, checkpoint_interval=500,
                          reload_distance=1_000)
    session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_1x1"))
    tb = session.load_testbench(
        boot_program(COUNTDOWN, count=1),
        factory=boot_program_spec(COUNTDOWN, count=1),
    )

    # Run deep into the simulation — the expensive part we do NOT want
    # to repeat after the fix.
    session.run(tb, "uut", 3_000)
    pipe = session.pipe("uut")
    broken = node_result(pipe, 0)
    print(f"\ncycle {pipe.cycle}: counter reads {broken:,}")
    print("...it should be counting DOWN from 1,000,000 — the addi's "
          "immediate is being zero-extended. Time to fix decode.")

    # The fix: one edit to the rv_id module, applied live.
    started = time.perf_counter()
    report = session.apply_change(patch.fix(session.compiler.source))
    elapsed = time.perf_counter() - started
    print(f"\nhot fix applied in {elapsed * 1e3:.0f} ms "
          f"(recompiled only {report.recompiled_keys}, "
          f"reloaded from checkpoint @ {report.checkpoint_cycle}, "
          f"replayed {report.cycles_replayed} cycles)")
    print(f"fast estimate at cycle {pipe.cycle}: "
          f"{node_result(pipe, 0):,}")

    # The estimate replayed from a checkpoint recorded under the buggy
    # decode — background verification catches that and repairs.
    print("\nverifying checkpoint history against the fixed design...")
    verdict = session.verify_consistency("uut", repair=True)
    print(f"  diverged from cycle {verdict.divergence_cycle}; "
          f"history repaired ({len(session.store('uut'))} checkpoints "
          "regenerated)")
    fixed = node_result(pipe, 0)
    print(f"corrected result at cycle {pipe.cycle}: {fixed:,} "
          "(counting down, as designed)")
    assert fixed < 1_000_000

    # Keep debugging from here — state is live, history is consistent.
    session.run(tb, "uut", 500)
    print(f"\n500 cycles later: {node_result(pipe, 0):,} "
          f"(cycle {pipe.cycle})")

    # Rewind for a closer look (Table I: ldch).
    checkpoint = session.store("uut").nearest_before(2_000)
    session.ldch("uut", checkpoint)
    print(f"rewound to checkpoint @ {pipe.cycle}: "
          f"counter = {node_result(pipe, 0):,}")


if __name__ == "__main__":
    main()
