// A combinational ring: ack depends on grant depends on req depends
// on ack.  The simulator tolerates it (fixpoint evaluation), which is
// exactly why the analyzer must flag it — the cycle is real hardware
// feedback with no register in the path.
module ring(
    input clk,
    input [3:0] a,
    output [3:0] out
);
  wire [3:0] req;
  wire [3:0] grant;
  wire [3:0] ack;
  reg [3:0] out_q;

  assign req = ack & a;
  assign grant = req | 4'b0001;
  assign ack = grant & 4'b0111;

  always @(posedge clk) begin
    out_q <= req;
  end
  assign out = out_q;
endmodule
