// Value-range corpus: every finding below is proof-backed — the
// known-bits/interval analysis (repro.passes.dataflow) has to derive
// it, and "python -m repro.analyze --explain" prints the derivation
// chain. Pairs with pitfalls.v: those findings are structural, these
// only exist through the dataflow (nothing here is a literal
// constant). The child module matters: the parent's proofs rest on
// facts that crossed the instantiation boundary.
module narrows (
  input clk,
  input [7:0] raw,
  output [7:0] bucket
);
  // raw & 0x1F is in [0, 31]; OR-ing 0x80 pins the top bit, so
  // bucket is provably in [128, 159] on every cycle.
  assign bucket = (raw & 8'h1F) | 8'h80;
endmodule

module ranges (
  input clk,
  input [7:0] a,
  output [7:0] y,
  output [3:0] z,
  output [2:0] t,
  output [3:0] g
);
  wire [7:0] bucket;
  narrows u_n (.clk(clk), .raw(a), .bucket(bucket));

  reg [7:0] store [0:7];
  wire [3:0] idx;
  // {1'b1, a[2:0]} is in [8, 15]: every read from reset is out of
  // bounds (oob-index, error).
  assign idx = {1'b1, a[2:0]};
  assign y = store[idx];

  // bucket >= 128 always, so the select is proved-condition — the
  // syntactic constant-condition check cannot see this.
  assign z = (bucket >= 8'd100) ? 4'd1 : 4'd0;

  // [128, 159] can never fit 3 bits: trunc-loss on every path.
  assign t = bucket;

  // The subject is in [0, 3]; the 9 arm is provably unmatchable.
  reg [3:0] grade;
  always @(*) begin
    case (a & 8'h03)
      8'd0: grade = 4'd0;
      8'd1: grade = 4'd1;
      8'd9: grade = 4'd9;
      default: grade = 4'd2;
    endcase
  end
  assign g = grade;

  always @(posedge clk) store[a[2:0]] <= bucket;
endmodule
