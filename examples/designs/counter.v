// Clean two-counter design (the repo's canonical example): the
// analyzer should report nothing here — it anchors the CI baseline's
// "no false positives" side.
module adder #(parameter W = 8) (
  input clk,
  input [W-1:0] a,
  input [W-1:0] b,
  output [W-1:0] sum
);
  assign sum = a + b;
endmodule

module counter #(parameter W = 8) (
  input clk,
  input rst,
  input [W-1:0] step,
  output [W-1:0] count
);
  reg [W-1:0] count_q;
  wire [W-1:0] next;
  adder #(.W(W)) u_add (.clk(clk), .a(count_q), .b(step), .sum(next));
  assign count = count_q;
  always @(posedge clk) begin
    if (rst)
      count_q <= 0;
    else
      count_q <= next;
  end
endmodule

module top (
  input clk,
  input rst,
  output [7:0] c0,
  output [7:0] c1
);
  counter #(.W(8)) u0 (.clk(clk), .rst(rst), .step(8'd1), .count(c0));
  counter #(.W(8)) u1 (.clk(clk), .rst(rst), .step(8'd3), .count(c1));
endmodule
