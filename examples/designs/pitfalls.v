// Deliberate analyzer pitfalls in one module: every construct here
// parses, elaborates, and simulates — the bugs are only visible to
// static analysis, which is the point of the CI baseline.
module pitfalls(
    input clk,
    input [7:0] a,
    input [7:0] b,
    input sel,
    output [7:0] y
);
  reg [7:0] lat;
  reg [7:0] shared;
  reg [7:0] merged;
  reg [7:0] dead;

  // latch: lat is only assigned when sel is true
  always @(*) begin
    if (sel)
      lat = a;
  end

  // multi-driver: shared is written by two clocked blocks
  always @(posedge clk) begin
    shared <= a;
  end
  always @(posedge clk) begin
    shared <= b;
  end

  // nb-race: merged is partially assigned here and fully written
  // below — the part-select merge reads the pending value, so the
  // result depends on block evaluation order
  always @(posedge clk) begin
    merged[3:0] <= a[3:0];
  end
  always @(posedge clk) begin
    merged <= b;
  end

  // dead branch: the condition folds to 0
  always @(posedge clk) begin
    if (8'd0)
      dead <= a;
    else
      dead <= b;
  end

  assign y = lat ^ shared ^ merged ^ dead;
endmodule
