#!/usr/bin/env python3
"""Quickstart: live-edit a running hardware simulation.

Builds a small counter design, runs it for a while (checkpointing as it
goes), then applies a source edit through the live loop: incremental
compile, hot reload of the affected module into the running pipeline,
checkpoint reload, and replay — the sub-2-second edit-run-debug loop
from the LiveSim paper.

Run:  python examples/quickstart.py
"""

from repro import LiveSession
from repro.sim.testbench import hold_inputs

DESIGN = """
module adder #(parameter W = 8) (
  input clk,
  input [W-1:0] a,
  input [W-1:0] b,
  output [W-1:0] sum
);
  assign sum = a + b;
endmodule

module counter #(parameter W = 8) (
  input clk,
  input rst,
  input [W-1:0] step,
  output [W-1:0] count
);
  reg [W-1:0] count_q;
  wire [W-1:0] next;
  adder #(.W(W)) u_add (.clk(clk), .a(count_q), .b(step), .sum(next));
  assign count = count_q;
  always @(posedge clk) begin
    if (rst)
      count_q <= 0;
    else
      count_q <= next;
  end
endmodule

module top (
  input clk,
  input rst,
  output [7:0] c0,
  output [7:0] c1
);
  counter #(.W(8)) u0 (.clk(clk), .rst(rst), .step(8'd1), .count(c0));
  counter #(.W(8)) u1 (.clk(clk), .rst(rst), .step(8'd3), .count(c1));
endmodule
"""

EDITED = DESIGN.replace(
    "assign sum = a + b;",
    "assign sum = a + b + 8'd1;  // live edit: off-by-one experiment",
)


def main() -> None:
    # 1. Start a live session and instantiate the design (Table I:
    #    ldLib + instPipe).
    session = LiveSession(DESIGN, checkpoint_interval=100)
    pipe = session.inst_pipe("p0", session.stage_handle_for("top"))

    # 2. Run a testbench; checkpoints are taken automatically.
    tb = session.load_testbench(hold_inputs(rst=0))
    session.run(tb, "p0", 1_000)
    print(f"after 1000 cycles: {pipe.outputs()}")
    print(f"checkpoints taken: {session.store('p0').cycles()}")

    # 3. Edit the source *while the simulation is live*.  LiveParser
    #    detects that only `adder` changed; LiveCompiler recompiles just
    #    that module; hot reload swaps both adder instances, preserving
    #    every register; the nearest checkpoint reloads and history
    #    replays to where we were.
    report = session.apply_change(EDITED)
    print("\nedit-run-debug report:")
    print(f"  recompiled: {report.recompiled_keys}")
    print(f"  reused:     {report.reused_keys}")
    print(f"  swapped {report.swapped_instances} instances, "
          f"replayed {report.cycles_replayed} cycles "
          f"from checkpoint @ {report.checkpoint_cycle}")
    print(f"  total: {report.total_seconds * 1e3:.1f} ms "
          f"(under 2 s goal: {report.within_two_seconds})")
    print(f"updated outputs: {pipe.outputs()}")

    # 4. Comment-only edits don't even recompile.
    comment_only = EDITED.replace("// live edit", "// reviewed &")
    report = session.apply_change(comment_only)
    print(f"\ncomment-only edit behavioral? {report.behavioral} "
          f"(parse-only, {report.parse_seconds * 1e3:.1f} ms)")

    # 5. Background consistency verification (§III-F): the pre-edit
    #    checkpoints describe the OLD adder's trajectory, so they
    #    diverge; repair re-establishes a consistent history.
    verdict = session.verify_consistency("p0", repair=True)
    print(f"\ncheckpoint history consistent? {verdict.all_consistent} "
          f"(divergence at cycle {verdict.divergence_cycle})")
    print(f"after repair: {pipe.outputs()} at cycle {pipe.cycle}")
    assert session.verify_consistency("p0").all_consistent
    print("post-repair verification: consistent")


if __name__ == "__main__":
    main()
