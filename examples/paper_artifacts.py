#!/usr/bin/env python3
"""Regenerate every table and figure from the paper's evaluation.

Prints Table VII, Table VIII, Figure 7, Figure 8, the §V-B checkpoint
overhead, and the Fig. 6 consistency-scaling measurement.  This is the
same machinery the benchmark suite drives; see EXPERIMENTS.md for the
paper-vs-measured comparison.

Run:  python examples/paper_artifacts.py [sizes]
      python examples/paper_artifacts.py 1,2,4,8      # bigger sweep
"""

import sys

from repro.bench.figures import (
    checkpoint_overhead,
    consistency_scaling,
    fig7_crossover_kilocycles,
    fig7_series,
    fig8_bars,
)
from repro.bench.reporting import format_series, format_table
from repro.bench.tables import table7, table7_formatted_rows, table8
from repro.bench.workloads import collect_sizes


def main() -> None:
    sizes = tuple(
        int(x) for x in (sys.argv[1] if len(sys.argv) > 1 else "1,2,4").split(",")
    )
    print(f"sweeping mesh sizes {sizes} (this compiles and simulates "
          "every design twice — LiveSim and the baseline)...\n")
    results = collect_sizes(sizes=sizes, sim_cycles=80,
                            baseline_budget_s=30.0)

    # ---- Table VII ------------------------------------------------------
    rows = table7(sizes=list(sizes), trace_cycles=5)
    columns, body = table7_formatted_rows(rows)
    print(format_table(
        "Table VII — simulation efficiency (host model)",
        columns, body,
        row_labels=["KHz", "IPC", "I$ MPKI", "D$ MPKI", "BR MPKI"],
    ))

    # ---- Table VIII -----------------------------------------------------
    t8 = table8(results)
    print("\n" + format_table(
        "Table VIII — compilation time (s); NA = budget exceeded",
        [f"{r.n}x{r.n}" for r in t8],
        [
            [round(r.hot_reload_s, 3) if r.hot_reload_s else None for r in t8],
            [round(r.livesim_full_s, 3) for r in t8],
            [round(r.verilator_s, 3) if r.verilator_s is not None else None
             for r in t8],
        ],
        row_labels=["LiveSim Hot Reload", "LiveSim Full", "Verilator"],
    ))

    # ---- Figure 7 -------------------------------------------------------
    series = fig7_series(results, table7_rows=rows)
    marks = [1, 100, 10_000, 76_000, 1_000_000]
    print("\n" + format_series(
        "Figure 7 — seconds to reach N kilocycles/core",
        {s.label: s.points(marks) for s in series},
        x_label="kc/core", y_label="s",
    ))
    live = next(s for s in series if "full simulation" in s.label)
    veri = next(s for s in series if s.label.startswith("Verilator"))
    crossing = fig7_crossover_kilocycles(live, veri)
    if crossing:
        print("\n1x1 crossover: baseline passes LiveSim after "
              f"{crossing:,.0f} kilocycles "
              "(paper: 76,000 kilocycles = 76M cycles)")

    # ---- Figure 8 -------------------------------------------------------
    bars = fig8_bars(results)
    print("\n" + format_table(
        "Figure 8 — hot-reload ERD latency (ms)",
        ["cores", "parse", "compile", "swap", "reload", "replay", "total"],
        [
            [b.cores] + [round(1e3 * v, 1) for v in
                         (b.parse_s, b.compile_s, b.swap_s, b.reload_s,
                          b.replay_s, b.total_s)]
            for b in bars
        ],
        row_labels=[f"{b.n}x{b.n}" for b in bars],
    ))
    print("all sizes under the 2 s goal: "
          f"{all(b.under_two_seconds for b in bars)}")

    # ---- §V-B -----------------------------------------------------------
    overhead = checkpoint_overhead(n=sizes[0], cycles=300, interval=25)
    print(f"\n§V-B checkpointing overhead at {sizes[0]}x{sizes[0]}: "
          f"{overhead.overhead_percent:.1f}% "
          f"({overhead.checkpoints_taken} checkpoints, "
          f"{overhead.checkpoint_bytes / 1e3:.0f} KB each; paper: 10-20%)")

    # ---- Figure 6 -------------------------------------------------------
    scaling = consistency_scaling(n=sizes[0], run_cycles=300, interval=30,
                                  worker_counts=(2,))
    rows6 = [[1, round(scaling.serial_wall_s, 3)]] + [
        [w, round(t, 3)] for w, t in scaling.parallel_wall_s.items()
    ]
    print("\n" + format_table(
        f"Figure 6 — consistency verification ({scaling.checkpoints} "
        "checkpoints)",
        ["workers", "wall s"],
        rows6,
    ))


if __name__ == "__main__":
    main()
