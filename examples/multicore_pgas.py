#!/usr/bin/env python3
"""Multicore PGAS simulation with what-if exploration.

Builds the paper's benchmark substrate at 2x2 (four RV64I cores, 32 KB
local memory each, remote stores over the NoC), runs a message-passing
token ring, then uses copyPipe to explore a "what if" without
disturbing the main simulation — the paper's §III-A use cases.

Run:  python examples/multicore_pgas.py [N]     (default N=2)
"""

import sys

from repro.live.session import LiveSession
from repro.riscv import build_pgas_source
from repro.riscv.pgas import mesh_top_name
from repro.riscv.programs import hop_count_ring, node_result


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    count = n * n
    print(f"building a {n}x{n} PGAS ({count} RV64I cores)...")
    session = LiveSession(build_pgas_source(n), checkpoint_interval=10)
    session.inst_pipe("mesh", session.stage_handle_for(mesh_top_name(n)))
    pipe = session.pipe("mesh")

    # Load the hop-count ring: node 0 seeds a token; every node
    # increments and forwards via a remote store into its neighbour's
    # mailbox.  Program loading is part of the testbench so replays
    # reproduce it.
    from repro.riscv.programs import load_node_program
    from repro.sim.testbench import CallbackTestbench

    def drive(p):
        if p.cycle == 0:
            for i in range(count):
                load_node_program(p, i, hop_count_ring(i, count))
        p.set_inputs(rst=int(p.cycle < 2), clk=0)

    tb = session.load_testbench(CallbackTestbench("ring", drive=drive))

    # Run until every core halts.
    budget = 3_000 + 400 * count
    while pipe.outputs().get("all_halted") != 1 and pipe.cycle < budget:
        session.run(tb, "mesh", 200)
    assert pipe.outputs()["all_halted"] == 1, "ring did not complete"
    print(f"all {count} cores halted at cycle {pipe.cycle}")
    print(f"node 0 measured ring hop count: {node_result(pipe, 0)} "
          f"(expected {count})")
    for i in range(1, count):
        assert node_result(pipe, i) == i

    # --- what-if exploration (copyPipe + ldch) --------------------------
    # Question: what would the last node report if a corrupted token
    # (value 40) appeared in its mailbox mid-flight?  Rewind a *copy*
    # to an early checkpoint — before the real token reached it — and
    # poke the state.  The mainline simulation is untouched.
    last = count - 1
    early = session.checkpoints("mesh")[0]
    print(f"\nwhat-if: branching a copy from checkpoint @ {early.cycle}...")
    session.copy_pipe("whatif", "mesh")
    session.ldch("whatif", early)
    whatif = session.pipe("whatif")
    already = node_result(whatif, last)
    print(f"  at cycle {early.cycle}, node {last} result is {already} "
          "(token still in flight)")
    whatif.find(f"n_{last}.u_mem").write_memory("mem", 0x100 // 8, [40])
    session.run(tb, "whatif", 600)
    print(f"  what-if  node {last} result: {node_result(whatif, last)} "
          "(consumed the corrupted token)")
    print(f"  what-if  node 0 hop count:   {node_result(whatif, 0)} "
          "(received 41, not the honest 4!)")
    print(f"  mainline node {last} result: {node_result(pipe, last)} "
          "(untouched)")

    # Checkpoint stats.
    store = session.store("mesh")
    print(f"\ncheckpoints: {len(store)} "
          f"({store.total_bytes() / 1e6:.2f} MB total, "
          f"{store.total_bytes() / max(len(store), 1) / 1e3:.0f} KB each)")


if __name__ == "__main__":
    main()
