#!/usr/bin/env python3
"""Regression batches, waveform probes, and the Table I command syntax.

Covers three more of the paper's §III-A use cases on one session:

* a regression system that re-checks invariants from arbitrary states
  (not just reset) after every design change;
* the "insert printfs and replay" flow via waveform probes + VCD;
* driving the simulator with the paper's literal command strings.

Run:  python examples/regression_and_waves.py
"""

import tempfile

from repro.live.commands import CommandInterpreter
from repro.live.regression import RegressionSuite
from repro.live.session import LiveSession
from repro.sim import WaveformRecorder
from repro.sim.testbench import reset_sequence

DESIGN = """
module lfsr #(parameter W = 16) (
  input clk,
  input rst,
  output [W-1:0] value
);
  reg [W-1:0] state;
  wire feedback;
  assign feedback = state[15] ^ state[13] ^ state[12] ^ state[10];
  assign value = state;
  always @(posedge clk) begin
    if (rst)
      state <= 16'hACE1;
    else
      state <= {state[14:0], feedback};
  end
endmodule

module top (
  input clk,
  input rst,
  output [15:0] a,
  output [15:0] b
);
  lfsr u_a (.clk(clk), .rst(rst), .value(a));
  lfsr u_b (.clk(clk), .rst(rst), .value(b));
endmodule
"""

# A (deliberate) experiment: change u_b's taps and see what regresses.
VARIANT = DESIGN.replace(
    "assign feedback = state[15] ^ state[13] ^ state[12] ^ state[10];",
    "assign feedback = state[15] ^ state[14];",
)


def main() -> None:
    session = LiveSession(DESIGN, checkpoint_interval=64)
    session.inst_pipe("p0", session.stage_handle_for("top"))
    # Reset for the first 2 absolute cycles, then run free —
    # replay-safe stimulus (a pure function of the cycle number).
    tb_handle = session.load_testbench(reset_sequence("rst", cycles=2))
    pipe = session.pipe("p0")

    # --- drive with the paper's command syntax --------------------------
    interp = CommandInterpreter(session)
    interp.script(f"""
run {tb_handle}, p0, 512     # boot (2 reset cycles) + 510 free-running
chkp p0                      # manual checkpoint on top of the periodic ones
""")
    print(f"after {pipe.cycle} cycles: a={pipe.outputs()['a']:#06x}")
    assert pipe.outputs()['a'] != 0

    # --- regression batch ------------------------------------------------
    suite = RegressionSuite(session, "p0")
    tb = reset_sequence("rst", cycles=2)
    suite.add(
        "lockstep", tb, cycles=100,
        check=lambda p: p.outputs()["a"] == p.outputs()["b"],
        start=256,
        description="both LFSRs stay in lockstep from the cycle-256 state",
    )
    suite.add(
        "nonzero", tb, cycles=50,
        check=lambda p: p.outputs()["a"] != 0,
        start=128,
        description="a maximal LFSR never hits the all-zero lockup state",
    )
    print("\n" + suite.run().summary())

    # --- hot change + re-run the batch -----------------------------------
    print("\napplying the tap-change experiment to u_b's module...")
    report = session.apply_change(VARIANT)
    print(f"  recompiled {report.recompiled_keys} in "
          f"{report.total_seconds * 1e3:.1f} ms")
    print(suite.run().summary())
    print("  -> 'lockstep' still passes: both instances share the one "
          "patched module (Fig. 4d in action).")

    # --- waveforms: rewind and record the window of interest --------------
    checkpoint = session.store("p0").nearest_before(300)
    session.ldch("p0", checkpoint)
    recorder = WaveformRecorder(pipe)
    recorder.probe_register("u_a", "state")
    recorder.probe_expr(
        "parity", 1, lambda p: bin(p.outputs()["a"]).count("1") & 1
    )
    recorder.record(32, driver=lambda p: p.set_inputs(rst=0, clk=0))
    trace = recorder.trace("u_a.state")
    print(f"\nrecorded {len(trace.values)} samples from cycle "
          f"{trace.cycles[0]}; first values: "
          f"{[hex(v) for v in trace.values[:4]]}")
    with tempfile.NamedTemporaryFile(suffix=".vcd", delete=False) as fh:
        recorder.to_vcd(fh.name)
        print(f"VCD written to {fh.name} (open in any waveform viewer)")


if __name__ == "__main__":
    main()
