"""repro.obs: spans, metrics, the report schema, and live-loop wiring."""

import gc
import io

import pytest

from repro import obs
from repro.__main__ import Shell, main
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    aggregate_phases,
    build_report,
    load_report,
    validate_report,
    write_report,
)
from repro.obs.span import NULL_SPAN, NULL_TRACER
from tests.conftest import COUNTER_SRC

EDITED = COUNTER_SRC.replace("assign sum = a + b;", "assign sum = a + b + 8'd1;")

LIVE_PHASES = ("parse", "compile", "swap", "reload", "replay")


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with tracing off and state cleared."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", step=1):
                pass
            with tracer.span("inner", step=2):
                pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "second"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.children[0].attrs == {"step": 1}
        assert tracer.current() is None

    def test_children_fit_inside_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                sum(range(1000))
            with tracer.span("b"):
                sum(range(1000))
        outer = tracer.roots[0]
        child_total = sum(c.duration_ns for c in outer.children)
        assert 0 < child_total <= outer.duration_ns

    def test_find_by_name_across_the_forest(self):
        tracer = Tracer()
        with tracer.span("edit"):
            with tracer.span("compile"):
                pass
        with tracer.span("compile"):
            pass
        assert len(tracer.find("compile")) == 2
        assert tracer.find("nope") == []

    def test_record_attaches_externally_measured_span(self):
        tracer = Tracer()
        with tracer.span("verify"):
            recorded = tracer.record("segment", 1_000_000, index=3)
        assert recorded.duration_ns == 1_000_000
        assert recorded.attrs == {"index": 3}
        verify = tracer.roots[0]
        assert [c.name for c in verify.children] == ["segment"]

    def test_exception_unwinds_the_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current() is None
        assert tracer.roots[0].children[0].end_ns > 0

    def test_reset_clears_the_forest(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestNullTracer:
    def test_span_is_one_shared_singleton(self):
        tracer = NullTracer()
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b", attr=1) is NULL_SPAN
        assert tracer.record("c", 123) is None

    def test_disabled_facade_allocates_no_spans(self):
        assert not obs.enabled()
        gc.collect()
        before = sum(1 for o in gc.get_objects() if isinstance(o, Span))
        for i in range(200):
            with obs.span("hot_path", iteration=i):
                pass
        gc.collect()
        after = sum(1 for o in gc.get_objects() if isinstance(o, Span))
        assert after == before

    def test_enable_disable_swaps_tracers(self):
        tracer = obs.enable()
        assert obs.enabled() and obs.get_tracer() is tracer
        with obs.span("recorded"):
            pass
        assert [s.name for s in tracer.roots] == ["recorded"]
        obs.disable()
        assert not obs.enabled()
        assert obs.get_tracer() is NULL_TRACER


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.incr("edits")
        metrics.incr("edits", 4)
        assert metrics.counter("edits") == 5
        assert metrics.counter("never") == 0

    def test_gauges_overwrite(self):
        metrics = MetricsRegistry()
        metrics.gauge("cache_size", 2)
        metrics.gauge("cache_size", 7)
        assert metrics.gauge_value("cache_size") == 7

    def test_as_dict_is_a_snapshot(self):
        metrics = MetricsRegistry()
        metrics.incr("a")
        snapshot = metrics.as_dict()
        metrics.incr("a")
        assert snapshot == {
            "counters": {"a": 1}, "gauges": {}, "histograms": {},
        }

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.incr("a")
        metrics.gauge("g", 1)
        metrics.histogram("h", 1.5)
        metrics.reset()
        assert metrics.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_histogram_stats(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):
            metrics.histogram("latency", value)
        stats = metrics.histogram_stats("latency")
        assert stats["count"] == 100
        assert stats["sum"] == 5050
        assert stats["min"] == 1 and stats["max"] == 100
        assert stats["p50"] == 50
        assert stats["p95"] == 95
        assert stats["p99"] == 99
        # Unknown histograms read as empty, not KeyError.
        assert metrics.histogram_stats("nope")["count"] == 0

    def test_histogram_single_observation(self):
        metrics = MetricsRegistry()
        metrics.histogram("h", 7)
        stats = metrics.histogram_stats("h")
        assert stats == {
            "count": 1, "sum": 7, "min": 7, "max": 7,
            "p50": 7, "p95": 7, "p99": 7,
        }

    def test_histogram_window_is_bounded(self):
        from repro.obs.metrics import HISTOGRAM_WINDOW, Histogram

        hist = Histogram()
        for value in range(3 * HISTOGRAM_WINDOW):
            hist.observe(value)
        assert len(hist.window) == HISTOGRAM_WINDOW
        # count/sum/min/max stay exact over the full lifetime even
        # though percentiles only see the most recent window.
        assert hist.count == 3 * HISTOGRAM_WINDOW
        assert hist.min == 0
        assert hist.max == 3 * HISTOGRAM_WINDOW - 1
        assert hist.percentile(50) >= 2 * HISTOGRAM_WINDOW

    def test_histogram_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for value in (1, 2, 3):
            a.histogram("h", value)
        for value in (10, 20):
            b.histogram("h", value)
        b.histogram("only_b", 5)
        a.merge(b)
        stats = a.histogram_stats("h")
        assert stats["count"] == 5
        assert stats["sum"] == 36
        assert stats["min"] == 1 and stats["max"] == 20
        assert a.histogram_stats("only_b")["count"] == 1


class TestReportSchema:
    def _sample_report(self):
        tracer = Tracer()
        with tracer.span("edit", version="1.1"):
            with tracer.span("compile"):
                pass
        metrics = MetricsRegistry()
        metrics.incr("compile.cache_misses", 3)
        metrics.gauge("compile.cache_size", 3)
        return build_report(tracer, metrics, meta={"tool": "test"})

    def test_round_trip_through_disk(self, tmp_path):
        report = self._sample_report()
        path = tmp_path / "trace.json"
        write_report(str(path), report)
        loaded = load_report(str(path))
        assert loaded == report
        assert loaded["schema"] == "repro.obs/v1"
        assert loaded["meta"] == {"tool": "test"}
        assert loaded["spans"][0]["name"] == "edit"
        assert loaded["spans"][0]["children"][0]["name"] == "compile"
        assert loaded["metrics"]["counters"]["compile.cache_misses"] == 3

    def test_validate_rejects_bad_documents(self):
        good = self._sample_report()
        with pytest.raises(ValueError, match="schema"):
            validate_report({**good, "schema": "repro.obs/v0"})
        with pytest.raises(ValueError, match="missing key"):
            validate_report({"schema": "repro.obs/v1", "meta": {},
                             "spans": []})
        bad_span = self._sample_report()
        bad_span["spans"][0]["duration_ns"] = -5
        with pytest.raises(ValueError, match="duration_ns"):
            validate_report(bad_span)
        bad_metric = self._sample_report()
        bad_metric["metrics"]["counters"]["flag"] = True
        with pytest.raises(ValueError, match="must be a number"):
            validate_report(bad_metric)
        bad_hist = self._sample_report()
        bad_hist["metrics"]["histograms"]["h"] = {"count": "lots"}
        with pytest.raises(ValueError, match="histograms"):
            validate_report(bad_hist)

    def test_histograms_section_is_optional(self):
        # Reports written before histograms existed must still load.
        report = self._sample_report()
        del report["metrics"]["histograms"]
        validate_report(report)

    def test_histograms_round_trip(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.histogram("server.request_seconds", 0.25)
        report = build_report(None, metrics, meta={"tool": "test"})
        path = tmp_path / "hist.json"
        write_report(str(path), report)
        loaded = load_report(str(path))
        stats = loaded["metrics"]["histograms"]["server.request_seconds"]
        assert stats["count"] == 1
        assert stats["max"] == 0.25

    def test_aggregate_phases_counts_nested_names(self):
        tracer = Tracer()
        with tracer.span("edit"):
            with tracer.span("compile"):
                pass
        with tracer.span("compile"):
            pass
        report = build_report(tracer, MetricsRegistry())
        phases = aggregate_phases(report)
        assert phases["compile"]["count"] == 2
        assert phases["edit"]["count"] == 1
        assert phases["compile"]["total_s"] >= 0.0


class TestLiveLoopIntegration:
    def _edit_session(self):
        obs.enable()
        obs.reset()
        shell = Shell(COUNTER_SRC, "top", checkpoint_interval=10,
                      reset_cycles=1, out=io.StringIO())
        handle = shell.session.stage_handle_for("top")
        shell.run_script(f"instPipe p0, {handle}\nrun tb0, p0, 30")
        erd = shell.session.apply_change(EDITED)
        assert erd.behavioral
        return obs.report(meta={"test": "integration"})

    def test_apply_change_emits_the_phase_spans(self):
        report = self._edit_session()
        apply_spans = [s for s in report["spans"]
                       if s["name"] == "apply_change"]
        assert len(apply_spans) == 1
        child_names = {c["name"] for c in apply_spans[0]["children"]}
        assert set(LIVE_PHASES) <= child_names

    def test_phase_durations_sum_within_total(self):
        report = self._edit_session()
        apply_span = next(s for s in report["spans"]
                          if s["name"] == "apply_change")
        child_total = sum(c["duration_ns"]
                          for c in apply_span["children"])
        assert 0 < child_total <= apply_span["duration_ns"]

    def test_counters_track_the_live_loop(self):
        report = self._edit_session()
        counters = report["metrics"]["counters"]
        assert counters["live.apply_changes"] == 1
        assert counters["compile.cache_misses"] >= 1
        assert counters["compile.cache_hits"] >= 1
        assert counters["checkpoint.taken"] >= 1
        assert counters["live.cycles_replayed"] >= 1
        assert counters["live.swapped_instances"] >= 1
        assert report["metrics"]["gauges"]["compile.cache_size"] >= 1


class TestTraceJsonCLI:
    def test_trace_json_writes_a_valid_artifact(self, tmp_path):
        design = tmp_path / "design.v"
        design.write_text(COUNTER_SRC)
        edited = tmp_path / "edited.v"
        edited.write_text(EDITED)
        script = tmp_path / "session.lsim"
        script.write_text(
            f"instPipe p0, stage2\nrun tb0, p0, 30\nreload {edited}\n"
        )
        trace = tmp_path / "trace.json"
        rc = main([str(design), "--top", "top",
                   "--script", str(script),
                   "--checkpoint-interval", "10",
                   "--reset-cycles", "1",
                   "--trace-json", str(trace)])
        assert rc == 0

        report = load_report(str(trace))  # validates the schema
        assert report["meta"]["design"] == str(design)
        assert report["meta"]["top"] == "top"

        phases = aggregate_phases(report)
        for name in LIVE_PHASES + ("apply_change", "checkpoint"):
            assert name in phases, f"missing span {name!r}"

        # Phase durations nest inside — so sum within — the edit total.
        def find_span(spans, name):
            for span in spans:
                if span["name"] == name:
                    return span
                found = find_span(span["children"], name)
                if found is not None:
                    return found
            return None

        apply_span = find_span(report["spans"], "apply_change")
        phase_total = sum(c["duration_ns"] for c in apply_span["children"]
                          if c["name"] in LIVE_PHASES)
        assert 0 < phase_total <= apply_span["duration_ns"]

        counters = report["metrics"]["counters"]
        assert counters["live.apply_changes"] == 1
        assert counters["compile.cache_misses"] >= 1
        assert counters["compile.cache_hits"] >= 1
        assert counters["checkpoint.taken"] >= 1
