"""Divergence descriptions (§III-F "useful for debugging").

The description must localize *any* structural difference between the
replayed and the stored state — including registers/memories that only
one side has and child-count mismatches, which used to fall through to
an unhelpful "states differ".
"""

from repro.live.consistency import _describe_divergence
from repro.sim.stage import StateSnapshot


def snap(name="top", regs=None, mems=None, children=None):
    return StateSnapshot(
        key=name,
        name=name,
        regs=dict(regs or {}),
        mems={k: list(v) for k, v in (mems or {}).items()},
        children=list(children or []),
    )


class TestRegisters:
    def test_value_mismatch(self):
        detail = _describe_divergence(
            snap(regs={"pc": 8}), snap(regs={"pc": 4})
        )
        assert detail == "top.pc: replayed=8 stored=4"

    def test_register_only_in_replayed(self):
        detail = _describe_divergence(
            snap(regs={"pc": 8, "extra_q": 1}), snap(regs={"pc": 8})
        )
        assert "extra_q" in detail
        assert "replayed=1" in detail and "stored=None" in detail

    def test_register_only_in_stored(self):
        # The old implementation iterated only actual.regs and reported
        # the generic "states differ" for this case.
        detail = _describe_divergence(
            snap(regs={"pc": 8}), snap(regs={"pc": 8, "gone_q": 3})
        )
        assert "gone_q" in detail
        assert "replayed=None" in detail and "stored=3" in detail


class TestMemories:
    def test_word_mismatch(self):
        detail = _describe_divergence(
            snap(mems={"mem": [1, 2, 3]}), snap(mems={"mem": [1, 9, 3]})
        )
        assert detail == "top.mem[1]: replayed=2 stored=9"

    def test_memory_only_in_stored(self):
        detail = _describe_divergence(
            snap(mems={}), snap(mems={"mem": [1]})
        )
        assert "top.mem" in detail and "missing from replayed state" in detail

    def test_memory_only_in_replayed(self):
        detail = _describe_divergence(
            snap(mems={"mem": [1]}), snap(mems={})
        )
        assert "top.mem" in detail and "missing from stored state" in detail

    def test_length_mismatch_reports_lengths(self):
        detail = _describe_divergence(
            snap(mems={"mem": [1, 2]}), snap(mems={"mem": [1, 2, 3]})
        )
        assert detail == "top.mem: length mismatch replayed=2 stored=3"


class TestChildren:
    def test_child_count_mismatch(self):
        detail = _describe_divergence(
            snap(children=[snap("u0")]),
            snap(children=[snap("u0"), snap("u1")]),
        )
        assert detail == "top: child count replayed=1 stored=2"

    def test_child_name_mismatch(self):
        detail = _describe_divergence(
            snap(children=[snap("u0")]), snap(children=[snap("u9")])
        )
        assert detail == "top: child name replayed='u0' stored='u9'"

    def test_nested_divergence_has_full_path(self):
        inner_a = snap("u_core", regs={"pc": 12})
        inner_b = snap("u_core", regs={"pc": 16})
        detail = _describe_divergence(
            snap(children=[snap("n_0", children=[inner_a])]),
            snap(children=[snap("n_0", children=[inner_b])]),
        )
        assert detail == "top.n_0.u_core.pc: replayed=12 stored=16"

    def test_grandchild_count_mismatch_descends(self):
        # Child-count mismatch one level down must be named, not
        # swallowed by the zip() in the old implementation.
        detail = _describe_divergence(
            snap(children=[snap("n_0", children=[snap("a")])]),
            snap(children=[snap("n_0", children=[snap("a"), snap("b")])]),
        )
        assert detail == "top.n_0: child count replayed=1 stored=2"
