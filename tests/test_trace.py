"""Live trace subsystem tests: probe resolution, ring-buffer capture,
subscription backpressure, hot-reload rebind, rewind, and time-travel
replay (repro.trace + the LiveSession trace verbs)."""

import pytest

from repro import obs
from repro.hdl.errors import SimulationError
from repro.live.session import LiveSession
from repro.sim.testbench import hold_inputs
from repro.trace import TraceBuffer, TraceProbe
from repro.trace.probes import resolve_signal
from tests.conftest import COUNTER_SRC

# Behavioral edit: the patched adder doubles the step (+b twice).
DOUBLED = COUNTER_SRC.replace("assign sum = a + b;",
                              "assign sum = a + b + b;")
# The counter register is renamed, so probes on ``count_q`` vanish.
RENAMED = COUNTER_SRC.replace("count_q", "cnt_q")

MEM_SRC = """
module lut (
  input clk,
  input rst,
  output [7:0] out
);
  reg [7:0] mem [0:3];
  reg [1:0] idx_q;
  assign out = mem[idx_q];
  always @(posedge clk) begin
    if (rst)
      idx_q <= 0;
    else begin
      mem[idx_q] <= {6'd0, idx_q} + 8'd5;
      idx_q <= idx_q + 2'd1;
    end
  end
endmodule
"""


def make_session(source=COUNTER_SRC, top="top", **kwargs):
    kwargs.setdefault("checkpoint_interval", 10)
    session = LiveSession(source, **kwargs)
    session.inst_pipe("p0", session.stage_handle_for(top))
    tb = session.load_testbench(hold_inputs(rst=0))
    return session, tb


def counters():
    return obs.report()["metrics"]["counters"]


class TestProbeResolution:
    def test_top_level_output(self):
        session, tb = make_session()
        width, getter = resolve_signal(session.pipe("p0"), "c0")
        assert width == 8
        session.run(tb, "p0", 10)
        assert getter(session.pipe("p0")) == 10

    def test_register_by_hierarchical_name(self):
        session, tb = make_session()
        width, getter = resolve_signal(session.pipe("p0"), "u1.count_q")
        assert width == 8
        session.run(tb, "p0", 10)
        assert getter(session.pipe("p0")) == 3 * 10

    def test_memory_word(self):
        session, tb = make_session(MEM_SRC, top="lut")
        width, getter = resolve_signal(session.pipe("p0"), "mem[2]")
        assert width == 8
        session.run(tb, "p0", 10)
        assert getter(session.pipe("p0")) == 7

    def test_memory_index_out_of_range(self):
        session, _ = make_session(MEM_SRC, top="lut")
        with pytest.raises(SimulationError, match="outside memory"):
            resolve_signal(session.pipe("p0"), "mem[4]")

    def test_unknown_signal_rejected(self):
        session, _ = make_session()
        with pytest.raises(SimulationError, match="cannot resolve"):
            resolve_signal(session.pipe("p0"), "nonsense")
        with pytest.raises(SimulationError, match="no register"):
            resolve_signal(session.pipe("p0"), "u0.ghost_q")

    def test_probe_bind_marks_missing_without_raising(self):
        session, _ = make_session()
        probe = TraceProbe.named(session.pipe("p0"), "u0.count_q")
        assert probe.missing is False
        session.apply_change(RENAMED)
        assert probe.bind(session.pipe("p0")) is False
        assert probe.missing is True
        assert probe.read(session.pipe("p0")) is None


class TestRingCapture:
    def test_capture_every_cycle(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.run(tb, "p0", 20)
        samples = session.trace_buffer("p0").window("c0")
        assert [cycle for cycle, _ in samples] == list(range(20))
        # sampled after settle, before the edge: value == cycle
        assert samples[-1] == [19, 19]

    def test_drop_oldest_counts_cycles(self):
        session, tb = make_session(trace_capacity=8)
        session.watch("p0", "c0")
        before = counters().get("trace.cycles_dropped", 0)
        session.run(tb, "p0", 20)
        buffer = session.trace_buffer("p0")
        samples = buffer.window("c0")
        assert [cycle for cycle, _ in samples] == list(range(12, 20))
        assert buffer.cycles_dropped == 12
        assert counters()["trace.cycles_dropped"] - before == 12

    def test_window_bounds_are_half_open(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.run(tb, "p0", 20)
        window = session.trace_buffer("p0").window("c0", 5, 8)
        assert [cycle for cycle, _ in window] == [5, 6, 7]

    def test_watch_is_idempotent(self):
        session, _ = make_session()
        first = session.watch("p0", "c0")
        again = session.watch("p0", "c0")
        assert first["signal"] == again["signal"] == "c0"
        assert session.trace_buffer("p0").names() == ["c0"]

    def test_unwatch_drops_probe_and_history(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.run(tb, "p0", 5)
        assert session.unwatch("p0", "c0")["removed"] is True
        assert session.unwatch("p0", "c0")["removed"] is False
        with pytest.raises(SimulationError, match="not watched"):
            session.trace_read("p0", "c0")

    def test_status_inventory(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.watch("p0", "u0.count_q")
        session.run(tb, "p0", 10)
        status = session.trace_status("p0")
        assert status["pipe"] == "p0"
        by_name = {p["signal"]: p for p in status["probes"]}
        assert by_name["c0"]["samples"] == 10
        assert by_name["c0"]["last_cycle"] == 9
        assert by_name["u0.count_q"]["missing"] is False


class TestSubscriptions:
    def test_change_only_emission(self):
        session, tb = make_session()
        in_reset = session.load_testbench(hold_inputs(rst=1))
        session.watch("p0", "c0")
        sub = session.trace_buffer("p0").subscribe(["c0"])
        session.run(in_reset, "p0", 3)
        session.run(tb, "p0", 7)
        events, dropped = sub.drain()
        assert dropped == 0
        # reset holds c0=0 through cycle 3 (the pre-edge sample still
        # sees the held register): one event for the whole plateau,
        # then one per changing cycle
        assert events[0] == {"signal": "c0", "cycle": 0, "value": 0}
        assert [e["cycle"] for e in events[1:]] == list(range(4, 10))
        assert [e["value"] for e in events[1:]] == list(range(1, 7))

    def test_subscription_filter(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.watch("p0", "c1")
        narrowed = session.trace_buffer("p0").subscribe(["c1"])
        session.run(tb, "p0", 5)
        events, _ = narrowed.drain()
        assert events and all(e["signal"] == "c1" for e in events)

    def test_backpressure_drops_oldest_never_blocks(self):
        # Satellite: a slow subscriber (tiny queue, never drained)
        # loses its *oldest* events — counted on the subscription, the
        # buffer, and the obs counter — while the simulation runs to
        # completion at full speed.
        session, tb = make_session()
        session.watch("p0", "c0")
        buffer = session.trace_buffer("p0")
        slow = buffer.subscribe(["c0"], max_events=4)
        before = counters().get("trace.events_dropped", 0)
        session.run(tb, "p0", 30)
        assert session.pipe("p0").cycle == 30  # sim never blocked
        events, dropped = slow.drain()
        assert len(events) == 4
        # the queue kept the newest events, dropped the oldest
        assert events[-1]["cycle"] == 29
        assert dropped == slow.events_dropped == 26
        assert buffer.events_dropped == 26
        assert counters()["trace.events_dropped"] - before == 26

    def test_closed_subscription_is_pruned(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        buffer = session.trace_buffer("p0")
        sub = buffer.subscribe(["c0"])
        assert buffer.subscriptions() == 1
        buffer.unsubscribe(sub)
        assert buffer.subscriptions() == 0
        session.run(tb, "p0", 3)
        assert sub.drain() == ([], 0)

    def test_unwatch_closes_narrowed_subscribers(self):
        session, _ = make_session()
        session.watch("p0", "c0")
        session.watch("p0", "c1")
        buffer = session.trace_buffer("p0")
        only_c0 = buffer.subscribe(["c0"])
        both = buffer.subscribe(["c0", "c1"])
        session.unwatch("p0", "c0")
        assert only_c0.closed is True
        assert both.closed is False


class TestHotReloadAndRewind:
    def test_probes_survive_reload(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.run(tb, "p0", 20)
        report = session.apply_change(DOUBLED)
        assert report.behavioral
        assert report.checkpoint_cycle == 10
        session.run(tb, "p0", 10)
        samples = dict(map(tuple, session.trace_buffer("p0").window("c0")))
        # rewound to the cycle-10 checkpoint (value 10), re-captured
        # forward at the new design's +2/cycle
        assert samples[10] == 10
        assert samples[29] == 10 + 2 * 19
        assert session.trace_status("p0")["probes"][0]["missing"] is False

    def test_reload_rewind_announced_to_subscribers(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        sub = session.trace_buffer("p0").subscribe()
        session.run(tb, "p0", 20)
        sub.drain()
        report = session.apply_change(DOUBLED)
        events, _ = sub.drain()
        rewinds = [e for e in events if "rewind" in e]
        assert rewinds and rewinds[0]["rewind"] == report.checkpoint_cycle
        # replayed cycles re-streamed with the new design's values
        changes = [e for e in events if "value" in e]
        assert changes and changes[-1]["cycle"] == 19

    def test_vanished_signal_marked_not_fatal(self):
        session, tb = make_session()
        session.watch("p0", "u0.count_q")
        session.watch("p0", "c0")
        sub = session.trace_buffer("p0").subscribe()
        session.run(tb, "p0", 10)
        sub.drain()
        session.apply_change(RENAMED)
        status = session.trace_status("p0")
        by_name = {p["signal"]: p for p in status["probes"]}
        assert by_name["u0.count_q"]["missing"] is True
        assert by_name["c0"]["missing"] is False
        events, _ = sub.drain()
        assert {"signal": "u0.count_q", "missing": True} in events
        # history up to the rewind point is kept; capture goes on
        session.run(tb, "p0", 5)
        assert session.trace_buffer("p0").window("u0.count_q")
        assert session.trace_read("p0", "c0", 10, 15)["samples"]

    def test_ldch_truncates_abandoned_timeline(self):
        session, tb = make_session(checkpoint_interval=10)
        session.watch("p0", "c0")
        sub = session.trace_buffer("p0").subscribe()
        session.run(tb, "p0", 25)
        sub.drain()
        target = session.store("p0").nearest_before(10)
        session.ldch("p0", target)
        samples = session.trace_buffer("p0").window("c0")
        assert samples and samples[-1][0] < target.cycle
        events, _ = sub.drain()
        assert {"rewind": target.cycle} in events


class TestReplay:
    def test_replay_bit_identical_to_live_capture(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.run(tb, "p0", 40)
        live = session.trace_read("p0", "c0", 10, 30)["samples"]
        replay = session.replay_window("p0", 10, 30)
        assert replay["signals"]["c0"] == live
        assert replay["base_cycle"] <= 10
        # the live pipe is untouched by the scratch replay
        assert session.pipe("p0").cycle == 40

    def test_replay_across_hot_reload_versions(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.run(tb, "p0", 20)
        session.apply_change(DOUBLED)
        session.run(tb, "p0", 20)
        # window based on a post-reload checkpoint (cycle 30): the
        # scratch pipe restores the new-version snapshot directly
        live = session.trace_read("p0", "c0", 32, 40)["samples"]
        replay = session.replay_window("p0", 32, 40, signals=["c0"])
        assert replay["signals"]["c0"] == live
        assert replay["base_cycle"] == 30

    def test_replay_window_validation(self):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.run(tb, "p0", 10)
        with pytest.raises(SimulationError, match="bad replay window"):
            session.replay_window("p0", 8, 8)
        with pytest.raises(SimulationError, match="history stops"):
            session.replay_window("p0", 0, 99)

    def test_replay_requires_signals(self):
        session, tb = make_session()
        session.run(tb, "p0", 10)
        with pytest.raises(SimulationError, match="nothing to replay"):
            session.replay_window("p0", 0, 5)


class TestVcdExport:
    def test_buffer_exports_through_shared_writer(self, tmp_path):
        session, tb = make_session()
        session.watch("p0", "c0")
        session.watch("p0", "u0.count_q")
        session.run(tb, "p0", 12)
        path = tmp_path / "trace.vcd"
        session.trace_buffer("p0").to_vcd(str(path))
        text = path.read_text()
        assert "$var wire 8" in text
        assert "c0" in text and "u0.count_q" in text
        assert "#11" in text  # last change timestamp

    def test_standalone_buffer_rejects_bad_capacity(self):
        with pytest.raises(SimulationError, match="capacity"):
            TraceBuffer(capacity=0)
