"""Bench harness tests: workbench measurements and the qualitative
shapes behind every reproduced table/figure."""

import pytest

from repro.bench.figures import (
    checkpoint_overhead,
    fig7_crossover_kilocycles,
    fig7_series,
    fig8_bars,
)
from repro.bench.reporting import format_series, format_table
from repro.bench.tables import (
    table7,
    table7_formatted_rows,
    table8,
    table8_shape_checks,
)
from repro.bench.workloads import PGASWorkbench, collect_sizes


@pytest.fixture(scope="module")
def small_results():
    """Workbench results for 1x1 and 2x2 (fast enough for unit tests)."""
    return collect_sizes(sizes=(1, 2), sim_cycles=40, baseline_budget_s=30.0)


class TestWorkbench:
    def test_collect_populates_all_fields(self, small_results):
        for result in small_results:
            assert result.livesim_full_compile_s > 0
            assert result.livesim_hot_reload_s is not None
            assert result.livesim_sim_hz and result.livesim_sim_hz > 0
            assert result.baseline_compile_s is not None
            assert result.erd_report is not None
            assert result.livesim_cost is not None

    def test_hot_reload_recompiles_one_stage(self, small_results):
        for result in small_results:
            assert result.erd_report.recompiled_keys == ["rv_id"]

    def test_hot_reload_swaps_every_core_instance(self, small_results):
        by_n = {r.n: r for r in small_results}
        assert by_n[1].erd_report.swapped_instances == 1
        assert by_n[2].erd_report.swapped_instances == 4

    def test_baseline_instance_count_scales(self, small_results):
        by_n = {r.n: r for r in small_results}
        # node(8 incl core+mem+5 stages... ) per node: pgas_node +
        # rv_memory + rv_core + 5 stages + ring_stop = 9; plus top.
        assert by_n[1].baseline_instances == 10
        assert by_n[2].baseline_instances == 37

    def test_baseline_compile_slower_at_2x2(self, small_results):
        by_n = {r.n: r for r in small_results}
        assert by_n[2].baseline_compile_s > by_n[2].livesim_full_compile_s

    def test_zero_budget_reports_na(self):
        bench = PGASWorkbench(1, baseline_budget_s=0.0)
        result = bench.collect(sim_cycles=20, measure_baseline=True,
                               measure_baseline_speed=False)
        assert result.baseline_compile_s is None  # the paper's NA


class TestTable7:
    @pytest.fixture(scope="class")
    def rows(self):
        return table7(sizes=(1, 2, 4), trace_cycles=4)

    def test_calibrated_anchor(self, rows):
        assert rows[0].livesim.khz == pytest.approx(1974.0, rel=0.02)

    def test_verilator_faster_at_1x1(self, rows):
        assert rows[0].verilator.khz > rows[0].livesim.khz

    def test_livesim_wins_at_4x4(self, rows):
        by_n = {r.n: r for r in rows}
        assert by_n[4].livesim.khz > by_n[4].verilator.khz

    def test_verilator_icache_cliff(self, rows):
        by_n = {r.n: r for r in rows}
        assert by_n[1].verilator.i_mpki < 1.0
        assert by_n[4].verilator.i_mpki > 20.0
        assert by_n[4].livesim.i_mpki < 1.0

    def test_livesim_branch_mpki_higher(self, rows):
        for row in rows:
            if row.verilator is not None:
                assert row.livesim.br_mpki > row.verilator.br_mpki

    def test_na_column_for_16x16(self):
        rows = table7(sizes=(1, 16), trace_cycles=2)
        assert rows[1].verilator is None

    def test_formatting_round_trip(self, rows):
        columns, body = table7_formatted_rows(rows)
        text = format_table("Table VII", columns, body,
                            row_labels=["KHz", "IPC", "I$ MPKI", "D$ MPKI",
                                        "BR MPKI"])
        assert "1x1 LiveSim" in text
        assert "KHz" in text


class TestTable8:
    def test_rows_and_shape_checks(self, small_results):
        rows = table8(small_results)
        checks = table8_shape_checks(rows)
        assert checks["hot_reload_under_2s"]
        assert checks["hot_reload_sublinear"]
        assert checks["baseline_slower_at_largest"]

    def test_na_rendering(self):
        text = format_table("t", ["a"], [[None]])
        assert "NA" in text


class TestFig7:
    def test_series_structure(self, small_results):
        series = fig7_series(small_results,
                             table7_rows=table7([1, 2], trace_cycles=3))
        labels = [s.label for s in series]
        assert "LiveSim 1x1 (full simulation)" in labels
        assert "Verilator 1x1" in labels
        assert "LiveSim 1x1 (from checkpoint)" in labels

    def test_from_checkpoint_is_flat(self, small_results):
        series = fig7_series(small_results,
                             table7_rows=table7([1, 2], trace_cycles=3))
        flat = [s for s in series if "from checkpoint" in s.label][0]
        assert flat.at(1) == flat.at(1_000_000)

    def test_crossover_math_at_1x1(self, small_results):
        """Paper: 'Verilator only passes LiveSim after 76M cycles'.

        At 1x1 both compiles are tens of milliseconds in this substrate
        (ordering is noise), so we assert the *slope* relationship the
        crossover rests on — the baseline simulates faster at 1x1 — and
        that the crossover computation is well-behaved.
        """
        rows = table7([1], trace_cycles=3)
        series = fig7_series([small_results[0]], table7_rows=rows)
        live = [s for s in series if "full simulation" in s.label][0]
        veri = [s for s in series if s.label.startswith("Verilator")][0]
        assert veri.khz > live.khz  # baseline wins raw speed at 1x1
        crossing = fig7_crossover_kilocycles(live, veri)
        assert crossing is None or crossing > 0

    def test_livesim_dominates_at_2x2(self, small_results):
        """At 2x2+ LiveSim both compiles faster and (per the host
        model) simulates comparably or faster: it leads everywhere
        reachable in bounded time."""
        by_n = {r.n: r for r in small_results}
        rows = table7([2], trace_cycles=3)
        series = fig7_series([by_n[2]], table7_rows=rows)
        live = [s for s in series if "full simulation" in s.label][0]
        veri = [s for s in series if s.label.startswith("Verilator")][0]
        assert live.at(0) < veri.at(0)

    def test_series_render(self, small_results):
        series = fig7_series(small_results,
                             table7_rows=table7([1, 2], trace_cycles=3))
        text = format_series(
            "Fig 7", {s.label: s.points([1, 10, 100]) for s in series},
        )
        assert "Fig 7" in text


class TestFig8:
    def test_bars_under_two_seconds(self, small_results):
        bars = fig8_bars(small_results)
        assert bars
        for bar in bars:
            assert bar.under_two_seconds
            assert bar.total_s == pytest.approx(
                bar.parse_s + bar.compile_s + bar.swap_s + bar.reload_s
                + bar.replay_s,
                rel=1e-6,
            )

    def test_latency_roughly_flat_in_cores(self, small_results):
        bars = {b.n: b for b in fig8_bars(small_results)}
        # 4x the instances, but parse+compile dominate: total within 5x.
        assert bars[2].total_s < 5 * bars[1].total_s + 0.05


class TestCheckpointOverheadBench:
    def test_overhead_measured(self):
        result = checkpoint_overhead(n=1, cycles=200, interval=20)
        assert result.checkpoints_taken > 0
        assert result.hz_with > 0
        # Overhead is positive-ish but bounded (paper: 10-20%; ours
        # varies more in Python — assert it is not catastrophic).
        assert result.overhead_percent < 100
