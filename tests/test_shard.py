"""Unit tests for the sharding primitives: the consistent-hash ring,
the on-disk session journal (crash-recovery log), and the worker's
journal/rollback paths."""

import os
import shutil

import pytest

from repro.server import shard
from repro.server.shard import (
    JOURNAL_FORMAT,
    STRUCTURAL_VERBS,
    HashRing,
    SessionJournal,
    SessionWorker,
    WorkerConfig,
)
from tests.conftest import COUNTER_SRC

KEYS = [f"session-{i}" for i in range(2000)]

BLINKER_SRC = """
module blinker (input clk, output y);
  reg q;
  assign y = q;
  always @(posedge clk) q <= !q;
endmodule
"""


class TestHashRing:
    def test_lookup_is_deterministic_across_instances(self):
        a = HashRing(range(4))
        b = HashRing([3, 2, 1, 0])  # insertion order must not matter
        assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError, match="no nodes"):
            HashRing().lookup("alice")

    def test_replicas_validated(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)

    def test_membership_and_idempotent_add(self):
        ring = HashRing(range(3))
        assert len(ring) == 3
        assert 2 in ring and 7 not in ring
        ring.add(2)  # no-op
        assert len(ring) == 3
        ring.remove(7)  # unknown node: no-op
        assert ring.nodes() == [0, 1, 2]

    def test_every_node_owns_a_reasonable_share(self):
        ring = HashRing(range(4))
        counts = {node: 0 for node in range(4)}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        for node, count in counts.items():
            # Perfect balance would be 500 each; virtual replicas get
            # within a loose factor of that.
            assert count > len(KEYS) / 4 / 3, (node, counts)

    def test_remove_moves_only_the_victims_keys(self):
        ring = HashRing(range(4))
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove(2)
        for key in KEYS:
            after = ring.lookup(key)
            if before[key] == 2:
                assert after != 2
            else:
                # The consistent-hashing contract: keys not owned by
                # the removed node never move.
                assert after == before[key]

    def test_join_moves_about_one_wth_of_the_keys(self):
        ring = HashRing(range(4))
        before = {key: ring.lookup(key) for key in KEYS}
        ring.add(4)
        moved = [key for key in KEYS if ring.lookup(key) != before[key]]
        # Every moved key must have moved TO the new node...
        assert all(ring.lookup(key) == 4 for key in moved)
        # ...and the moved fraction is ~1/5 (loose bounds: virtual
        # replicas make it approximate, not exact).
        fraction = len(moved) / len(KEYS)
        assert 0.05 < fraction < 0.45, fraction

    def test_rejoin_restores_the_old_mapping(self):
        ring = HashRing(range(4))
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove(1)
        ring.add(1)
        assert {key: ring.lookup(key) for key in KEYS} == before

    def test_ring_emptied_by_removals_raises(self):
        ring = HashRing(range(2))
        ring.remove(0)
        ring.remove(1)
        with pytest.raises(LookupError, match="no nodes"):
            ring.lookup("alice")
        # Refilling it brings lookups back.
        ring.add(5)
        assert ring.lookup("alice") == 5

    def test_equal_points_tie_break_insertion_order_independent(
        self, monkeypatch
    ):
        # Force every virtual replica onto one ring point: lookup must
        # still pick exactly one node, the same one no matter the
        # insertion order (the tuple sort falls back to the node key).
        monkeypatch.setattr(shard, "_ring_point", lambda label: 7)
        a = HashRing(range(4))
        b = HashRing([3, 2, 1, 0])
        keys = [f"tie-{i}" for i in range(50)]
        owners_a = [a.lookup(key) for key in keys]
        assert owners_a == [b.lookup(key) for key in keys]
        assert len(set(owners_a)) == 1


class TestSessionJournal:
    def test_structural_verbs_cover_the_table_i_structure_commands(self):
        assert "instpipe" in STRUCTURAL_VERBS
        assert "swapstage" in STRUCTURAL_VERBS
        # run is recovered from checkpoints, never replayed.
        assert "run" not in STRUCTURAL_VERBS

    def test_begin_append_roundtrip(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "alice")
        assert not journal.exists()
        journal.begin("module m; endmodule", reset_cycles=2)
        journal.append({"op": "line", "line": "instPipe p0, stage0"})
        journal.append({"op": "lib", "name": "patch", "source": "..."})
        assert journal.exists()

        # A fresh object (what a restarted worker builds) reads the
        # same ordered history.
        replayed = SessionJournal(str(tmp_path), "alice").ops()
        assert [op["op"] for op in replayed] == ["open", "line", "lib"]
        assert replayed[0]["source"] == "module m; endmodule"
        assert replayed[0]["reset_cycles"] == 2

    def test_checkpoint_paths_are_stable_and_registered(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "alice")
        journal.begin("src", reset_cycles=2)
        path = journal.checkpoint_path("p0")
        assert path == journal.checkpoint_path("p0")
        assert path.startswith(str(tmp_path))
        # Registered but not yet written: not listed as recoverable.
        assert journal.checkpoints() == {}
        with open(path, "wb") as fh:
            fh.write(b"ckpt")
        assert SessionJournal(str(tmp_path), "alice").checkpoints() == {
            "p0": path
        }

    def test_sessions_do_not_collide(self, tmp_path):
        a = SessionJournal(str(tmp_path), "alice")
        b = SessionJournal(str(tmp_path), "bob")
        a.begin("a-src", reset_cycles=1)
        b.begin("b-src", reset_cycles=2)
        assert a.path != b.path
        assert a.checkpoint_path("p0") != b.checkpoint_path("p0")
        assert SessionJournal(str(tmp_path), "alice").ops()[0]["source"] \
            == "a-src"

    def test_wrong_session_name_is_rejected(self, tmp_path):
        SessionJournal(str(tmp_path), "alice").begin("src", reset_cycles=2)
        mallory = SessionJournal(str(tmp_path), "alice")
        mallory.name = "mallory"  # simulate a digest collision
        with pytest.raises(ValueError, match=JOURNAL_FORMAT):
            mallory.ops()

    def test_delete_removes_journal_and_checkpoints(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "alice")
        journal.begin("src", reset_cycles=2)
        path = journal.checkpoint_path("p0")
        with open(path, "wb") as fh:
            fh.write(b"ckpt")
        journal.delete()
        assert not journal.exists()
        assert not os.path.exists(path)
        # No stray tmp files from the atomic rewrites either.
        assert os.listdir(str(tmp_path)) == []

    def test_delete_of_missing_journal_is_a_noop(self, tmp_path):
        SessionJournal(str(tmp_path), "ghost").delete()


class _FakeConn:
    """Pipe stand-in: records worker->frontend messages."""

    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)

    def close(self):
        pass


def _worker(state_root=None):
    return SessionWorker(
        _FakeConn(),
        WorkerConfig(worker_id=0, state_root=state_root, max_threads=1),
    )


class TestSessionWorkerJournaling:
    def test_open_rolls_back_when_journal_begin_fails(self, tmp_path):
        # A file where the state dir should be makes journal.begin
        # fail with OSError after manager.open already succeeded.
        state = tmp_path / "state"
        state.write_text("not a directory")
        worker = _worker(state_root=str(state))
        with pytest.raises(OSError):
            worker._cmd_open({"session": "alice", "source": COUNTER_SRC})
        # The failed open must not leave the session resident: a retry
        # (after the operator fixes the dir) would otherwise die with
        # duplicate-session forever.
        assert "alice" not in worker.manager.names()
        state.unlink()
        info = worker._cmd_open(
            {"session": "alice", "source": COUNTER_SRC}
        )
        assert "top" in info["handles"]

    def test_ldlib_journals_the_merged_source_not_the_path(
        self, tmp_path
    ):
        state = str(tmp_path / "state")
        worker = _worker(state_root=state)
        worker._cmd_open({"session": "alice", "source": COUNTER_SRC})
        lib = tmp_path / "extra.v"
        lib.write_text(BLINKER_SRC)
        worker._cmd_execute(
            1, {"session": "alice", "line": f"ldLib extras, {lib}"}
        )
        # The file diverging — or vanishing — after the load must not
        # change what recovery replays.
        lib.unlink()
        ops = SessionJournal(state, "alice").ops()
        lib_ops = [op for op in ops if op["op"] == "lib"]
        assert lib_ops == [
            {"op": "lib", "name": "extras", "source": BLINKER_SRC}
        ]
        # A fresh worker rehydrates the lib from the journaled text.
        other = _worker(state_root=state)
        info = other._cmd_rehydrate("alice")
        assert info["rehydrated"] is True
        session = other.manager.get("alice").session
        assert session.stage_handle_for("blinker")

    def test_journal_write_failure_warns_but_command_succeeds(
        self, tmp_path
    ):
        state = tmp_path / "state"
        worker = _worker(state_root=str(state))
        info = worker._cmd_open(
            {"session": "alice", "source": COUNTER_SRC}
        )
        handle = info["handles"]["top"]
        shutil.rmtree(state)
        state.write_text("journal root is gone")  # breaks every flush
        value = worker._cmd_execute(
            7, {"session": "alice", "line": f"instPipe p0, {handle}"}
        )
        assert value is not None  # the command itself succeeded
        events = [
            msg for msg in worker.conn.sent
            if msg.get("kind") == "event"
        ]
        assert events, "journal failure must surface as an event"
        assert events[0]["name"] == "journal_warning"
        assert events[0]["rid"] == 7
        assert events[0]["session"] == "alice"
        assert "instPipe" in events[0]["data"]["command"]

    def test_rehydrate_fails_when_a_lib_op_is_missing(self, tmp_path):
        # Hand-build a journal whose structural line depends on a lib
        # that was never journaled (the pre-capture TOCTOU shape).
        journal = SessionJournal(str(tmp_path), "ghost")
        journal.begin(COUNTER_SRC, reset_cycles=2)
        journal.append({"op": "line", "line": "instPipe b0, stage99"})
        worker = _worker(state_root=str(tmp_path))
        with pytest.raises(Exception, match="stage99"):
            worker._cmd_rehydrate("ghost")

    def test_persist_without_state_dir_raises(self):
        worker = _worker(state_root=None)
        worker._cmd_open({"session": "alice", "source": COUNTER_SRC})
        with pytest.raises(ValueError, match="state dir"):
            worker._cmd_persist("alice")
