"""Advanced live-flow scenarios: directive-driven recompiles, probes
across hot reloads, GC under long sessions, and a 4x4 end-to-end."""

import pytest

from repro.live.checkpoint import GCPolicy
from repro.live.session import LiveSession
from repro.sim import WaveformRecorder
from repro.sim.testbench import hold_inputs
from tests.conftest import COUNTER_SRC

DIRECTIVE_DESIGN = """\
`define STEP 8'd1

module ticker (
  input clk,
  input rst,
  output [7:0] count
);
  reg [7:0] q;
  assign count = q;
  always @(posedge clk) begin
    if (rst)
      q <= 0;
    else
      q <= q + `STEP;
  end
endmodule

module top (
  input clk,
  input rst,
  output [7:0] c
);
  ticker u0 (.clk(clk), .rst(rst), .count(c));
endmodule
"""


class TestDirectiveDrivenChange:
    def test_define_edit_recompiles_poisoned_modules(self):
        session = LiveSession(DIRECTIVE_DESIGN, checkpoint_interval=10)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        session.run(tb, "p0", 30)
        assert session.pipe("p0").outputs()["c"] == 30

        edited = DIRECTIVE_DESIGN.replace("`define STEP 8'd1",
                                          "`define STEP 8'd4")
        report = session.apply_change(edited)
        assert report.behavioral
        # Everything below the directive recompiles — both modules.
        assert sorted(report.recompiled_keys) == ["ticker", "top"]
        session.run(tb, "p0", 1)
        # Replayed from checkpoint 10 at +4/cycle, then one more cycle.
        assert session.pipe("p0").outputs()["c"] == (10 + 4 * 20 + 4) & 0xFF

    def test_ifdef_toggle_changes_structure(self):
        source = """\
`define FAST

module top (
  input clk,
  input rst,
  output [7:0] c
);
  reg [7:0] q;
  assign c = q;
  always @(posedge clk) begin
    if (rst)
      q <= 0;
`ifdef FAST
    else
      q <= q + 8'd10;
`else
    else
      q <= q + 8'd1;
`endif
  end
endmodule
"""
        session = LiveSession(source, checkpoint_interval=100)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        session.run(tb, "p0", 3)
        assert session.pipe("p0").outputs()["c"] == 30
        session.apply_change(source.replace("`define FAST\n", "\n"))
        # No checkpoints yet: the estimate replays from reset with the
        # +1 logic (3 cycles -> 3), then one more cycle.
        session.run(tb, "p0", 1)
        assert session.pipe("p0").outputs()["c"] == 4


class TestProbesAcrossReload:
    def test_recorder_survives_hot_swap(self):
        session = LiveSession(COUNTER_SRC, checkpoint_interval=1000)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        pipe = session.pipe("p0")
        recorder = WaveformRecorder(pipe)
        recorder.probe_register("u0", "count_q")
        # Sampling wrapper keeps the cycles inside the session history,
        # so the live loop can still replay them after the edit.
        tb = session.load_testbench(recorder.wrap(hold_inputs(rst=0)))

        session.run(tb, "p0", 5)
        session.apply_change(
            COUNTER_SRC.replace("assign sum = a + b;",
                                "assign sum = a + b + 8'd1;")
        )
        recorder.clear()  # the replayed estimate re-samples; start fresh
        session.run(tb, "p0", 3)
        values = recorder.trace("u0.count_q").values
        # No checkpoints: the estimate replayed 0..5 with the +2 adder,
        # leaving count=10; three more cycles sample 10/12/14.
        assert values == [10, 12, 14]


class TestGCUnderLongSessions:
    def test_store_population_bounded_during_run(self):
        session = LiveSession(
            COUNTER_SRC,
            checkpoint_interval=2,
            gc_policy=GCPolicy(keep_latest=5, older_budget=4),
        )
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        session.run(tb, "p0", 100)
        store = session.store("p0")
        assert len(store) <= 9
        assert store.total_collected > 0
        # The newest checkpoints are all present and reload works.
        newest = store.all()[-1]
        assert newest.cycle == 100
        session.ldch("p0", newest)
        assert session.pipe("p0").cycle == 100

    def test_reload_candidate_from_thinned_store(self):
        session = LiveSession(
            COUNTER_SRC,
            checkpoint_interval=2,
            reload_distance=4,
            gc_policy=GCPolicy(keep_latest=4, older_budget=3),
        )
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        session.run(tb, "p0", 60)
        report = session.apply_change(
            COUNTER_SRC.replace("assign sum = a + b;",
                                "assign sum = a ^ b;")
        )
        # Reload picked from the surviving (recent) window.
        assert report.checkpoint_cycle is not None
        assert report.checkpoint_cycle >= 50


@pytest.mark.slow
class TestLargeMeshEndToEnd:
    def test_4x4_live_debug_loop(self):
        """The full story at 16 cores: run, patch one stage, estimate,
        verify, repair — everything the paper's Fig. 1(b) shows."""
        from repro.riscv import build_pgas_source
        from repro.riscv.patches import get_patch
        from repro.riscv.programs import (
            boot_program,
            boot_program_spec,
            node_result,
        )

        countdown = """
    li   s0, 1000000
loop:
    addi s0, s0, -1
    sd   s0, 0x200(zero)
    bnez s0, loop
    ecall
"""
        patch = get_patch("id-imm-sign")
        session = LiveSession(
            patch.inject(build_pgas_source(4)),
            checkpoint_interval=40,
            reload_distance=50,
        )
        session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_4x4"))
        tb = session.load_testbench(
            boot_program(countdown, count=16),
            factory=boot_program_spec(countdown, count=16),
        )
        session.run(tb, "uut", 120)
        pipe = session.pipe("uut")
        assert node_result(pipe, 0) > 1_000_000  # bug: counting up

        report = session.apply_change(patch.fix(session.compiler.source))
        assert report.recompiled_keys == ["rv_id"]
        assert report.swapped_instances == 16
        assert report.within_two_seconds

        verdict = session.verify_consistency("uut", repair=True)
        assert not verdict.all_consistent  # history was bug-tainted
        for node in range(16):
            result = node_result(pipe, node)
            assert 0 < result < 1_000_000  # all 16 cores fixed
        assert session.verify_consistency("uut").all_consistent
