"""repro.passes: pipeline mechanics, optimization passes, live toggle.

Covers the pass-manager contract (dependency ordering, build-time
validation), the optimization passes' observable effects on generated
code, per-pass cache incrementality across a hot reload, opt-level
key separation in the artifact store, and the runtime ``opt`` toggle.
"""

import pytest

from repro import Pipe, compile_design
from repro.hdl.errors import SimulationError
from repro.live.commands import CommandInterpreter
from repro.live.session import LiveSession
from repro.passes import (
    Pass,
    PassData,
    PassManager,
    PipelineError,
    build_compile_pipeline,
    run_opt_pipeline,
)
from repro.server.store import _normalize_key, key_digest
from repro.sim.testbench import hold_inputs
from tests.conftest import COUNTER_SRC


class _Stub(Pass):
    def __init__(self, name, requires=(), produces=(), write=True):
        self.name = name
        self.requires = tuple(requires)
        self.produces = tuple(produces)
        self._write = write

    def run(self, data):
        if self._write:
            for fact in self.produces:
                data.facts[fact] = self.name


def _netlist(source=COUNTER_SRC, top="top"):
    from repro.hdl import elaborate, parse

    return elaborate(parse(source), top)


class TestPassManager:
    def test_compile_pipeline_is_topo_ordered(self):
        order = build_compile_pipeline().order
        assert order.index("elab_facts") < order.index("constprop")
        assert order.index("constprop") < order.index("deadlogic")
        assert order.index("deadlogic") < order.index("sensitivity")
        assert order.index("sanitize_plan") < order.index("codegen")
        assert order[-1] == "codegen"

    def test_missing_requirement_fails_at_build_time(self):
        manager = PassManager([_Stub("a", requires=("nothing.produces",))])
        with pytest.raises(PipelineError, match="no registered pass"):
            manager.build()

    def test_duplicate_producer_rejected(self):
        manager = PassManager([
            _Stub("a", produces=("x",)),
            _Stub("b", produces=("x",)),
        ])
        with pytest.raises(PipelineError, match="produced by both"):
            manager.build()

    def test_dependency_cycle_rejected(self):
        manager = PassManager([
            _Stub("a", requires=("y",), produces=("x",)),
            _Stub("b", requires=("x",), produces=("y",)),
        ])
        with pytest.raises(PipelineError, match="cycle"):
            manager.build()

    def test_registration_order_broken_by_dependencies(self):
        pipeline = PassManager([
            _Stub("late", requires=("x",)),
            _Stub("early", produces=("x",)),
        ]).build()
        assert pipeline.order == ["early", "late"]

    def test_declared_but_unproduced_fact_raises_at_run(self):
        pipeline = PassManager([
            _Stub("liar", produces=("x",), write=False),
        ]).build()
        with pytest.raises(PipelineError, match="did not produce"):
            pipeline.run(PassData(netlist=_netlist()))

    def test_run_opt_pipeline_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown opt level"):
            run_opt_pipeline(_netlist(), opt="extreme")


CONST_SRC = """
module m (
  input clk,
  input [7:0] a,
  output [7:0] y
);
  wire [7:0] k;
  wire [7:0] unused;
  assign k = 8'd5;
  assign unused = a ^ 8'd77;
  assign y = a + k;
endmodule
"""

GUARD_SRC = """
module m (
  input clk,
  input [7:0] a,
  input [7:0] b,
  output [7:0] y,
  output [7:0] q_out
);
  reg [7:0] t1;
  reg [7:0] t2;
  reg [7:0] q;
  always @(*) begin
    t1 = a + b;
    t2 = t1 ^ 8'h0F;
  end
  assign y = t2;
  assign q_out = q;
  always @(posedge clk) begin
    q <= t2;
  end
endmodule
"""


class TestOptimizationPasses:
    def test_constprop_and_dead_logic_shrink_generated_code(self):
        _, plain = compile_design(CONST_SRC, "m")
        _, opt = compile_design(CONST_SRC, "m", opt="basic")
        (plain_mod,) = plain.values()
        (opt_mod,) = opt.values()
        # The constant wire folds into its use and both the constant
        # assign and the unused assign disappear from the source.
        assert "v_unused" not in opt_mod.source
        assert "v_unused" in plain_mod.source
        assert len(opt_mod.source) < len(plain_mod.source)
        assert opt_mod.opt == "basic"

    def test_basic_opt_bit_exact_on_const_design(self):
        plain_netlist, plain_lib = compile_design(CONST_SRC, "m")
        opt_netlist, opt_lib = compile_design(CONST_SRC, "m", opt="basic")
        plain = Pipe(plain_netlist.top, plain_lib)
        opt = Pipe(opt_netlist.top, opt_lib)
        for a in (0, 1, 5, 0x80, 0xFF):
            plain.set_inputs(a=a)
            opt.set_inputs(a=a)
            assert plain.eval() == opt.eval()

    def test_full_opt_emits_sensitivity_guard(self):
        _, lib = compile_design(GUARD_SRC, "m", opt="full")
        (mod,) = lib.values()
        assert mod.sens_slot_count == 1
        assert mod.opt == "full"
        # Guard slots ride at the end of the state vector.
        assert mod.state_size == mod.sens_base + 2

    def test_guarded_module_bit_exact_including_held_inputs(self):
        plain_netlist, plain_lib = compile_design(GUARD_SRC, "m")
        opt_netlist, opt_lib = compile_design(GUARD_SRC, "m", opt="full")
        plain = Pipe(plain_netlist.top, plain_lib)
        opt = Pipe(opt_netlist.top, opt_lib)
        stim = [(3, 4), (3, 4), (3, 4), (250, 9), (0, 0), (0, 0), (7, 7)]
        for a, b in stim:
            plain.set_inputs(a=a, b=b)
            opt.set_inputs(a=a, b=b)
            assert plain.eval() == opt.eval()
            plain.tick()
            opt.tick()
            assert plain.eval() == opt.eval()

    def test_opt_none_module_has_no_guard_slots(self):
        _, lib = compile_design(GUARD_SRC, "m")
        (mod,) = lib.values()
        assert mod.sens_slot_count == 0
        assert mod.opt == "none"


class TestStoreKeySeparation:
    KEY = ("m#()", "fp0", ("child-fp",), "branch")

    def test_opt_levels_address_distinct_artifacts(self):
        none_digest = key_digest(self.KEY + (False, "none"))
        basic_digest = key_digest(self.KEY + (False, "basic"))
        full_digest = key_digest(self.KEY + (False, "full"))
        assert len({none_digest, basic_digest, full_digest}) == 3

    def test_legacy_keys_address_opt_none(self):
        assert key_digest(self.KEY) == key_digest(self.KEY + (False, "none"))
        assert key_digest(self.KEY + (False,)) == key_digest(
            self.KEY + (False, "none")
        )
        # ... and plan_fp="" (the v4 component): same address either way.
        assert key_digest(self.KEY) == key_digest(
            self.KEY + (False, "none", "")
        )

    def test_plan_fp_addresses_distinct_artifacts(self):
        base = self.KEY + (True, "none", "")
        elided = self.KEY + (True, "none", "abc123+e")
        assert key_digest(base) != key_digest(elided)

    def test_normalize_pads_legacy_tuples(self):
        assert _normalize_key(self.KEY) == self.KEY + (False, "none", "")
        assert _normalize_key(self.KEY + (True,)) == self.KEY + (
            True, "none", ""
        )
        full = self.KEY + (False, "full", "d1gest")
        assert _normalize_key(full) == full

    def test_store_roundtrip_preserves_opt_fields(self, tmp_path):
        from repro.server.store import ArtifactStore

        _, lib = compile_design(GUARD_SRC, "m", opt="full")
        (mod,) = lib.values()
        store = ArtifactStore(str(tmp_path))
        cache_key = (mod.key, "fp", (), "branch", False, "full")
        assert store.save(cache_key, mod)
        loaded = store.load(cache_key)
        assert loaded is not None
        assert loaded.opt == "full"
        assert loaded.sens_slot_count == mod.sens_slot_count
        assert loaded.state_size == mod.state_size
        # The opt=none address must still be a miss: levels coexist.
        assert store.load((mod.key, "fp", (), "branch", False, "none")) is None


ADDER_EDIT = COUNTER_SRC.replace(
    "assign sum = a + b;", "assign sum = a + b + 8'd1;"
)


class TestPassCacheIncrementality:
    def _session(self, opt="full"):
        session = LiveSession(COUNTER_SRC, checkpoint_interval=10, opt=opt)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        return session, tb

    def test_hot_reload_reruns_passes_only_for_dirty_module(self):
        session, tb = self._session()
        session.run(tb, "p0", 12)
        report = session.apply_change(ADDER_EDIT)
        assert report.behavioral
        assert report.opt == "full"
        for name in ("constprop", "deadlogic", "sensitivity"):
            computed = report.pass_computed_keys.get(name, [])
            reused = report.pass_reused_keys.get(name, [])
            # Only the edited adder specialization recomputed; the
            # untouched counter/top rode their per-pass caches.
            assert computed and all("adder" in key for key in computed), (
                name, computed,
            )
            assert any("counter" in key for key in reused), (name, reused)
            assert any("top" in key for key in reused), (name, reused)

    def test_first_compile_computes_every_key(self):
        session, _ = self._session()
        report = session._pipe_sessions["p0"].compile_result.report
        for name in ("constprop", "deadlogic", "sensitivity"):
            assert not report.pass_reused.get(name)
            assert len(report.pass_computed.get(name, [])) == 3

    def test_erd_report_serializes_pass_keys(self):
        from repro.server.service import summarize

        session, tb = self._session()
        session.run(tb, "p0", 5)
        report = session.apply_change(ADDER_EDIT)
        data = summarize(report)
        assert data["opt"] == "full"
        assert set(data["pass_computed_keys"]) >= {"constprop"}
        assert isinstance(data["pass_reused_keys"], dict)


class TestDataflowCacheMatrix:
    """Satellite: a hot reload of one module must not recompute
    ``dataflow.facts`` for clean modules — at every (opt, sanitize)
    combination that runs the pass at all."""

    MATRIX = [
        (opt, sanitize)
        for opt in ("none", "basic", "full")
        for sanitize in ("off", "report")
    ]

    def _session(self, opt, sanitize):
        session = LiveSession(
            COUNTER_SRC, checkpoint_interval=10, opt=opt, sanitize=sanitize
        )
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        return session, tb

    @pytest.mark.parametrize("opt,sanitize", MATRIX)
    def test_hot_reload_keeps_clean_module_facts(self, opt, sanitize):
        session, tb = self._session(opt, sanitize)
        session.run(tb, "p0", 8)
        report = session.apply_change(ADDER_EDIT)
        computed = report.pass_computed_keys.get("dataflow", [])
        reused = report.pass_reused_keys.get("dataflow", [])
        if opt == "none" and sanitize == "off":
            # Gated off: nothing downstream consumes the facts.
            assert computed == [] and reused == []
        else:
            # Only the edited adder recomputes; its boundary facts are
            # unchanged, so counter/top ride the facts cache.
            assert computed and all("adder" in key for key in computed), (
                computed,
            )
            assert any("counter" in key for key in reused), reused
            assert any("top" in key for key in reused), reused
        # And the swap itself stayed live: same cycle, still running.
        assert session.pipe("p0").cycle == 8
        session.run(tb, "p0", 2)
        assert session.pipe("p0").cycle == 10

    @pytest.mark.parametrize("sanitize", ["off", "report"])
    def test_facts_ride_cache_when_only_opt_level_toggles(self, sanitize):
        session, tb = self._session("basic", sanitize)
        session.run(tb, "p0", 4)
        result = session.set_opt("full")
        assert result["level"] == "full"
        report = session._pipe_sessions["p0"].compile_result.report
        # The toggle recompiles codegen but the netlist is untouched:
        # every dataflow key must come from the cache.
        assert not report.pass_computed.get("dataflow")
        assert len(report.pass_reused.get("dataflow", [])) == 3


class TestLiveOptToggle:
    def _session(self, opt="none"):
        session = LiveSession(COUNTER_SRC, checkpoint_interval=10, opt=opt)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        return session, tb

    def test_rejects_unknown_level(self):
        with pytest.raises(SimulationError, match="opt"):
            LiveSession(COUNTER_SRC, opt="turbo")

    def test_toggle_recompiles_and_preserves_state(self):
        session, tb = self._session()
        session.run(tb, "p0", 9)
        before = session.pipe("p0").outputs()
        result = session.set_opt("full")
        assert result["level"] == "full"
        assert result["previous"] == "none"
        assert result["recompiled_keys"]
        assert session.opt == "full"
        assert session.pipe("p0").outputs() == before
        session.run(tb, "p0", 3)
        assert session.pipe("p0").outputs()["c0"] == 12

    def test_toggle_back_to_none(self):
        session, tb = self._session(opt="full")
        session.run(tb, "p0", 4)
        result = session.set_opt("none")
        assert result["level"] == "none"
        session.run(tb, "p0", 4)
        assert session.pipe("p0").outputs()["c0"] == 8

    def test_noop_toggle_recompiles_nothing(self):
        session, _ = self._session(opt="basic")
        result = session.set_opt("basic")
        assert result["recompiled_keys"] == []

    def test_opt_command_verb(self):
        session, tb = self._session()
        interp = CommandInterpreter(session)
        status = interp.execute("opt").value
        assert status["level"] == "none"
        assert "codegen" in status["passes"]
        switched = interp.execute("opt full").value
        assert switched["level"] == "full"
        assert interp.execute("opt").value["level"] == "full"

    def test_opt_status_lists_levels(self):
        session, _ = self._session()
        status = session.opt_status()
        assert tuple(status["levels"]) == ("none", "basic", "full")
