"""HDL sanitizer tests (:mod:`repro.sanitize`).

Covers the runtime hooks in isolation, each check end-to-end through
instrumented codegen, the acceptance scenario — a hot reload that
introduces an uninitialized-register read is caught at the first
offending cycle in ``trap`` mode and reported-but-continues in
``report`` mode, over BOTH the shell and the server — plus the
compile-cache/artifact-store key separation and the ERD report's
sanitized-vs-clean compile split.
"""

from __future__ import annotations

import io

import pytest

from repro.__main__ import Shell
from repro.codegen.pygen import compile_netlist
from repro.hdl import elaborate, parse
from repro.hdl.errors import SimulationError
from repro.live.commands import CommandError, CommandInterpreter
from repro.live.compiler_live import LiveCompiler
from repro.live.session import LiveSession
from repro.sanitize import (
    SAN_NB_CONFLICT,
    SAN_OOB,
    SAN_TRUNC,
    SAN_UNINIT,
    SanitizerError,
    SanitizerRuntime,
)
from repro.server.client import ServerError
from repro.server.service import LiveSimServer
from repro.server.store import ArtifactStore, key_digest
from repro.sim import Pipe
from repro.sim.testbench import reset_sequence

# The acceptance scenario: the edit adds a register that is READ (the
# xor in the comb assign) in the same cycle the swap lands, before the
# new seq write has ever run — a classic hot-reload uninit bug.
SRC = """
module top (
  input clk,
  input rst,
  output [7:0] count
);
  reg [7:0] count_q;
  assign count = count_q;
  always @(posedge clk) begin
    if (rst)
      count_q <= 8'd0;
    else
      count_q <= count_q + 8'd1;
  end
endmodule
"""

EDIT = """
module top (
  input clk,
  input rst,
  output [7:0] count
);
  reg [7:0] count_q;
  reg [7:0] shadow_q;
  assign count = count_q ^ shadow_q;
  always @(posedge clk) begin
    if (rst)
      count_q <= 8'd0;
    else
      count_q <= count_q + 8'd1;
    shadow_q <= count;
  end
endmodule
"""

# The read of shadow_q (the xor) sits on this file-absolute line of EDIT.
EDIT_READ_LINE = EDIT.splitlines().index(
    "  assign count = count_q ^ shadow_q;"
) + 1

# Memory variant: the edit drops the index mask, so the 3-bit counter
# walks past the 4-word memory.
MEM_SRC = """
module top (
  input clk,
  input rst,
  output [7:0] out
);
  reg [7:0] mem [0:3];
  reg [2:0] idx_q;
  assign out = mem[idx_q[1:0]];
  always @(posedge clk) begin
    if (rst) idx_q <= 0;
    else idx_q <= idx_q + 3'd1;
  end
endmodule
"""
MEM_EDIT = MEM_SRC.replace("mem[idx_q[1:0]]", "mem[idx_q]")


def sanitized_pipe(source, top, mode="report"):
    runtime = SanitizerRuntime(mode=mode)
    netlist = elaborate(parse(source), top)
    library = compile_netlist(netlist, sanitize=True, runtime=runtime)
    return Pipe(netlist.top, library), runtime


def live_session(source=SRC, sanitize="off", cycles=25):
    session = LiveSession(source, checkpoint_interval=10, sanitize=sanitize)
    tb = session.load_testbench(reset_sequence("rst", cycles=2))
    session.inst_pipe("p0", session.stage_handle_for("top"))
    if cycles:
        session.run(tb, "p0", cycles)
    return session, tb


# ---------------------------------------------------------------------------
# Runtime hooks in isolation
# ---------------------------------------------------------------------------


class TestRuntimeHooks:
    SITE = ("m", "q", 7)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitize mode"):
            SanitizerRuntime(mode="loud")
        with pytest.raises(SimulationError, match="sanitize"):
            LiveSession(SRC, sanitize="loud")

    def test_hooks_are_value_transparent(self):
        rt = SanitizerRuntime(mode="report")
        assert rt.rr(0b10, 1, 42, self.SITE) == 42
        assert rt.mr([5, 6], 0b01, 3, self.SITE) == 6  # 3 % 2 == 1
        assert rt.ob(9, 4, self.SITE) == 9
        assert rt.tr(0x1FF, 0xFF, self.SITE) == 0x1FF

    def test_report_dedups_sites_but_counts_every_hit(self):
        rt = SanitizerRuntime(mode="report")
        for _ in range(3):
            rt.rr(1, 0, 0, self.SITE)
        assert rt.hits[SAN_UNINIT] == 3
        assert len(rt.findings) == 1
        diag = rt.findings[0]
        assert diag.kind == SAN_UNINIT
        assert diag.module == "m" and diag.line == 7
        assert diag.check == "sanitize" and diag.severity == "warning"

    def test_off_mode_counts_but_never_records(self):
        rt = SanitizerRuntime(mode="off")
        rt.ob(9, 4, self.SITE)
        assert rt.hits[SAN_OOB] == 1
        assert rt.findings == []

    def test_trap_mode_raises_with_site(self):
        rt = SanitizerRuntime(mode="trap")
        with pytest.raises(SanitizerError) as exc_info:
            rt.mr([0, 0], 0, 5, self.SITE)
        exc = exc_info.value
        assert exc.kind == SAN_OOB
        assert (exc.module, exc.signal, exc.line) == self.SITE
        assert isinstance(exc, SimulationError)

    def test_nw_conflict_only_across_blocks_with_overlap(self):
        rt = SanitizerRuntime(mode="report")
        writes = {}
        rt.nw(writes, 0, 0, 0x0F, self.SITE)
        rt.nw(writes, 0, 0, 0x0F, self.SITE)  # same block: fine
        assert rt.hits[SAN_NB_CONFLICT] == 0
        rt.nw(writes, 0, 1, 0xF0, self.SITE)  # disjoint bits: fine
        assert rt.hits[SAN_NB_CONFLICT] == 0
        rt.nw(writes, 0, 2, 0x18, self.SITE)  # overlaps the union
        assert rt.hits[SAN_NB_CONFLICT] == 1

    def test_reset_preserves_mode(self):
        rt = SanitizerRuntime(mode="report")
        rt.ob(9, 4, self.SITE)
        rt.reset()
        assert rt.mode == "report"
        assert rt.findings == [] and rt.hits[SAN_OOB] == 0


# ---------------------------------------------------------------------------
# Each check through instrumented codegen
# ---------------------------------------------------------------------------


class TestChecksThroughCodegen:
    def test_cold_start_is_never_poisoned(self):
        pipe, rt = sanitized_pipe(SRC, "top")
        pipe.set_inputs(rst=0)
        pipe.step(10)
        assert rt.findings == []
        assert all(count == 0 for count in rt.hits.values())

    def test_oob_part_select(self):
        src = """
module m (
  input clk,
  input [5:0] data,
  input [2:0] idx,
  output y
);
  assign y = data[idx];
endmodule
"""
        pipe, rt = sanitized_pipe(src, "m")
        pipe.set_inputs(data=0b100000, idx=5)
        assert pipe.eval()["y"] == 1
        assert rt.hits[SAN_OOB] == 0
        pipe.set_inputs(idx=7)
        assert pipe.eval()["y"] == 0  # clean semantics: reads as zero
        assert rt.hits[SAN_OOB] == 1
        assert "index 7 out of range [0, 6)" in rt.findings[0].message

    def test_trunc_overflow_reports_lost_bits(self):
        src = """
module m (
  input clk,
  input [7:0] a,
  input [7:0] b,
  output [3:0] y
);
  assign y = a + b;
endmodule
"""
        pipe, rt = sanitized_pipe(src, "m")
        pipe.set_inputs(a=3, b=4)
        assert pipe.eval()["y"] == 7
        assert rt.hits[SAN_TRUNC] == 0  # value fits: silent
        pipe.set_inputs(a=0xF0, b=1)
        assert pipe.eval()["y"] == 1  # still masked like clean code
        assert rt.hits[SAN_TRUNC] == 1
        assert "lost bits 0xf0" in rt.findings[0].message

    def test_nb_write_conflict_is_dynamic(self):
        src = """
module m (
  input clk,
  input en1,
  input en2,
  input [3:0] a,
  input [3:0] b,
  output [3:0] y
);
  reg [3:0] q;
  assign y = q;
  always @(posedge clk) begin
    if (en1) q <= a;
  end
  always @(posedge clk) begin
    if (en2) q <= b;
  end
endmodule
"""
        pipe, rt = sanitized_pipe(src, "m")
        pipe.set_inputs(en1=1, en2=0, a=3, b=9)
        pipe.step(1)
        assert rt.hits[SAN_NB_CONFLICT] == 0  # one writer per cycle: fine
        pipe.set_inputs(en1=1, en2=1)
        pipe.step(1)
        assert rt.hits[SAN_NB_CONFLICT] == 1
        assert rt.findings[0].kind == SAN_NB_CONFLICT
        assert "another always block" in rt.findings[0].message


# ---------------------------------------------------------------------------
# The acceptance scenario through the live session
# ---------------------------------------------------------------------------


class TestHotReloadUninitRead:
    def test_report_mode_reports_and_continues(self):
        session, tb = live_session(sanitize="report")
        assert session.sanitize_runtime.findings == []
        report = session.apply_change(EDIT)
        assert report.sanitize is True
        uninit = [d for d in report.new_findings if d.kind == SAN_UNINIT]
        assert uninit, [str(d) for d in report.new_findings]
        diag = uninit[0]
        assert diag.module == "top"
        assert "shadow_q" in diag.message
        assert diag.line == EDIT_READ_LINE  # file-absolute
        # report mode: the session keeps simulating past the finding.
        before = session.peek("p0")["count"]
        session.run(tb, "p0", 5)
        assert session.peek("p0")["count"] != before
        # ...and the merged lint view carries the runtime finding too.
        merged = session.lint("p0")
        assert any(d.kind == SAN_UNINIT for d in merged.diagnostics)

    def test_trap_mode_raises_at_first_offending_cycle(self):
        session, _ = live_session(sanitize="trap")
        with pytest.raises(SanitizerError) as exc_info:
            session.apply_change(EDIT)
        exc = exc_info.value
        assert exc.kind == SAN_UNINIT
        assert exc.module == "top"
        assert exc.signal == "shadow_q"
        assert exc.line == EDIT_READ_LINE
        assert "shadow_q" in str(exc) and "line" in str(exc)

    def test_oob_after_reload_via_memory_index(self):
        session, _ = live_session(MEM_SRC, sanitize="report", cycles=30)
        report = session.apply_change(MEM_EDIT)
        oob = [d for d in report.new_findings if d.kind == SAN_OOB]
        assert oob and "memory index" in oob[0].message

    def test_full_replay_from_reset_is_defined(self):
        # With no checkpoint to restore, the reload re-simulates from
        # cycle 0 under the new RTL: every register value is genuinely
        # recomputed from the defined power-on state, so nothing is
        # poisoned and no finding fires.  Only a checkpoint-based
        # replay *introduces* state.
        session = LiveSession(
            SRC, checkpoint_interval=10_000, sanitize="report"
        )
        tb = session.load_testbench(reset_sequence("rst", cycles=2))
        session.inst_pipe("p0", session.stage_handle_for("top"))
        session.run(tb, "p0", 25)
        report = session.apply_change(EDIT)
        assert report.checkpoint_cycle is None
        assert report.cycles_replayed == 25
        assert report.new_findings == []

    def test_clean_reload_stays_clean(self):
        session, _ = live_session(sanitize="report")
        tweaked = SRC.replace("count_q + 8'd1", "count_q + 8'd2")
        report = session.apply_change(tweaked)
        assert report.behavioral
        assert report.new_findings == []
        assert session.sanitize_runtime.findings == []


# ---------------------------------------------------------------------------
# Mode toggling (the `san` verb's session half)
# ---------------------------------------------------------------------------


class TestSetSanitize:
    def test_off_to_report_recompiles_and_preserves_state(self):
        session, tb = live_session()
        before = session.peek("p0")["count"]
        result = session.set_sanitize("report")
        assert result["previous"] == "off"
        assert result["recompiled_keys"]  # crossed the codegen boundary
        assert result["swapped_pipes"] == ["p0"]
        assert session.peek("p0")["count"] == before
        # Migrated state is not poisoned: the swap itself is silent.
        session.run(tb, "p0", 5)
        assert session.sanitize_runtime.findings == []
        assert session.sanitize_status()["instrumented"] is True

    def test_report_to_trap_is_runtime_only(self):
        session, _ = live_session(sanitize="report")
        result = session.set_sanitize("trap")
        assert result["recompiled_keys"] == []
        assert result["swapped_pipes"] == []
        assert session.sanitize_mode == "trap"

    def test_toggle_back_off_restores_clean_codegen(self):
        session, tb = live_session()
        session.set_sanitize("report")
        cached = len(session.compiler._cache)
        session.set_sanitize("off")
        # Both variants stay cached: flipping back is swap-only.
        assert len(session.compiler._cache) == cached
        result = session.set_sanitize("report")
        assert result["swapped_pipes"] == ["p0"]
        session.run(tb, "p0", 3)
        assert session.sanitize_status()["instrumented"] is True

    def test_erd_report_splits_sanitized_from_clean_compiles(self):
        # Clean session: the sanitized subsets stay empty.
        session, _ = live_session()
        report = session.apply_change(EDIT)
        assert report.sanitize is False
        assert report.recompiled_keys
        assert report.sanitized_recompiled_keys == []
        assert report.sanitized_reused_keys == []
        # Sanitized session: every compile lands in the sanitized split.
        session, _ = live_session(sanitize="report")
        report = session.apply_change(EDIT)
        assert report.sanitize is True
        assert report.sanitized_recompiled_keys == report.recompiled_keys
        reverted = session.apply_change(SRC)
        assert reverted.sanitized_reused_keys == reverted.reused_keys


# ---------------------------------------------------------------------------
# The `san` command: interpreter + shell
# ---------------------------------------------------------------------------


class TestSanCommand:
    def test_interpreter_status_and_toggle(self):
        session, _ = live_session(cycles=0)
        interp = CommandInterpreter(session)
        status = interp.execute("san").value
        assert status["mode"] == "off"
        assert status["instrumented"] is False
        assert interp.execute("san report").value["mode"] == "report"
        status = interp.execute("san").value
        assert status["instrumented"] is True
        assert set(status["hits"]) == {
            SAN_UNINIT, SAN_OOB, SAN_TRUNC, SAN_NB_CONFLICT,
        }
        with pytest.raises(CommandError):
            interp.execute("san loud")

    def _shell(self):
        out = io.StringIO()
        shell = Shell(SRC, "top", checkpoint_interval=10, reset_cycles=2,
                      out=out)
        handle = shell.session.stage_handle_for("top")
        shell.run_script(f"instPipe p0, {handle}\nrun tb0, p0, 25")
        return shell, out

    def test_shell_report_mode_prints_finding(self, tmp_path):
        shell, out = self._shell()
        shell.execute("san report")
        edited = tmp_path / "edited.v"
        edited.write_text(EDIT)
        shell.execute(f"reload {edited}")
        text = out.getvalue()
        assert SAN_UNINIT in text
        assert "shadow_q" in text
        # The session survived and keeps counting.
        shell.execute("outputs p0")
        assert "cycle" in out.getvalue().splitlines()[-1]

    def test_shell_trap_mode_survives_the_trap(self, tmp_path):
        shell, out = self._shell()
        shell.execute("san trap")
        edited = tmp_path / "edited.v"
        edited.write_text(EDIT)
        alive = shell.execute(f"reload {edited}")
        assert alive is True  # the shell did not exit
        text = out.getvalue()
        assert "sanitizer trap:" in text
        assert SAN_UNINIT in text and "shadow_q" in text
        shell.execute("san")  # still responsive
        assert "'mode': 'trap'" in out.getvalue()


# ---------------------------------------------------------------------------
# Over the server
# ---------------------------------------------------------------------------


@pytest.fixture
def server():
    srv = LiveSimServer(port=0)
    srv.start()
    yield srv
    srv.shutdown()


def _client(srv):
    from repro.server.client import LiveSimClient

    host, port = srv.address
    return LiveSimClient(host, port, timeout=30.0)


class TestServerSanitize:
    def test_report_mode_streams_lint_findings_event(self, server):
        client = _client(server)
        try:
            info = client.open_session("san", SRC)
            handle = info["handles"]["top"]
            assert client.command("san", "san report")["mode"] == "report"
            client.command("san", f"instPipe p0, {handle}")
            client.command("san", "run tb0, p0, 20")
            client.command("san", "chkp p0")
            client.command("san", "run tb0, p0, 5")
            reload_result = client.reload("san", EDIT)
            kinds = [f["kind"] for f in reload_result["new_findings"]]
            assert SAN_UNINIT in kinds
            event = client.wait_event("lint_findings", timeout=30.0)
            fresh = [f for f in event.data["new_findings"]
                     if f["kind"] == SAN_UNINIT]
            assert fresh and fresh[0]["module"] == "top"
            assert fresh[0]["line"] == EDIT_READ_LINE
            status = client.command("san", "san")
            assert status["hits"][SAN_UNINIT] > 0
        finally:
            client.close()

    def test_trap_mode_maps_to_sanitizer_error(self, server):
        client = _client(server)
        try:
            info = client.open_session("trap", SRC)
            handle = info["handles"]["top"]
            client.command("trap", "san trap")
            client.command("trap", f"instPipe p0, {handle}")
            client.command("trap", "run tb0, p0, 20")
            client.command("trap", "chkp p0")
            client.command("trap", "run tb0, p0, 5")
            with pytest.raises(ServerError) as exc_info:
                client.reload("trap", EDIT)
            assert exc_info.value.kind == "sanitizer"
            assert "shadow_q" in exc_info.value.message
        finally:
            client.close()


# ---------------------------------------------------------------------------
# Compile cache + artifact store key separation
# ---------------------------------------------------------------------------


class TestStoreKeySeparation:
    def test_key_digest_isolates_the_sanitize_flag(self):
        clean = ("m", "fp", ("a",), "branch")
        assert key_digest(clean) != key_digest(clean + (True,))
        # Legacy 4-tuples address the same artifact as explicit False:
        # pre-sanitizer stores stay readable.
        assert key_digest(clean) == key_digest(clean + (False,))

    def test_clean_and_sanitized_coexist_on_disk(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        LiveCompiler(SRC, store=store).compile_top("top")
        assert len(store) == 1
        runtime = SanitizerRuntime(mode="report")
        LiveCompiler(
            SRC, store=store, sanitize=True, sanitize_runtime=runtime
        ).compile_top("top")
        assert len(store) == 2  # same module, two artifacts

    def test_rehydration_restores_sanitized_codegen(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        runtime = SanitizerRuntime(mode="report")
        compiler = LiveCompiler(
            SRC, store=store, sanitize=True, sanitize_runtime=runtime
        )
        compiler.compile_top("top")
        cache_key = next(iter(compiler._cache))
        original = compiler._cache[cache_key]
        # A fresh runtime stands in for the restoring session.
        runtime2 = SanitizerRuntime(mode="report")
        loaded = store.load(cache_key, sanitize_runtime=runtime2)
        assert loaded is not None
        assert loaded.sanitize is True
        assert loaded.state_size == original.state_size
        # The rehydrated hooks really call the new runtime: poison a
        # register by hand and read it.
        state = loaded.make_state()
        state[loaded.reg_poison_slot] = (1 << len(loaded.reg_slots)) - 1
        loaded.eval_out_fn(state, ())
        assert runtime2.hits[SAN_UNINIT] > 0

    def test_sanitized_artifact_without_runtime_is_a_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        runtime = SanitizerRuntime(mode="report")
        compiler = LiveCompiler(
            SRC, store=store, sanitize=True, sanitize_runtime=runtime
        )
        compiler.compile_top("top")
        cache_key = next(iter(compiler._cache))
        assert store.load(cache_key) is None
