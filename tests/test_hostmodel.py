"""Host model tests: cache simulator, branch predictor, trace
synthesis, and the Table VII qualitative shapes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.cost import design_cost
from repro.hdl import elaborate, parse
from repro.hostmodel.branch import BranchPredictor
from repro.hostmodel.cache import CacheConfig, CacheSim
from repro.hostmodel.perf import HostMachine, PerfModel
from repro.hostmodel.trace import TraceSynthesizer
from repro.riscv.pgas import build_pgas_source, mesh_top_name


class TestCacheSim:
    def test_first_access_misses_second_hits(self):
        cache = CacheSim()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_line_hits(self):
        cache = CacheSim(CacheConfig(line_bytes=64))
        cache.access(0x1000)
        assert cache.access(0x103F)

    def test_next_line_misses(self):
        cache = CacheSim(CacheConfig(line_bytes=64))
        cache.access(0x1000)
        assert not cache.access(0x1040)

    def test_lru_eviction(self):
        config = CacheConfig(size_bytes=2 * 64, ways=2, line_bytes=64)
        cache = CacheSim(config)
        # One set, two ways: three distinct lines mapping to set 0.
        lines = [0x0000, 0x1000, 0x2000]
        for addr in lines:
            cache.access(addr)
        assert not cache.access(0x0000)  # evicted (LRU)
        assert cache.access(0x2000)

    def test_lru_touch_refreshes(self):
        config = CacheConfig(size_bytes=2 * 64, ways=2, line_bytes=64)
        cache = CacheSim(config)
        cache.access(0x0000)
        cache.access(0x1000)
        cache.access(0x0000)  # refresh
        cache.access(0x2000)  # evicts 0x1000, not 0x0000
        assert cache.access(0x0000)
        assert not cache.access(0x1000)

    def test_working_set_within_capacity_all_hits(self):
        cache = CacheSim()  # 32 KB
        for _ in range(3):
            cache.access_range(0, 16 * 1024)
        stats = cache.stats
        # Only the first sweep misses.
        assert stats.misses == 16 * 1024 // 64

    def test_working_set_beyond_capacity_thrashes(self):
        cache = CacheSim()  # 32 KB
        for _ in range(3):
            cache.access_range(0, 128 * 1024)
        assert cache.stats.miss_rate > 0.9

    def test_access_range_line_count(self):
        cache = CacheSim(CacheConfig(line_bytes=64))
        misses = cache.access_range(10, 130)  # spans 3 lines
        assert misses == 3

    def test_mpki(self):
        cache = CacheSim()
        cache.access(0)
        cache.access(0)
        assert cache.stats.mpki(1000) == 1.0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, ways=3, line_bytes=64).num_sets

    @given(addresses=st.lists(st.integers(0, 1 << 20), min_size=1,
                              max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_stats_invariants(self, addresses):
        cache = CacheSim()
        for addr in addresses:
            cache.access(addr)
        assert cache.stats.accesses == len(addresses)
        assert 0 <= cache.stats.misses <= cache.stats.accesses
        assert cache.resident_lines() <= (
            cache.config.size_bytes // cache.config.line_bytes
        )


class TestBranchPredictor:
    def test_always_taken_learns(self):
        predictor = BranchPredictor()
        for _ in range(20):
            predictor.predict_and_update(1, True)
        assert predictor.stats.mispredict_rate < 0.2

    def test_alternating_pattern_hurts(self):
        predictor = BranchPredictor()
        for i in range(100):
            predictor.predict_and_update(1, bool(i % 2))
        assert predictor.stats.mispredict_rate > 0.3

    def test_sites_independent(self):
        predictor = BranchPredictor()
        for _ in range(20):
            predictor.predict_and_update(1, True)
            predictor.predict_and_update(2, False)
        assert predictor.stats.mispredict_rate < 0.3

    def test_aliased_sites_interfere(self):
        predictor = BranchPredictor(table_size=1)
        for _ in range(50):
            predictor.predict_and_update(1, True)
            predictor.predict_and_update(2, False)
        assert predictor.stats.mispredict_rate > 0.4

    def test_table_size_power_of_two(self):
        with pytest.raises(ValueError):
            BranchPredictor(table_size=1000)


def costs_for(n):
    netlist = elaborate(parse(build_pgas_source(n)), mesh_top_name(n))
    return {
        "livesim": design_cost(netlist, "branch"),
        "verilator": design_cost(netlist, "select"),
    }


class TestCostModel:
    def test_shared_code_footprint_flat_in_instances(self):
        c1 = costs_for(1)["livesim"]
        c2 = costs_for(2)["livesim"]
        assert c2.code_bytes == pytest.approx(c1.code_bytes, rel=0.2)

    def test_replicated_code_footprint_scales_with_instances(self):
        c1 = costs_for(1)["verilator"]
        c2 = costs_for(2)["verilator"]
        assert c2.code_bytes > 3 * c1.code_bytes

    def test_instructions_scale_with_cores(self):
        c1 = costs_for(1)["livesim"]
        c2 = costs_for(2)["livesim"]
        assert c2.instructions > 3 * c1.instructions

    def test_select_style_more_work_per_module(self):
        costs = costs_for(1)
        # Evaluating both mux arms costs more executed work... but the
        # inline factor gives some back; footprints differ regardless.
        assert costs["verilator"].code_bytes != costs["livesim"].code_bytes

    def test_data_footprint_identical_between_styles(self):
        costs = costs_for(1)
        assert costs["livesim"].data_bytes == costs["verilator"].data_bytes


class TestTraceAndPerf:
    def test_trace_reports_shared_vs_private_code(self):
        costs = costs_for(2)
        shared = TraceSynthesizer(costs["livesim"])
        private = TraceSynthesizer(costs["verilator"])
        assert shared.total_code_bytes < private.total_code_bytes

    def test_livesim_icache_stays_cold_verilator_thrashes(self):
        costs = costs_for(4)  # 16 cores: replicated code >> 32 KB I$
        live = TraceSynthesizer(costs["livesim"]).run(cycles=4)
        veri = TraceSynthesizer(costs["verilator"]).run(cycles=4)
        assert live.i_mpki < 1.0
        assert veri.i_mpki > 10 * max(live.i_mpki, 0.01)

    def test_livesim_branch_mpki_higher(self):
        costs = costs_for(2)
        live = TraceSynthesizer(costs["livesim"]).run(cycles=4)
        veri = TraceSynthesizer(costs["verilator"]).run(cycles=4)
        assert live.br_mpki > veri.br_mpki

    def test_perf_model_khz_positive_and_finite(self):
        costs = costs_for(1)
        result = PerfModel().evaluate(costs["livesim"], trace_cycles=4)
        assert 0 < result.khz < float("inf")
        assert 0 < result.ipc <= HostMachine().base_ipc

    def test_calibration_pins_anchor(self):
        costs = costs_for(1)
        model = PerfModel().calibrated(costs["livesim"], 1974.0,
                                       trace_cycles=4)
        result = model.evaluate(costs["livesim"], trace_cycles=4)
        assert result.khz == pytest.approx(1974.0, rel=0.01)

    def test_misses_reduce_ipc(self):
        costs = costs_for(4)
        model = PerfModel()
        live = model.evaluate(costs["livesim"], trace_cycles=4)
        veri = model.evaluate(costs["verilator"], trace_cycles=4)
        assert veri.ipc < live.ipc  # I$ thrash dominates

    def test_trace_deterministic(self):
        costs = costs_for(1)
        a = TraceSynthesizer(costs["livesim"], seed=7).run(cycles=4)
        b = TraceSynthesizer(costs["livesim"], seed=7).run(cycles=4)
        assert (a.i_mpki, a.d_mpki, a.br_mpki) == (b.i_mpki, b.d_mpki, b.br_mpki)


class TestCostModelGroundTruth:
    def test_code_bytes_track_generated_source(self, pgas1_netlist_library):
        """The cost model's footprint estimate must correlate with the
        real generated code: bigger modules get bigger estimates (rank
        agreement), and totals stay within an order of magnitude of a
        bytes-per-source-byte scale factor."""
        from repro.codegen.cost import module_cost

        _, netlist, library = pgas1_netlist_library
        pairs = []
        for key, code in library.items():
            est = module_cost(netlist.modules[key], "branch").code_bytes
            real = len(code.source)
            pairs.append((est, real, key))
        # Rank agreement on the extremes: the two biggest modules by
        # estimate are the two biggest by generated source (rv_ex and
        # rv_id are a near-tie, so exact top-1 is not required), and
        # the smallest agrees exactly.
        top2_est = {p[2] for p in sorted(pairs)[-2:]}
        top2_real = {p[2] for p in sorted(pairs, key=lambda p: p[1])[-2:]}
        assert top2_est == top2_real
        smallest_est = min(pairs)[2]
        smallest_real = min(pairs, key=lambda p: p[1])[2]
        assert smallest_est == smallest_real
        # Scale: estimate/real ratio within 10x across all modules.
        ratios = [est / real for est, real, _ in pairs]
        assert max(ratios) / min(ratios) < 10

    def test_instruction_estimate_tracks_measured_work(
        self, pgas1_netlist_library
    ):
        """Modules the cost model says are heavier really take longer
        to evaluate (coarse: the core's EX stage vs the tiny IF stage)."""
        from repro.codegen.cost import module_cost

        _, netlist, _ = pgas1_netlist_library
        ex = module_cost(netlist.modules["rv_ex"], "branch").instructions
        iff = module_cost(netlist.modules["rv_if"], "branch").instructions
        assert ex > 5 * iff
