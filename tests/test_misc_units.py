"""Small-unit coverage: reporting, IR identities, diagnostics lines."""

import pytest

from repro.bench.reporting import format_series, format_table
from repro.hdl import elaborate, parse
from repro.hdl.errors import ParseError
from repro.ir.netlist import spec_key


class TestSpecKey:
    def test_no_params(self):
        assert spec_key("adder", {}) == "adder"

    def test_params_sorted(self):
        assert spec_key("m", {"B": 2, "A": 1}) == "m#(A=1,B=2)"

    def test_distinct_for_distinct_values(self):
        assert spec_key("m", {"W": 8}) != spec_key("m", {"W": 9})


class TestInstanceCount:
    def test_diamond_counts_shared_spec_twice(self):
        netlist = elaborate(parse("""
module leaf (input clk); endmodule
module branch (input clk);
  leaf u (.clk(clk));
endmodule
module m (input clk);
  branch a (.clk(clk));
  branch b (.clk(clk));
endmodule
"""), "m")
        counts = netlist.instance_count()
        assert counts == {"m": 1, "branch": 2, "leaf": 2}

    def test_subtree_counts(self):
        netlist = elaborate(parse("""
module leaf (input clk); endmodule
module mid (input clk);
  leaf x (.clk(clk));
  leaf y (.clk(clk));
endmodule
module m (input clk);
  mid u (.clk(clk));
endmodule
"""), "m")
        assert netlist.instance_count("mid") == {"mid": 1, "leaf": 2}


class TestFormatTable:
    def test_alignment_and_na(self):
        text = format_table(
            "Demo", ["col a", "b"],
            [[1, None], [22.5, "x"]],
            row_labels=["r1", "r2"],
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "NA" in text
        assert "22.50" in text

    def test_large_floats_get_thousands_separator(self):
        text = format_table("t", ["v"], [[12345.6]])
        assert "12,346" in text

    def test_no_row_labels(self):
        text = format_table("t", ["a", "b"], [[1, 2]])
        assert "1" in text and "2" in text


class TestFormatSeries:
    def test_series_rendering(self):
        text = format_series(
            "Fig", {"line1": [(1, 0.5), (10, None)]},
            x_label="cycles", y_label="s",
        )
        assert "-- line1" in text
        assert "0.500" in text
        assert "NA" in text


class TestDiagnosticLineNumbers:
    def test_parse_error_points_at_original_line(self):
        # The syntax error sits on line 6 of the raw source; the
        # preprocessor keeps line alignment so the parser reports 6.
        source = """\
`define W 8

module m (
  input [`W-1:0] a,
  output y
  assign oops
);
endmodule
"""
        with pytest.raises(ParseError) as exc:
            parse(source)
        assert "line 6" in str(exc.value)

    def test_error_after_disabled_region_keeps_lines(self):
        source = """\
`ifdef NOPE
wire skipped_a;
wire skipped_b;
`endif
module m (input a
"""
        with pytest.raises(ParseError) as exc:
            parse(source)
        assert "line 5" in str(exc.value) or "line 6" in str(exc.value)

    def test_elaboration_error_has_line(self):
        from repro.hdl.errors import ElaborationError

        source = "\n\n\nmodule m (input a, output y);\n  assign y = ghost;\nendmodule\n"
        with pytest.raises(ElaborationError) as exc:
            elaborate(parse(source), "m")
        assert "line 5" in str(exc.value)
