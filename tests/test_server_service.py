"""LiveSim server tests: session registry, socket end-to-end, the
acceptance-criteria concurrency and warm-restart scenarios."""

import threading
import time

import pytest

from repro import obs
from repro.server import protocol
from repro.server.client import LiveSimClient, ServerError
from repro.server.service import (
    DuplicateSessionError,
    LiveSimServer,
    SessionManager,
    UnknownSessionError,
    summarize,
)
from repro.server.store import ArtifactStore
from tests.conftest import COUNTER_SRC

EDITED_SRC = COUNTER_SRC.replace("assign sum = a + b;",
                                 "assign sum = a - b;")


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def server():
    srv = LiveSimServer(port=0)
    srv.start()
    yield srv
    srv.shutdown()


def _client(srv, **kwargs):
    host, port = srv.address
    return LiveSimClient(host, port, timeout=30.0, **kwargs)


def _no_livesim_threads():
    return [
        t.name for t in threading.enumerate()
        if t.is_alive() and t.name.startswith("livesim-")
    ]


class TestSessionManager:
    def test_open_returns_handles_and_tb(self):
        manager = SessionManager()
        try:
            info = manager.open("alice", COUNTER_SRC)
            assert info["session"] == "alice"
            assert info["modules"] == ["adder", "counter", "top"]
            assert info["handles"] == {
                "adder": "stage0", "counter": "stage1", "top": "stage2",
            }
            assert info["tb"] == "tb0"
            assert manager.names() == ["alice"]
        finally:
            manager.close_all()

    def test_duplicate_name_rejected(self):
        manager = SessionManager()
        try:
            manager.open("alice", COUNTER_SRC)
            with pytest.raises(DuplicateSessionError, match="alice"):
                manager.open("alice", COUNTER_SRC)
            with pytest.raises(DuplicateSessionError, match="non-empty"):
                manager.open("", COUNTER_SRC)
        finally:
            manager.close_all()

    def test_unknown_session(self):
        manager = SessionManager()
        with pytest.raises(UnknownSessionError, match="ghost"):
            manager.get("ghost")
        with pytest.raises(UnknownSessionError, match="ghost"):
            manager.close("ghost")

    def test_negative_reset_cycles_skips_testbench(self):
        manager = SessionManager()
        try:
            info = manager.open("bare", COUNTER_SRC, reset_cycles=-1)
            assert info["tb"] is None
        finally:
            manager.close_all()

    def test_close_frees_the_name(self):
        manager = SessionManager()
        try:
            manager.open("alice", COUNTER_SRC)
            assert manager.close("alice")
            assert manager.count == 0
            manager.open("alice", COUNTER_SRC)  # name reusable
        finally:
            manager.close_all()

    def test_evict_idle_respects_timeout_and_touch(self):
        clock = FakeClock()
        manager = SessionManager(idle_timeout=30.0, clock=clock)
        try:
            manager.open("old", COUNTER_SRC)
            manager.open("busy", COUNTER_SRC)
            clock.advance(31.0)
            manager.get("busy").touch()
            assert manager.evict_idle() == ["old"]
            assert manager.names() == ["busy"]
            # Nothing left past the timeout: no-op.
            assert manager.evict_idle() == []
        finally:
            manager.close_all()

    def test_evict_idle_disabled_without_timeout(self):
        clock = FakeClock()
        manager = SessionManager(clock=clock)
        try:
            manager.open("alice", COUNTER_SRC)
            clock.advance(10_000.0)
            assert manager.evict_idle() == []
        finally:
            manager.close_all()

    def test_evict_never_reaps_mid_command(self):
        clock = FakeClock()
        manager = SessionManager(idle_timeout=5.0, clock=clock)
        try:
            manager.open("alice", COUNTER_SRC)
            managed = manager.get("alice")
            clock.advance(60.0)
            holding = threading.Event()
            release = threading.Event()

            def command_in_flight():
                with managed.lock:
                    holding.set()
                    release.wait(10.0)

            worker = threading.Thread(target=command_in_flight, daemon=True)
            worker.start()
            assert holding.wait(5.0)
            # Idle by the clock, but the lock is held: not evicted.
            assert manager.evict_idle() == []
            assert manager.names() == ["alice"]
            release.set()
            worker.join(5.0)
            assert manager.evict_idle() == ["alice"]
        finally:
            manager.close_all()

    def test_describe(self):
        manager = SessionManager()
        try:
            manager.open("alice", COUNTER_SRC)
            managed = manager.get("alice")
            with managed.lock:
                managed.interp.execute("instPipe p0, stage2")
                managed.touch()
            (entry,) = manager.describe()
            assert entry["session"] == "alice"
            assert entry["pipes"] == ["p0"]
            assert entry["commands"] == 1
            assert entry["modules"] == 3
        finally:
            manager.close_all()


class TestSummarize:
    def test_pipe_summary(self):
        manager = SessionManager()
        try:
            manager.open("alice", COUNTER_SRC)
            managed = manager.get("alice")
            managed.interp.execute("instPipe p0, stage2")
            result = managed.interp.execute("run tb0, p0, 10")
            out = summarize(managed.session.pipe("p0"))
            assert out["_type"] == "Pipe"
            assert out["cycle"] == 10
            assert out["outputs"]["c0"] == 8  # 10 cycles - 2 reset
            assert result.value["c0"] == 8
        finally:
            manager.close_all()

    def test_plain_values_pass_through(self):
        assert summarize({"c0": 5}) == {"c0": 5}
        assert summarize([1, "a"]) == [1, "a"]
        assert summarize(None) is None


class TestSocketEndToEnd:
    def test_ping(self, server):
        with _client(server) as client:
            assert client.ping() == {
                "pong": True, "protocol": protocol.PROTOCOL_VERSION,
            }

    def test_full_session_flow(self, server):
        with _client(server) as client:
            info = client.open_session("alice", COUNTER_SRC)
            assert info["handles"]["top"] == "stage2"
            client.command("alice", "instPipe p0, stage2")
            result = client.command("alice", "run tb0, p0, 100")
            assert result["c0"] == 98
            peek = client.command("alice", "peek p0")
            assert peek["c0"] == 98
            cp = client.command("alice", "chkp p0")
            assert cp["_type"] == "Checkpoint"
            assert cp["cycle"] == 100

    def test_hot_reload_over_the_wire(self, server):
        with _client(server) as client:
            client.open_session("alice", COUNTER_SRC)
            client.command("alice", "instPipe p0, stage2")
            client.command("alice", "run tb0, p0, 40")
            report = client.reload("alice", EDITED_SRC)
            assert report["_type"] == "ERDReport"
            assert report["behavioral"] is True
            assert report["recompiled_keys"] == ["adder#(W=8)"]
            assert report["pipes_updated"] == ["p0"]
            # Replay re-executes history under the *new* semantics:
            # with "a - b" the counter steps -1 per cycle, so 38 live
            # cycles land at -38 mod 256.
            peek = client.command("alice", "peek p0")
            assert peek["c0"] == 256 - 38

    def test_error_kinds(self, server):
        with _client(server) as client:
            with pytest.raises(ServerError) as err:
                client.command("nope", "peek p0")
            assert err.value.kind == "unknown-session"
            client.open_session("alice", COUNTER_SRC)
            with pytest.raises(ServerError) as err:
                client.open_session("alice", COUNTER_SRC)
            assert err.value.kind == "duplicate-session"
            with pytest.raises(ServerError) as err:
                client.command("alice", "teleport p0")
            assert err.value.kind == "command"
            with pytest.raises(ServerError) as err:
                client.command("alice", "ldLib x, /no/such/lib.v")
            assert err.value.kind == "command"
            assert "/no/such/lib.v" in err.value.message
            with pytest.raises(ServerError) as err:
                client.request("frobnicate")
            assert err.value.kind == "protocol"
            # The connection survived every error.
            assert client.ping()["pong"] is True

    def test_malformed_line_gets_error_not_disconnect(self, server):
        with _client(server) as client:
            client._sock.sendall(b"this is not json\n")
            message = client._read_message()
            assert not message.ok
            assert message.error["type"] == "protocol"
            assert client.ping()["pong"] is True

    def test_sessions_and_stats(self, server):
        with _client(server) as client:
            client.open_session("alice", COUNTER_SRC)
            client.open_session("bob", COUNTER_SRC)
            listing = client.sessions()
            assert sorted(s["session"] for s in listing) == ["alice", "bob"]
            stats = client.stats()
            assert stats["sessions"] == 2
            assert stats["metrics"]["counters"]["server.requests"] >= 3
            assert "server.request_seconds" in stats["metrics"]["histograms"]
            client.close_session("bob")
            assert client.stats()["sessions"] == 1

    def test_verify_events_stream_to_the_client(self, server):
        with _client(server) as client:
            client.open_session("alice", COUNTER_SRC)
            client.command("alice", "instPipe p0, stage2")
            client.command("alice", "run tb0, p0, 60")
            status = client.command("alice", "verify p0")
            assert status["state"] in ("running", "consistent")
            final = client.wait_event(
                "verify_status",
                predicate=lambda e: e.data["state"] != "running",
                timeout=30.0,
            )
            assert final.session == "alice"
            assert final.data["pipe"] == "p0"
            assert final.data["state"] == "consistent"
            report = client.command("alice", "verifyWait p0")
            assert report["all_consistent"] is True

    def test_shutdown_command_stops_everything(self):
        srv = LiveSimServer(port=0)
        srv.start()
        with _client(srv) as client:
            client.open_session("alice", COUNTER_SRC)
            ack = client.shutdown_server()
            assert ack == {"stopping": True, "sessions": 1}
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and _no_livesim_threads():
            time.sleep(0.05)
        assert _no_livesim_threads() == []
        assert srv.manager.count == 0
        # A second shutdown is an idempotent no-op.
        srv.shutdown()

    def test_two_clients_distinct_sessions_progress_concurrently(
        self, server
    ):
        """Acceptance criterion: one client mid-``run`` must not block
        another session's hot reload — locks are per-session."""
        with _client(server) as alice, _client(server) as bob:
            alice.open_session("alice", COUNTER_SRC)
            alice.command("alice", "instPipe p0, stage2")
            bob.open_session("bob", COUNTER_SRC)
            bob.command("bob", "instPipe p0, stage2")
            bob.command("bob", "run tb0, p0, 50")

            run_result = {}

            def long_run():
                run_result["value"] = alice.command(
                    "alice", "run tb0, p0, 300000"
                )

            runner = threading.Thread(target=long_run, daemon=True)
            runner.start()
            # Wait until alice's run actually holds her session lock.
            managed_alice = server.manager.get("alice")
            deadline = time.monotonic() + 10.0
            in_flight = False
            while time.monotonic() < deadline:
                if managed_alice.lock.acquire(blocking=False):
                    managed_alice.lock.release()
                    time.sleep(0.01)
                else:
                    in_flight = True
                    break
            assert in_flight, "alice's run never started"
            # With alice mid-run, bob hot-reloads — and completes.
            report = bob.reload("bob", EDITED_SRC)
            assert report["recompiled_keys"] == ["adder#(W=8)"]
            assert runner.is_alive(), (
                "alice's run finished before bob's reload — "
                "no overlap was exercised"
            )
            # Bob's pipe replayed under "a - b": -48 mod 256.
            assert bob.command("bob", "peek p0")["c0"] == 256 - 48
            runner.join(60.0)
            assert run_result["value"]["c0"] == (300000 - 2) % 256

    def test_warm_server_restart_hits_the_store(self, tmp_path):
        """Acceptance criterion: a restarted server compiling the same
        design takes every module from the on-disk store — zero
        codegen, ``compile.store_hits > 0``."""
        store_root = str(tmp_path / "artifacts")

        srv1 = LiveSimServer(port=0, artifact_store=ArtifactStore(store_root))
        srv1.start()
        try:
            with _client(srv1) as client:
                client.open_session("cold", COUNTER_SRC)
                client.command("cold", "instPipe p0, stage2")
                assert client.command("cold", "run tb0, p0, 10")["c0"] == 8
                stats = client.stats()
                assert stats["store"]["artifacts"] == 3
        finally:
            srv1.shutdown()

        metrics = obs.get_metrics()
        compiled = metrics.counter("codegen.modules_compiled")
        hits = metrics.counter("compile.store_hits")

        srv2 = LiveSimServer(port=0, artifact_store=ArtifactStore(store_root))
        srv2.start()
        try:
            with _client(srv2) as client:
                client.open_session("warm", COUNTER_SRC)
                client.command("warm", "instPipe p0, stage2")
                # Rehydrated modules simulate identically.
                assert client.command("warm", "run tb0, p0, 10")["c0"] == 8
                stats = client.stats()
        finally:
            srv2.shutdown()

        assert metrics.counter("compile.store_hits") == hits + 3
        assert metrics.counter("codegen.modules_compiled") == compiled
        assert stats["store"]["artifacts"] == 3

    def test_store_shared_across_sessions_in_one_server(self, tmp_path):
        srv = LiveSimServer(
            port=0, artifact_store=ArtifactStore(str(tmp_path))
        )
        srv.start()
        try:
            metrics = obs.get_metrics()
            with _client(srv) as client:
                client.open_session("first", COUNTER_SRC)
                # Compilation is lazy: instPipe triggers it (and the
                # write-behind to the shared store).
                client.command("first", "instPipe p0, stage2")
                compiled = metrics.counter("codegen.modules_compiled")
                hits = metrics.counter("compile.store_hits")
                # The second session's in-process cache is empty; all
                # three modules come from the shared disk store.
                client.open_session("second", COUNTER_SRC)
                client.command("second", "instPipe p0, stage2")
                assert metrics.counter("compile.store_hits") == hits + 3
                assert (
                    metrics.counter("codegen.modules_compiled") == compiled
                )
        finally:
            srv.shutdown()


class TestIdleReaperThread:
    def test_reaper_evicts_on_the_wire(self):
        srv = LiveSimServer(port=0, idle_timeout=0.2, reaper_interval=0.05)
        srv.start()
        try:
            with _client(srv) as client:
                client.open_session("ephemeral", COUNTER_SRC)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline and srv.manager.count:
                    time.sleep(0.05)
                assert srv.manager.count == 0
                with pytest.raises(ServerError) as err:
                    client.command("ephemeral", "peek p0")
                assert err.value.kind == "unknown-session"
        finally:
            srv.shutdown()
