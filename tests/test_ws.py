"""WebSocket gateway unit + end-to-end tests (repro.server.ws):
RFC 6455 handshake math, frame codec (extended lengths, masking,
fragmentation), HTTP fallbacks, and a bridged live session."""

import json
import socket

import pytest

from repro.server.service import LiveSimServer
from repro.server.ws import (
    OP_BINARY,
    OP_CONT,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    FrameParser,
    WsGateway,
    WsProtocolError,
    accept_key,
    client_handshake,
    encode_frame,
    handshake_response,
    is_upgrade,
    iter_messages,
    parse_http_request,
)
from tests.conftest import COUNTER_SRC

UPGRADE = (
    b"GET /chat HTTP/1.1\r\n"
    b"Host: example.com\r\n"
    b"Upgrade: websocket\r\n"
    b"Connection: Upgrade\r\n"
    b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n"
    b"Sec-WebSocket-Version: 13\r\n"
)


class TestHandshake:
    def test_accept_key_rfc_vector(self):
        # the worked example from RFC 6455 section 1.3
        assert accept_key("dGhlIHNhbXBsZSBub25jZQ==") == \
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_parse_http_request(self):
        method, path, headers = parse_http_request(UPGRADE)
        assert (method, path) == ("GET", "/chat")
        assert headers["host"] == "example.com"
        assert headers["sec-websocket-version"] == "13"
        assert is_upgrade(headers) is True

    def test_plain_get_is_not_upgrade(self):
        _, _, headers = parse_http_request(
            b"GET / HTTP/1.1\r\nHost: x\r\n"
        )
        assert is_upgrade(headers) is False

    def test_handshake_response_echoes_accept(self):
        _, _, headers = parse_http_request(UPGRADE)
        response = handshake_response(headers)
        assert response.startswith(b"HTTP/1.1 101")
        assert b"s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" in response

    def test_handshake_requires_key(self):
        with pytest.raises(WsProtocolError, match="Sec-WebSocket-Key"):
            handshake_response({"upgrade": "websocket"})


class TestFrameCodec:
    def roundtrip(self, payload, **kwargs):
        parser = FrameParser(require_mask=False)
        frames = parser.feed(encode_frame(payload, **kwargs))
        assert len(frames) == 1
        return frames[0]

    def test_short_frame(self):
        assert self.roundtrip(b"hi") == (OP_TEXT, b"hi")

    def test_extended_16bit_length(self):
        payload = b"x" * 300
        assert self.roundtrip(payload) == (OP_TEXT, payload)

    def test_extended_64bit_length(self):
        payload = b"y" * 70_000
        assert self.roundtrip(payload, opcode=OP_BINARY) == \
            (OP_BINARY, payload)

    def test_masked_roundtrip(self):
        parser = FrameParser(require_mask=True)
        wire = encode_frame(b"secret", mask=b"\x01\x02\x03\x04")
        assert b"secret" not in wire  # actually transformed
        assert parser.feed(wire) == [(OP_TEXT, b"secret")]

    def test_unmasked_client_frame_rejected(self):
        parser = FrameParser(require_mask=True)
        with pytest.raises(WsProtocolError, match="masked"):
            parser.feed(encode_frame(b"hi"))

    def test_mask_must_be_four_bytes(self):
        with pytest.raises(WsProtocolError, match="4 bytes"):
            encode_frame(b"hi", mask=b"\x01")

    def test_rsv_bits_rejected(self):
        parser = FrameParser(require_mask=False)
        wire = bytearray(encode_frame(b"hi"))
        wire[0] |= 0x40
        with pytest.raises(WsProtocolError, match="RSV"):
            parser.feed(bytes(wire))

    def test_byte_at_a_time_feed(self):
        parser = FrameParser(require_mask=False)
        wire = encode_frame(b"piecewise", opcode=OP_TEXT)
        collected = []
        for i in range(len(wire)):
            collected += parser.feed(wire[i:i + 1])
        assert collected == [(OP_TEXT, b"piecewise")]

    def test_fragmented_message_reassembled(self):
        parser = FrameParser(require_mask=False)
        wire = (
            encode_frame(b"hel", opcode=OP_TEXT, fin=False)
            + encode_frame(b"lo ", opcode=OP_CONT, fin=False)
            + encode_frame(b"world", opcode=OP_CONT, fin=True)
        )
        assert parser.feed(wire) == [(OP_TEXT, b"hello world")]

    def test_control_frame_interleaves_fragments(self):
        parser = FrameParser(require_mask=False)
        wire = (
            encode_frame(b"half", opcode=OP_TEXT, fin=False)
            + encode_frame(b"beat", opcode=OP_PING)
            + encode_frame(b"-done", opcode=OP_CONT, fin=True)
        )
        assert parser.feed(wire) == [
            (OP_PING, b"beat"), (OP_TEXT, b"half-done"),
        ]

    def test_stray_continuation_rejected(self):
        parser = FrameParser(require_mask=False)
        with pytest.raises(WsProtocolError, match="continuation"):
            parser.feed(encode_frame(b"x", opcode=OP_CONT))


class TestGatewayEndToEnd:
    @pytest.fixture
    def stack(self):
        server = LiveSimServer(port=0)
        host, port = server.start()
        gateway = WsGateway(upstream_host=host, upstream_port=port,
                            port=0)
        address = gateway.start()
        yield address
        gateway.shutdown()
        server.shutdown()

    def _http(self, address, request):
        sock = socket.create_connection(address, timeout=10)
        sock.sendall(request)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
        sock.close()
        return data

    def test_serves_static_waveform_page(self, stack):
        page = self._http(
            stack, b"GET / HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        assert page.startswith(b"HTTP/1.1 200 OK")
        assert b"LiveSim live waveforms" in page

    def test_healthz_and_404(self, stack):
        health = self._http(
            stack, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        assert b"200 OK" in health and b"ok" in health
        missing = self._http(
            stack, b"GET /nothing HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        assert missing.startswith(b"HTTP/1.1 404")

    def test_bridges_protocol_and_ping_frames(self, stack):
        sock = socket.create_connection(stack, timeout=30)
        client_handshake(sock)
        parser = FrameParser(require_mask=False)
        messages = iter_messages(sock, parser)

        def request(obj, rid=[0]):
            rid[0] += 1
            obj["id"] = rid[0]
            sock.sendall(encode_frame(
                json.dumps(obj).encode(), OP_TEXT, mask=b"\xaa\xbb\xcc\xdd"
            ))
            for opcode, payload in messages:
                if opcode != OP_TEXT:
                    continue
                msg = json.loads(payload)
                if msg.get("id") == rid[0]:
                    assert msg["ok"], msg
                    return msg["value"]

        assert request({"cmd": "ping"})["pong"] is True

        # a ws-level ping is answered by the gateway itself
        sock.sendall(encode_frame(b"probe", OP_PING, mask=b"\x01\x02\x03\x04"))
        opcode, payload = next(messages)
        assert (opcode, payload) == (OP_PONG, b"probe")

        request({"cmd": "open", "session": "ws", "source": COUNTER_SRC})
        request({"cmd": "cmd", "session": "ws",
                 "line": "instPipe p0, stage2"})
        request({"cmd": "watch", "session": "ws",
                 "pipe": "p0", "signal": "c0"})
        request({"cmd": "cmd", "session": "ws", "line": "run tb0, p0, 10"})
        window = request({"cmd": "trace", "session": "ws", "pipe": "p0",
                          "signal": "c0", "start": 0, "end": 10})
        assert len(window["samples"]) == 10
        sock.close()
