"""Code generator edge cases: extreme widths, degenerate modules,
error diagnostics, and structural oddities."""

import pytest

from repro import compile_design
from repro.hdl.errors import CodegenError, WidthError
from repro.sim import Pipe


def build(source, top="m"):
    netlist, library = compile_design(source, top)
    return Pipe(netlist.top, library)


class TestExtremeWidths:
    def test_one_bit_everything(self):
        pipe = build("""
module m (input a, input b, output y);
  assign y = (a & b) | (!a & !b);
endmodule
""")
        for a, b, expect in ((0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1)):
            pipe.set_inputs(a=a, b=b)
            assert pipe.eval()["y"] == expect

    def test_128_bit_arithmetic(self):
        pipe = build("""
module m (input [127:0] a, input [127:0] b, output [127:0] y);
  assign y = a + b;
endmodule
""")
        big = (1 << 128) - 1
        pipe.set_inputs(a=big, b=2)
        assert pipe.eval()["y"] == 1

    def test_512_bit_register(self):
        pipe = build("""
module m (input clk, input [511:0] d, output [511:0] q);
  reg [511:0] q;
  always @(posedge clk) q <= d;
endmodule
""")
        value = int.from_bytes(bytes(range(64)), "little")
        pipe.set_inputs(d=value)
        pipe.step(1)
        assert pipe.outputs()["q"] == value

    def test_wide_concat_of_many_parts(self):
        parts = ", ".join(f"a[{i}]" for i in reversed(range(64)))
        pipe = build(f"""
module m (input [63:0] a, output [63:0] y);
  assign y = {{{parts}}};
endmodule
""")
        pipe.set_inputs(a=0xDEADBEEF12345678)
        assert pipe.eval()["y"] == 0xDEADBEEF12345678

    def test_256_term_reduction_chain(self):
        # Regression: flat emission of long associative chains (CPython
        # rejects deeply nested parentheses).
        wide = " & ".join(f"b{i}" for i in range(200))
        decls = "\n".join(f"  wire b{i};\n  assign b{i} = a[{i % 64}];"
                          for i in range(200))
        pipe = build(f"""
module m (input [63:0] a, output y);
{decls}
  assign y = {wide};
endmodule
""")
        pipe.set_inputs(a=(1 << 64) - 1)
        assert pipe.eval()["y"] == 1
        pipe.set_inputs(a=(1 << 64) - 2)  # bit 0 clear
        assert pipe.eval()["y"] == 0


class TestMixedWidthChains:
    # Chain flattening must stop at narrower sub-nodes: the inner
    # node's mask drops carry bits the wider sum must not see.

    def test_narrow_inner_add_masks_before_widening(self):
        pipe = build("""
module m (input [7:0] a, input [15:0] c, output [15:0] y);
  assign y = c + (a + a);
endmodule
""")
        # (255 + 255) & 0xFF = 254; (65535 + 254) & 0xFFFF = 253.
        # Flattening to (c + a + a) & 0xFFFF would give 509.
        pipe.set_inputs(a=255, c=65535)
        assert pipe.eval()["y"] == 253

    def test_narrow_inner_mul_masks_before_widening(self):
        pipe = build("""
module m (input [3:0] a, input [15:0] c, output [15:0] y);
  assign y = c * (a * a);
endmodule
""")
        # (15 * 15) & 0xF = 1; 7 * 1 = 7.
        pipe.set_inputs(a=15, c=7)
        assert pipe.eval()["y"] == 7

    def test_uniform_width_chain_still_flattens_correctly(self):
        pipe = build("""
module m (input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] y);
  assign y = a + b + c;
endmodule
""")
        pipe.set_inputs(a=200, b=100, c=50)
        assert pipe.eval()["y"] == (200 + 100 + 50) & 0xFF

    def test_wide_first_operand_flattens(self):
        # ((c + a) + b): every internal node is already 16 bits wide,
        # so the chain may flatten — masks distribute at equal width.
        pipe = build("""
module m (input [7:0] a, input [7:0] b, input [15:0] c, output [15:0] y);
  assign y = (c + a) + b;
endmodule
""")
        pipe.set_inputs(a=255, b=255, c=65535)
        assert pipe.eval()["y"] == (65535 + 255 + 255) & 0xFFFF


class TestDegenerateModules:
    def test_module_with_no_logic(self):
        pipe = build("module m (input clk, input a, output y); assign y = a; endmodule")
        pipe.set_inputs(a=1)
        assert pipe.eval()["y"] == 1

    def test_seq_only_module(self):
        pipe = build("""
module m (input clk, output [3:0] q);
  reg [3:0] q;
  always @(posedge clk) q <= q + 1;
endmodule
""")
        pipe.step(5)
        assert pipe.outputs()["q"] == 5

    def test_constant_only_outputs(self):
        pipe = build("""
module m (input clk, output [7:0] k);
  assign k = 8'hA5;
endmodule
""")
        assert pipe.eval()["k"] == 0xA5

    def test_deep_hierarchy(self):
        levels = 8
        modules = []
        for i in range(levels):
            inner = (
                f"  lvl{i + 1} u (.clk(clk), .x(t), .y(y));"
                if i + 1 < levels
                else "  assign y = t;"
            )
            modules.append(f"""
module lvl{i} (input clk, input [7:0] x, output [7:0] y);
  wire [7:0] t;
  assign t = x + 8'd1;
{inner}
endmodule
""")
        source = "\n".join(modules)
        netlist, library = compile_design(source, "lvl0")
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(x=0)
        assert pipe.eval()["y"] == levels

    def test_diamond_instantiation(self):
        """Two paths to the same shared leaf specialization."""
        pipe = build("""
module leaf (input clk, input [7:0] v, output [7:0] w);
  assign w = v + 8'd1;
endmodule
module left (input clk, input [7:0] v, output [7:0] w);
  leaf u (.clk(clk), .v(v), .w(w));
endmodule
module right (input clk, input [7:0] v, output [7:0] w);
  leaf u (.clk(clk), .v(v), .w(w));
endmodule
module m (input clk, input [7:0] v, output [7:0] y);
  wire [7:0] a;
  wire [7:0] b;
  left ul (.clk(clk), .v(v), .w(a));
  right ur (.clk(clk), .v(v), .w(b));
  assign y = a + b;
endmodule
""")
        pipe.set_inputs(v=10)
        assert pipe.eval()["y"] == 22
        # Both arms share one compiled leaf.
        assert pipe.find("ul.u").code is pipe.find("ur.u").code


class TestDiagnostics:
    def test_zero_replication_rejected(self):
        with pytest.raises(WidthError, match="replication"):
            compile_design("""
module m (input a, output y);
  assign y = {0{a}};
endmodule
""", "m")

    def test_reversed_slice_rejected(self):
        with pytest.raises(WidthError, match="reversed"):
            compile_design("""
module m (input [7:0] a, output [3:0] y);
  assign y = a[2:5];
endmodule
""", "m")

    def test_bare_memory_read_rejected(self):
        with pytest.raises(CodegenError, match="without an index"):
            compile_design("""
module m (input clk, input [3:0] a, output [7:0] y);
  reg [7:0] mem [0:15];
  assign y = mem + 1;
  always @(posedge clk) mem[a] <= 0;
endmodule
""", "m")

    def test_comb_memory_write_rejected(self):
        with pytest.raises(CodegenError, match="posedge"):
            compile_design("""
module m (input clk, input [3:0] a, input [7:0] d, output [7:0] y);
  reg [7:0] mem [0:15];
  reg [7:0] t;
  assign y = mem[a];
  always @(*) begin
    mem[a] = d;
    t = 0;
  end
  always @(posedge clk) mem[a] <= t;
endmodule
""", "m")

    def test_nonconstant_part_select_bound_rejected(self):
        with pytest.raises(CodegenError, match="constant"):
            compile_design("""
module m (input clk, input [2:0] i, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) q[i:0] <= 0;
endmodule
""", "m")


class TestNonPowerOfTwoMemory:
    def test_modulo_addressing(self):
        pipe = build("""
module m (input clk, input we, input [3:0] a, input [7:0] d,
          output [7:0] y);
  reg [7:0] mem [0:9];
  assign y = mem[a];
  always @(posedge clk) begin
    if (we) mem[a] <= d;
  end
endmodule
""")
        pipe.set_inputs(we=1, a=3, d=42)
        pipe.step(1)
        pipe.set_inputs(we=0, a=13)  # 13 % 10 == 3
        assert pipe.eval()["y"] == 42
