"""On-disk compile-artifact store tests: round trip, corruption
tolerance, and the LiveCompiler read-through/write-behind path."""

import os
import pickle

from repro import obs
from repro.live.compiler_live import LiveCompiler
from repro.server.store import ArtifactStore, key_digest
from tests.conftest import COUNTER_SRC


def _compile_one(store=None):
    compiler = LiveCompiler(COUNTER_SRC, store=store)
    result = compiler.compile_top("top")
    return compiler, result


def _one_cache_key(compiler, spec="adder#(W=8)"):
    for cache_key in compiler._cache:
        if cache_key[0] == spec:
            return cache_key
    raise AssertionError(f"no cache key for {spec}")


class TestKeyDigest:
    def test_stable_and_distinct(self):
        key_a = ("top", "fp1", ("c1", "c2"), "branch")
        assert key_digest(key_a) == key_digest(("top", "fp1",
                                                ("c1", "c2"), "branch"))
        assert key_digest(key_a) != key_digest(("top", "fp2",
                                                ("c1", "c2"), "branch"))
        assert key_digest(key_a) != key_digest(("top", "fp1",
                                                ("c1",), "branch"))
        assert key_digest(key_a) != key_digest(("top", "fp1",
                                                ("c1", "c2"), "table"))

    def test_list_and_tuple_child_fps_agree(self):
        assert key_digest(("m", "fp", ("a",), "branch")) == key_digest(
            ["m", "fp", ["a"], "branch"]
        )


class TestRoundTrip:
    def test_save_load_rebuilds_working_module(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        compiler, result = _compile_one()
        cache_key = _one_cache_key(compiler)
        module = compiler._cache[cache_key]
        assert store.save(cache_key, module)
        loaded = store.load(cache_key)
        assert loaded is not None
        assert loaded.key == module.key
        assert loaded.source == module.source
        assert loaded.source_hash == module.source_hash
        assert loaded.reg_widths == module.reg_widths
        # The rehydrated functions actually compute: adder sums inputs.
        state = loaded.make_state()
        out = loaded.eval_out_fn(state, (), 5, 7)
        assert out == (12,)

    def test_missing_is_a_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        metrics = obs.get_metrics()
        before = metrics.counter("compile.store_misses")
        assert store.load(("nope", "fp", (), "branch")) is None
        assert metrics.counter("compile.store_misses") == before + 1

    def test_len_and_clear(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        compiler, _ = _compile_one()
        for cache_key, module in compiler._cache.items():
            store.save(cache_key, module)
        assert len(store) == 3
        assert store.total_bytes() > 0
        assert store.clear() == 3
        assert len(store) == 0


class TestCorruptionTolerance:
    def test_truncated_file_is_a_counted_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        compiler, _ = _compile_one()
        cache_key = _one_cache_key(compiler)
        store.save(cache_key, compiler._cache[cache_key])
        path = store.path_for(cache_key)
        with open(path, "wb") as fh:
            fh.write(b"\x80\x04garbage")
        metrics = obs.get_metrics()
        errors = metrics.counter("compile.store_errors")
        assert store.load(cache_key) is None
        assert metrics.counter("compile.store_errors") == errors + 1

    def test_format_skew_is_a_silent_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        compiler, _ = _compile_one()
        cache_key = _one_cache_key(compiler)
        store.save(cache_key, compiler._cache[cache_key])
        path = store.path_for(cache_key)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["format"] = "repro.store/v0"
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        metrics = obs.get_metrics()
        errors = metrics.counter("compile.store_errors")
        assert store.load(cache_key) is None
        # Version skew is expected across upgrades — not an error.
        assert metrics.counter("compile.store_errors") == errors

    def test_key_mismatch_never_served(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        compiler, _ = _compile_one()
        key_a = _one_cache_key(compiler, "adder#(W=8)")
        key_b = _one_cache_key(compiler, "top")
        store.save(key_a, compiler._cache[key_a])
        # Copy a's artifact into b's address (a forged/colliding file).
        os.makedirs(os.path.dirname(store.path_for(key_b)), exist_ok=True)
        with open(store.path_for(key_a), "rb") as src:
            data = src.read()
        with open(store.path_for(key_b), "wb") as dst:
            dst.write(data)
        assert store.load(key_b) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        compiler, _ = _compile_one()
        for cache_key, module in compiler._cache.items():
            store.save(cache_key, module)
        leftovers = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
            if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        store = ArtifactStore(str(blocked))
        compiler, _ = _compile_one()
        cache_key = _one_cache_key(compiler)
        metrics = obs.get_metrics()
        errors = metrics.counter("compile.store_errors")
        assert not store.save(cache_key, compiler._cache[cache_key])
        assert metrics.counter("compile.store_errors") == errors + 1


class TestCompilerReadThrough:
    def test_cold_compile_populates_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        metrics = obs.get_metrics()
        writes = metrics.counter("compile.store_writes")
        _compile_one(store)
        assert len(store) == 3
        assert metrics.counter("compile.store_writes") == writes + 3

    def test_warm_restart_skips_codegen(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        _compile_one(store)
        metrics = obs.get_metrics()
        compiled = metrics.counter("codegen.modules_compiled")
        hits = metrics.counter("compile.store_hits")
        # A fresh compiler (fresh process, conceptually) on the same
        # design: everything loads from disk, zero codegen.
        compiler, result = _compile_one(ArtifactStore(str(tmp_path)))
        assert result.report.recompiled_keys == []
        assert len(result.report.reused_keys) == 3
        assert metrics.counter("codegen.modules_compiled") == compiled
        assert metrics.counter("compile.store_hits") == hits + 3
        # And the rehydrated library simulates correctly.
        from repro.sim import Pipe

        pipe = Pipe(result.netlist.top, result.library)
        pipe.set_inputs(rst=1)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        pipe.step(10)
        assert pipe.outputs() == {"c0": 10, "c1": 30}

    def test_edit_hits_store_for_unchanged_modules(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        compiler, _ = _compile_one(store)
        # Second compiler, edited design: only the edited module is
        # recompiled; unchanged modules come from disk.
        compiler2 = LiveCompiler(COUNTER_SRC,
                                 store=ArtifactStore(str(tmp_path)))
        compiler2.update_source(
            COUNTER_SRC.replace("assign sum = a + b;",
                                "assign sum = a - b;")
        )
        metrics = obs.get_metrics()
        compiled = metrics.counter("codegen.modules_compiled")
        result = compiler2.compile_top("top")
        assert result.report.recompiled_keys == ["adder#(W=8)"]
        assert sorted(result.report.reused_keys) == ["counter#(W=8)", "top"]
        assert metrics.counter("codegen.modules_compiled") == compiled + 1
        # The edited module's artifact is now persisted too.
        assert len(ArtifactStore(str(tmp_path))) == 4

    def test_memory_cache_wins_over_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        compiler, _ = _compile_one(store)
        metrics = obs.get_metrics()
        hits = metrics.counter("compile.store_hits")
        mem_hits = metrics.counter("compile.cache_hits")
        result = compiler.compile_top("top")
        assert len(result.report.reused_keys) == 3
        assert metrics.counter("compile.store_hits") == hits
        assert metrics.counter("compile.cache_hits") == mem_hits + 3

    def test_evict_stale_leaves_disk_artifacts(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        compiler, _ = _compile_one(store)
        for variant in ["a - b", "a ^ b"]:
            compiler.update_source(COUNTER_SRC.replace("a + b", variant))
            compiler.compile_top("top")
        on_disk = len(store)
        assert compiler.evict_stale(keep_generations=1) > 0
        # The in-memory trim is a RAM bound; durable artifacts stay.
        assert len(store) == on_disk
