"""Compiled-module structure tests: sharing, memoization, state layout."""

import pytest

from repro.codegen.pygen import CACHE_SLOTS
from repro.sim import Pipe, StageInst


class TestCodeSharing:
    def test_instances_share_code_object(self, counter_design):
        netlist, library = counter_design
        pipe = Pipe(netlist.top, library)
        u0 = pipe.find("u0")
        u1 = pipe.find("u1")
        assert u0.code is u1.code
        assert u0.code.eval_out_fn is u1.code.eval_out_fn

    def test_instances_have_private_state(self, counter_design):
        netlist, library = counter_design
        pipe = Pipe(netlist.top, library)
        assert pipe.find("u0").state is not pipe.find("u1").state

    def test_library_has_one_entry_per_spec(self, counter_design):
        netlist, library = counter_design
        assert set(library) == set(netlist.modules)

    def test_source_compiles_once_per_spec(self, pgas1_netlist_library):
        _, netlist, library = pgas1_netlist_library
        # 10 modules for the whole PGAS node+mesh, regardless of size.
        assert len(library) == 10


class TestStateLayout:
    def test_make_state_shape(self, counter_design):
        _, library = counter_design
        code = library["counter#(W=8)"]
        state = code.make_state()
        assert len(state) == 2 * code.num_regs + CACHE_SLOTS
        assert state[code.cache_key_slot] is None

    def test_memory_slots(self, pgas1_netlist_library):
        _, _, library = pgas1_netlist_library
        code = library["rv_memory#(WORDS=4096)"]
        state = code.make_state()
        spec = code.mem_specs["mem"]
        assert len(state[spec.slot]) == 4096
        assert state[spec.pending_slot] == []

    def test_reg_slots_complete(self, pgas1_netlist_library):
        _, _, library = pgas1_netlist_library
        code = library["rv_if"]
        assert code.reg_slots == {"pc_q": 0}
        assert code.reg_widths == {"pc_q": 64}


class TestMemoization:
    def test_repeated_eval_hits_cache(self, counter_design):
        netlist, library = counter_design
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=0)
        first = pipe.eval()
        key_slot = pipe.top.code.cache_key_slot
        cached_key = pipe.top.state[key_slot]
        assert cached_key is not None
        assert pipe.eval() == first
        assert pipe.top.state[key_slot] is cached_key  # untouched

    def test_tick_invalidates_memo(self, counter_design):
        netlist, library = counter_design
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=0)
        pipe.eval()
        pipe.tick()
        assert pipe.top.state[pipe.top.code.cache_key_slot] is None

    def test_input_change_misses_cache(self, counter_design):
        netlist, library = counter_design
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=1)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        pipe.step(2)
        assert pipe.outputs()["c0"] == 2

    def test_poke_invalidates_memo(self, counter_design):
        netlist, library = counter_design
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=0)
        pipe.eval()
        inst = pipe.find("u0")
        inst.poke_reg("count_q", 77)
        assert inst.state[inst.code.cache_key_slot] is None
        pipe.invalidate()
        assert pipe.eval()["c0"] == 77


class TestCompiledMetadata:
    def test_source_is_kept(self, counter_design):
        _, library = counter_design
        code = library["adder#(W=8)"]
        assert "def eval_out" in code.source
        assert "def eval_seq" in code.source
        assert "def tick" in code.source

    def test_interface_fp_matches_ir(self, counter_design):
        netlist, library = counter_design
        for key, code in library.items():
            assert code.interface_fp == netlist.modules[key].interface_fingerprint()

    def test_comb_input_ports_subset_of_inputs(self, pgas1_netlist_library):
        _, _, library = pgas1_netlist_library
        for code in library.values():
            assert set(code.comb_input_ports) <= set(code.inputs)

    def test_seq_only_inputs_excluded_from_eval_out(self, pgas1_netlist_library):
        _, _, library = pgas1_netlist_library
        code = library["rv_if"]
        # pc is registered; nothing affects the outputs combinationally.
        assert code.comb_input_ports == ()

    def test_compile_seconds_recorded(self, counter_design):
        _, library = counter_design
        assert all(c.compile_seconds > 0 for c in library.values())


class TestBuildErrors:
    def test_missing_library_entry(self, counter_design):
        netlist, library = counter_design
        from repro.hdl.errors import SimulationError

        partial = {netlist.top: library[netlist.top]}
        with pytest.raises(SimulationError, match="no compiled module"):
            StageInst.build(netlist.top, partial)
