"""Waveform recorder and VCD export tests."""

import pytest

from repro import compile_design
from repro.hdl.errors import SimulationError
from repro.sim import Pipe, WaveformRecorder
from tests.conftest import COUNTER_SRC


def recorder_on_counter():
    netlist, library = compile_design(COUNTER_SRC, "top")
    pipe = Pipe(netlist.top, library)
    pipe.set_inputs(rst=0)
    return pipe, WaveformRecorder(pipe)


class TestProbes:
    def test_register_probe(self):
        pipe, rec = recorder_on_counter()
        rec.probe_register("u0", "count_q")
        rec.record(5)
        trace = rec.trace("u0.count_q")
        assert trace.values == [0, 1, 2, 3, 4]
        assert trace.cycles == [0, 1, 2, 3, 4]

    def test_output_probe(self):
        pipe, rec = recorder_on_counter()
        rec.probe_output("c1")
        rec.record(3)
        assert rec.trace("c1").values == [0, 3, 6]

    def test_memory_word_probe(self, pgas1_netlist_library):
        from repro.riscv.programs import busy_counter, load_same_program

        _, netlist, library = pgas1_netlist_library
        pipe = Pipe(netlist.top, library)
        load_same_program(pipe, 1, busy_counter(100))
        pipe.set_inputs(rst=1)
        pipe.step(2)
        pipe.set_inputs(rst=0)
        rec = WaveformRecorder(pipe)
        rec.probe_memory_word("n_0.u_mem", "mem", 0x200 // 8, name="count")
        rec.record(40)
        values = rec.trace("count").values
        assert values[0] == 0
        assert values[-1] > values[0]
        assert values == sorted(values)  # monotone counter

    def test_custom_expr_probe(self):
        pipe, rec = recorder_on_counter()
        rec.probe_expr("sum", 16, lambda p: p.outputs()["c0"] + p.outputs()["c1"])
        rec.record(4)
        assert rec.trace("sum").values == [0, 4, 8, 12]

    def test_unknown_register_rejected(self):
        pipe, rec = recorder_on_counter()
        with pytest.raises(SimulationError):
            rec.probe_register("u0", "nope")

    def test_duplicate_probe_rejected(self):
        pipe, rec = recorder_on_counter()
        rec.probe_output("c0")
        with pytest.raises(SimulationError):
            rec.probe_output("c0")


class TestTraceQueries:
    def test_at_returns_last_value_before(self):
        pipe, rec = recorder_on_counter()
        rec.probe_register("u0", "count_q")
        rec.record(6)
        trace = rec.trace("u0.count_q")
        assert trace.at(3) == 3
        assert trace.at(100) == 5
        assert trace.at(-1) is None

    def test_changes_compresses_repeats(self):
        pipe, rec = recorder_on_counter()
        pipe.set_inputs(rst=1)
        rec.probe_register("u0", "count_q")
        rec.record(4)  # held in reset: constant 0
        pipe.set_inputs(rst=0)
        rec.record(3)
        changes = rec.trace("u0.count_q").changes()
        # Samples: 0,0,0,0 (reset), 0 (release latches next edge), 1, 2.
        assert changes == [(0, 0), (5, 1), (6, 2)]

    def test_clear(self):
        pipe, rec = recorder_on_counter()
        rec.probe_output("c0")
        rec.record(3)
        rec.clear()
        assert rec.trace("c0").values == []


class TestReplayIntegration:
    def test_rewind_and_record_window(self):
        """The paper's 'printf and replay' flow: snapshot, run past the
        point of interest, rewind, attach probes, replay the window."""
        pipe, rec = recorder_on_counter()
        pipe.step(20)
        snap = pipe.snapshot()
        pipe.step(30)  # ran past the interesting window
        pipe.restore(snap)
        rec.probe_register("u0", "count_q")
        rec.record(5)
        assert rec.trace("u0.count_q").values == [20, 21, 22, 23, 24]


class TestVCD:
    def test_vcd_structure(self, tmp_path):
        pipe, rec = recorder_on_counter()
        rec.probe_register("u0", "count_q")
        rec.probe_output("c1")
        rec.record(4)
        path = tmp_path / "wave.vcd"
        rec.to_vcd(str(path))
        text = path.read_text()
        assert "$timescale 1 ns $end" in text
        assert "$var wire 8" in text
        assert "u0.count_q" in text
        assert "$enddefinitions $end" in text
        assert "#0" in text and "#3" in text
        assert "b11 " in text  # count_q = 3 at cycle 3

    def test_vcd_single_bit_format(self, tmp_path):
        source = """
module m (input clk, output t);
  reg t_q;
  assign t = t_q;
  always @(posedge clk) t_q <= !t_q;
endmodule
"""
        netlist, library = compile_design(source, "m")
        pipe = Pipe(netlist.top, library)
        rec = WaveformRecorder(pipe)
        rec.probe_register("", "t_q")
        rec.record(4)
        path = tmp_path / "bit.vcd"
        rec.to_vcd(str(path))
        lines = path.read_text().splitlines()
        # Single-bit changes use the scalar form: <0|1><id>.
        assert any(line in ("0!", "1!") for line in lines)

    def test_vcd_ids_unique_beyond_94_probes(self, tmp_path):
        pipe, rec = recorder_on_counter()
        for i in range(120):
            rec.probe_expr(f"p{i}", 8, lambda p, i=i: i)
        rec.record(1)
        ids = {WaveformRecorder._vcd_id(i) for i in range(120)}
        assert len(ids) == 120


class TestRecordWithTestbench:
    def test_testbench_driven_recording(self):
        from repro.sim.testbench import reset_sequence

        pipe, rec = recorder_on_counter()
        rec.probe_output("c0")
        tb = reset_sequence("rst", cycles=2)
        ran = rec.record_with_testbench(tb, 6)
        assert ran == 6
        # Unlike record(), testbench-driven sampling happens after the
        # tick: values are the post-edge state of each cycle.
        assert rec.trace("c0").values == [0, 0, 1, 2, 3, 4]
