"""Sequential and procedural semantics through compiled designs:
nonblocking updates, resets, memories, comb always blocks, partial
assignments, two-phase evaluation ordering."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import compile_design
from repro.sim import Pipe


def build(source: str, top: str = "m") -> Pipe:
    netlist, library = compile_design(source, top)
    return Pipe(netlist.top, library)


_COUNTER_CACHE = {}


def _counter_design():
    """Module-level cached counter design (usable inside @given)."""
    if "design" not in _COUNTER_CACHE:
        from tests.conftest import COUNTER_SRC

        _COUNTER_CACHE["design"] = compile_design(COUNTER_SRC, "top")
    return _COUNTER_CACHE["design"]


class TestNonBlocking:
    def test_swap_idiom(self):
        """The classic nonblocking test: a,b swap every cycle."""
        pipe = build("""
module m (input clk, input rst, output [7:0] ya, output [7:0] yb);
  reg [7:0] a;
  reg [7:0] b;
  assign ya = a;
  assign yb = b;
  always @(posedge clk) begin
    if (rst) begin
      a <= 8'd1;
      b <= 8'd2;
    end else begin
      a <= b;
      b <= a;
    end
  end
endmodule
""")
        pipe.set_inputs(rst=1)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        assert pipe.outputs() == {"ya": 1, "yb": 2}
        pipe.step(1)
        assert pipe.outputs() == {"ya": 2, "yb": 1}
        pipe.step(1)
        assert pipe.outputs() == {"ya": 1, "yb": 2}

    def test_last_nonblocking_write_wins(self):
        pipe = build("""
module m (input clk, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) begin
    q <= 8'd1;
    q <= 8'd2;
  end
endmodule
""")
        pipe.step(1)
        assert pipe.outputs()["y"] == 2

    def test_unassigned_register_holds_value(self):
        pipe = build("""
module m (input clk, input en, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) begin
    if (en)
      q <= q + 1;
  end
endmodule
""")
        pipe.set_inputs(en=1)
        pipe.step(3)
        assert pipe.outputs()["y"] == 3
        pipe.set_inputs(en=0)
        pipe.step(5)
        assert pipe.outputs()["y"] == 3

    def test_registered_output_lags_comb(self):
        pipe = build("""
module m (input clk, input [7:0] d, output [7:0] q);
  reg [7:0] q;
  always @(posedge clk) q <= d;
endmodule
""")
        pipe.set_inputs(d=55)
        assert pipe.eval()["q"] == 0  # not yet latched
        pipe.tick()
        assert pipe.outputs()["q"] == 55


class TestPartialAssignments:
    def test_bit_assign_accumulates(self):
        pipe = build("""
module m (input clk, input [2:0] i, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) q[i] <= 1'b1;
endmodule
""")
        for i in (0, 3, 7):
            pipe.set_inputs(i=i)
            pipe.step(1)
        assert pipe.outputs()["y"] == 0b10001001

    def test_part_select_assign(self):
        pipe = build("""
module m (input clk, input [3:0] lo, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) begin
    q[7:4] <= 4'hA;
    q[3:0] <= lo;
  end
endmodule
""")
        pipe.set_inputs(lo=0x5)
        pipe.step(1)
        assert pipe.outputs()["y"] == 0xA5

    def test_bit_clear_preserves_others(self):
        pipe = build("""
module m (input clk, input set_all, input [2:0] i, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) begin
    if (set_all)
      q <= 8'hFF;
    else
      q[i] <= 1'b0;
  end
endmodule
""")
        pipe.set_inputs(set_all=1)
        pipe.step(1)
        pipe.set_inputs(set_all=0, i=4)
        pipe.step(1)
        assert pipe.outputs()["y"] == 0xEF


class TestCombAlwaysBlocks:
    def test_case_decode(self):
        pipe = build("""
module m (input [1:0] sel, output [7:0] y);
  reg [7:0] out;
  assign y = out;
  always @(*) begin
    case (sel)
      2'd0: out = 8'd10;
      2'd1: out = 8'd20;
      2'd2: out = 8'd30;
      default: out = 8'd99;
    endcase
  end
endmodule
""")
        for sel, expect in ((0, 10), (1, 20), (2, 30), (3, 99)):
            pipe.set_inputs(sel=sel)
            assert pipe.eval()["y"] == expect

    def test_unassigned_path_yields_zero(self):
        # No latches: comb targets default to 0 each evaluation.
        pipe = build("""
module m (input en, input [7:0] d, output [7:0] y);
  reg [7:0] out;
  assign y = out;
  always @(*) begin
    if (en)
      out = d;
  end
endmodule
""")
        pipe.set_inputs(en=1, d=42)
        assert pipe.eval()["y"] == 42
        pipe.set_inputs(en=0)
        assert pipe.eval()["y"] == 0

    def test_default_then_override_idiom(self):
        pipe = build("""
module m (input [1:0] sel, output [7:0] y);
  reg [7:0] out;
  assign y = out;
  always @(*) begin
    out = 8'd7;
    if (sel == 2'd2)
      out = 8'd77;
  end
endmodule
""")
        pipe.set_inputs(sel=0)
        assert pipe.eval()["y"] == 7
        pipe.set_inputs(sel=2)
        assert pipe.eval()["y"] == 77

    def test_blocking_sequencing_within_block(self):
        pipe = build("""
module m (input [7:0] a, output [7:0] y);
  reg [7:0] t;
  reg [7:0] out;
  assign y = out;
  always @(*) begin
    t = a + 8'd1;
    t = t * 8'd2;
    out = t;
  end
endmodule
""")
        pipe.set_inputs(a=5)
        assert pipe.eval()["y"] == 12


class TestMemories:
    MEM_SRC = """
module m (input clk, input we, input [3:0] waddr, input [7:0] wdata,
          input [3:0] raddr, output [7:0] rdata);
  reg [7:0] mem [0:15];
  assign rdata = mem[raddr];
  always @(posedge clk) begin
    if (we)
      mem[waddr] <= wdata;
  end
endmodule
"""

    def test_write_then_read(self):
        pipe = build(self.MEM_SRC)
        pipe.set_inputs(we=1, waddr=3, wdata=99, raddr=3)
        pipe.step(1)
        pipe.set_inputs(we=0)
        assert pipe.eval()["rdata"] == 99

    def test_read_during_write_sees_old_value(self):
        pipe = build(self.MEM_SRC)
        pipe.set_inputs(we=1, waddr=5, wdata=11, raddr=5)
        pipe.step(1)
        pipe.set_inputs(wdata=22)
        # Same-cycle read returns the pre-edge contents.
        assert pipe.eval()["rdata"] == 11
        pipe.step(1)
        assert pipe.eval()["rdata"] == 22

    def test_address_wraps_at_depth(self):
        pipe = build(self.MEM_SRC)
        inst = pipe.find("")
        inst.write_memory("mem", 0, [7] + [0] * 15)
        pipe.set_inputs(raddr=0, we=0)
        assert pipe.eval()["rdata"] == 7

    @given(writes=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 255)),
        min_size=1, max_size=20,
    ))
    @settings(max_examples=25, deadline=None)
    def test_memory_matches_dict_model(self, writes):
        pipe = build(self.MEM_SRC)
        model = {}
        for addr, data in writes:
            pipe.set_inputs(we=1, waddr=addr, wdata=data, raddr=0)
            pipe.step(1)
            model[addr] = data
        pipe.set_inputs(we=0)
        for addr, expect in model.items():
            pipe.set_inputs(raddr=addr)
            assert pipe.eval()["rdata"] == expect


class TestHierarchyEvaluation:
    def test_feedback_through_registers(self):
        """A two-stage feedback loop (B's output feeds A's seq input)
        must work in one pass: the two-phase split delivers the final
        value to A's flops."""
        pipe = build("""
module stage_a (input clk, input [7:0] nxt, output [7:0] q);
  reg [7:0] q;
  always @(posedge clk) q <= nxt;
endmodule

module stage_b (input clk, input [7:0] cur, output [7:0] nxt);
  assign nxt = cur + 8'd1;
endmodule

module m (input clk, output [7:0] y);
  wire [7:0] q;
  wire [7:0] nxt;
  stage_a a (.clk(clk), .nxt(nxt), .q(q));
  stage_b b (.clk(clk), .cur(q), .nxt(nxt));
  assign y = q;
endmodule
""")
        pipe.step(5)
        assert pipe.outputs()["y"] == 5

    def test_cross_module_redirect_pattern(self):
        """The CPU-shaped pattern: a 'fetch' module whose seq logic
        consumes a comb decision produced by a module evaluated later."""
        pipe = build("""
module fetch (input clk, input rst, input redir, input [7:0] target,
              output [7:0] pc);
  reg [7:0] pc_q;
  assign pc = pc_q;
  always @(posedge clk) begin
    if (rst) pc_q <= 0;
    else if (redir) pc_q <= target;
    else pc_q <= pc_q + 8'd1;
  end
endmodule

module decide (input clk, input [7:0] pc, output redir, output [7:0] target);
  assign redir = pc == 8'd3;
  assign target = 8'd10;
endmodule

module m (input clk, input rst, output [7:0] y);
  wire [7:0] pc;
  wire redir;
  wire [7:0] target;
  fetch f (.clk(clk), .rst(rst), .redir(redir), .target(target), .pc(pc));
  decide d (.clk(clk), .pc(pc), .redir(redir), .target(target));
  assign y = pc;
endmodule
""")
        pipe.set_inputs(rst=1)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        seen = []
        for _ in range(6):
            seen.append(pipe.outputs()["y"])
            pipe.step(1)
        # 0,1,2,3 -> redirect to 10 -> 11
        assert seen == [0, 1, 2, 3, 10, 11]

    def test_counter_hierarchy(self, counter_pipe):
        counter_pipe.step(10)
        assert counter_pipe.outputs() == {"c0": 10, "c1": 30}

    @given(cycles=st.integers(min_value=0, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_counter_property(self, cycles):
        netlist, library = _counter_design()
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=1)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        pipe.step(cycles)
        assert pipe.outputs() == {
            "c0": cycles & 0xFF,
            "c1": (3 * cycles) & 0xFF,
        }


class TestOutOfRangeSelects:
    def test_out_of_range_bit_write_is_dropped(self):
        # A dynamic bit index past the declared width must not smuggle
        # bits above the register's mask (Verilog: no effect).
        pipe = build("""
module m (input clk, input [3:0] i, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) q[i] <= 1'b1;
endmodule
""")
        pipe.set_inputs(i=12)  # beyond bit 7
        pipe.step(1)
        assert pipe.outputs()["y"] == 0
        pipe.set_inputs(i=3)
        pipe.step(1)
        assert pipe.outputs()["y"] == 0b1000

    def test_out_of_range_bit_read_is_zero(self):
        pipe = build("""
module m (input [7:0] a, input [3:0] i, output y);
  assign y = a[i];
endmodule
""")
        pipe.set_inputs(a=0xFF, i=12)
        assert pipe.eval()["y"] == 0

    def test_register_invariant_after_mixed_writes(self):
        # Whatever the write pattern, the stored value stays in range.
        pipe = build("""
module m (input clk, input [3:0] i, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) q[i] <= 1'b1;
endmodule
""")
        for i in (15, 7, 9, 0, 14):
            pipe.set_inputs(i=i)
            pipe.step(1)
        value = pipe.find("").peek_reg("q")
        assert 0 <= value < 256
        assert value == 0b10000001
