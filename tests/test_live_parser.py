"""LiveParser tests: behavioural-change detection and region mapping."""

from repro.live.parser_live import LiveParser
from tests.conftest import COUNTER_SRC


def analyze(old, new):
    parser = LiveParser(old)
    return parser.analyze(new)


class TestBehavioralDetection:
    def test_identical_source_not_behavioral(self):
        result = analyze(COUNTER_SRC, COUNTER_SRC)
        assert not result.behavioral
        assert result.modules_to_recompile == set()

    def test_comment_edit_not_behavioral(self):
        new = COUNTER_SRC.replace(
            "assign sum = a + b;", "assign sum = a + b; // fixed review nit"
        )
        result = analyze(COUNTER_SRC, new)
        assert not result.behavioral

    def test_whitespace_edit_not_behavioral(self):
        new = COUNTER_SRC.replace(
            "assign sum = a + b;", "assign   sum =\n      a + b;"
        )
        result = analyze(COUNTER_SRC, new)
        assert not result.behavioral

    def test_logic_edit_is_behavioral(self):
        new = COUNTER_SRC.replace("assign sum = a + b;", "assign sum = a - b;")
        result = analyze(COUNTER_SRC, new)
        assert result.behavioral
        assert result.changed_modules == {"adder"}
        assert result.modules_to_recompile == {"adder"}

    def test_only_edited_module_flagged(self):
        new = COUNTER_SRC.replace("count_q <= next;", "count_q <= next + 1;")
        result = analyze(COUNTER_SRC, new)
        assert result.changed_modules == {"counter"}
        assert "adder" not in result.changed_modules

    def test_multiple_edits_flag_multiple_modules(self):
        new = COUNTER_SRC.replace(
            "assign sum = a + b;", "assign sum = a ^ b;"
        ).replace("count_q <= next;", "count_q <= next + 1;")
        result = analyze(COUNTER_SRC, new)
        assert result.changed_modules == {"adder", "counter"}


class TestModuleAddRemove:
    def test_added_module_detected(self):
        new = COUNTER_SRC + "\nmodule extra (input clk); endmodule\n"
        result = analyze(COUNTER_SRC, new)
        assert result.added_modules == {"extra"}
        assert result.behavioral

    def test_removed_module_detected(self):
        old = COUNTER_SRC + "\nmodule extra (input clk); endmodule\n"
        result = analyze(old, COUNTER_SRC)
        assert result.removed_modules == {"extra"}
        assert result.behavioral


class TestDirectivePoisoning:
    BASE = """\
module before_d (input clk); endmodule
`define STEP 3
module after_d (input clk, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) q <= q + `STEP;
endmodule
"""

    def test_directive_value_change_poisons_below(self):
        new = self.BASE.replace("`define STEP 3", "`define STEP 5")
        result = analyze(self.BASE, new)
        assert result.directive_changed
        assert result.poisoned_modules == {"after_d"}
        assert "before_d" not in result.modules_to_recompile

    def test_added_directive_poisons_below(self):
        new = self.BASE.replace(
            "`define STEP 3", "`define STEP 3\n`define EXTRA 1"
        )
        result = analyze(self.BASE, new)
        assert result.directive_changed
        assert "after_d" in result.poisoned_modules

    def test_removed_directive_poisons(self):
        new = self.BASE.replace("`define STEP 3\n", "\n")
        result = analyze(self.BASE, new)
        assert result.directive_changed

    def test_directive_line_reported(self):
        new = self.BASE.replace("`define STEP 3", "`define STEP 7")
        result = analyze(self.BASE, new)
        assert result.directive_line == 2


class TestCommit:
    def test_commit_updates_baseline(self):
        parser = LiveParser(COUNTER_SRC)
        new = COUNTER_SRC.replace("a + b", "a - b")
        assert parser.analyze(new).behavioral
        parser.commit(new)
        assert not parser.analyze(new).behavioral

    def test_analyze_without_commit_keeps_baseline(self):
        parser = LiveParser(COUNTER_SRC)
        new = COUNTER_SRC.replace("a + b", "a - b")
        parser.analyze(new)
        # Same edit still reports as a change against the old baseline.
        assert parser.analyze(new).behavioral

    def test_fingerprints_survive_commit_fast_path(self):
        parser = LiveParser(COUNTER_SRC)
        fp = parser.fingerprint("adder")
        parser.commit(COUNTER_SRC + "\n// trailing comment\n")
        assert parser.fingerprint("adder") == fp

    def test_parse_seconds_recorded(self):
        parser = LiveParser(COUNTER_SRC)
        result = parser.analyze(COUNTER_SRC.replace("a + b", "a - b"))
        assert result.parse_seconds > 0
