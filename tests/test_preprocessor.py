"""Preprocessor tests: defines, conditionals, alignment, errors."""

import pytest

from repro.hdl.errors import PreprocessorError
from repro.hdl.preprocessor import preprocess


class TestDefine:
    def test_simple_substitution(self):
        out = preprocess("`define W 8\nwire [`W-1:0] x;")
        assert "wire [8-1:0] x;" in out.text

    def test_flag_define_defaults_to_one(self):
        out = preprocess("`define FLAG\nassign x = `FLAG;")
        assert "assign x = 1;" in out.text

    def test_nested_macro_expansion(self):
        out = preprocess("`define A 4\n`define B `A\nwire [`B:0] x;")
        assert "wire [4:0] x;" in out.text

    def test_undef_removes_macro(self):
        source = "`define X 1\n`undef X\n`ifdef X\nwire a;\n`endif\nwire b;"
        out = preprocess(source)
        assert "wire a;" not in out.text
        assert "wire b;" in out.text

    def test_undefined_macro_use_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("wire [`NOPE:0] x;")

    def test_recursive_define_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("`define A `B\n`define B `A\nwire [`A:0] x;")

    def test_predefines_seed_the_table(self):
        out = preprocess("wire [`W:0] x;", predefines={"W": "15"})
        assert "wire [15:0] x;" in out.text

    def test_source_define_overrides_predefine(self):
        out = preprocess("`define W 7\nwire [`W:0] x;", predefines={"W": "15"})
        assert "wire [7:0] x;" in out.text


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("`define X\n`ifdef X\nwire a;\n`endif")
        assert "wire a;" in out.text

    def test_ifdef_not_taken(self):
        out = preprocess("`ifdef X\nwire a;\n`endif\nwire b;")
        assert "wire a;" not in out.text
        assert "wire b;" in out.text

    def test_ifndef(self):
        out = preprocess("`ifndef X\nwire a;\n`endif")
        assert "wire a;" in out.text

    def test_else_branch(self):
        out = preprocess("`ifdef X\nwire a;\n`else\nwire b;\n`endif")
        assert "wire a;" not in out.text
        assert "wire b;" in out.text

    def test_nested_conditionals(self):
        source = (
            "`define A\n"
            "`ifdef A\n`ifdef B\nwire ab;\n`else\nwire a_only;\n`endif\n`endif"
        )
        out = preprocess(source)
        assert "wire a_only;" in out.text
        assert "wire ab;" not in out.text

    def test_define_inside_untaken_branch_ignored(self):
        out = preprocess("`ifdef X\n`define Y 1\n`endif\n`ifdef Y\nwire y;\n`endif")
        assert "wire y;" not in out.text

    def test_unbalanced_endif_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("`endif")

    def test_unterminated_ifdef_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("`ifdef X\nwire a;")

    def test_duplicate_else_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("`ifdef X\n`else\n`else\n`endif")


class TestAlignment:
    def test_line_count_preserved(self):
        source = "`define W 8\nwire [`W:0] a;\n`ifdef X\nwire b;\n`endif\nwire c;"
        out = preprocess(source)
        assert len(out.text.splitlines()) == len(source.splitlines())

    def test_directive_lines_recorded(self):
        source = "wire a;\n`define W 8\nwire b;\n`ifdef W\nwire c;\n`endif"
        out = preprocess(source)
        assert out.directive_lines == [2, 4, 6]
        assert out.first_directive_line() == 2

    def test_macro_use_lines_recorded(self):
        out = preprocess("`define W 8\nwire [`W:0] a;\nwire [`W:0] b;")
        assert out.macros_used["W"] == [2, 3]
