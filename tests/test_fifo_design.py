"""A parameterized synchronous FIFO: model-based verification.

Exercises the simulator on the canonical pointer+memory+flag idiom
(wrap-around arithmetic, simultaneous push/pop, full/empty edges) by
comparing against a Python deque model under Hypothesis-driven
stimulus — then hot-reloads a capacity change mid-stream.
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro import compile_design
from repro.live.hotreload import HotReloader
from repro.sim import Pipe

FIFO_SRC = """
module fifo #(parameter W = 8, parameter LOGD = 3) (
  input clk,
  input rst,
  input push,
  input pop,
  input [W-1:0] din,
  output [W-1:0] dout,
  output full,
  output empty,
  output [LOGD:0] count
);
  localparam DEPTH = 1 << LOGD;
  reg [W-1:0] mem [0:DEPTH-1];
  reg [LOGD:0] wptr;
  reg [LOGD:0] rptr;

  wire [LOGD:0] level;
  assign level = wptr - rptr;
  assign count = level;
  assign empty = level == 0;
  assign full = level == DEPTH[LOGD:0];
  assign dout = mem[rptr[LOGD-1:0]];

  wire do_push;
  assign do_push = push && !full;
  wire do_pop;
  assign do_pop = pop && !empty;

  always @(posedge clk) begin
    if (rst) begin
      wptr <= 0;
      rptr <= 0;
    end else begin
      if (do_push) begin
        mem[wptr[LOGD-1:0]] <= din;
        wptr <= wptr + 1;
      end
      if (do_pop)
        rptr <= rptr + 1;
    end
  end
endmodule

module top (
  input clk,
  input rst,
  input push,
  input pop,
  input [7:0] din,
  output [7:0] dout,
  output full,
  output empty,
  output [3:0] count
);
  fifo #(.W(8), .LOGD(3)) u_fifo (
    .clk(clk), .rst(rst), .push(push), .pop(pop), .din(din),
    .dout(dout), .full(full), .empty(empty), .count(count)
  );
endmodule
"""

DEPTH = 8


def fresh_fifo() -> Pipe:
    netlist, library = compile_design(FIFO_SRC, "top")
    pipe = Pipe(netlist.top, library)
    pipe.set_inputs(rst=1, push=0, pop=0, din=0)
    pipe.step(1)
    pipe.set_inputs(rst=0)
    return pipe


class FifoModel:
    """Reference model with the RTL's first-word-fall-through timing."""

    def __init__(self, depth: int = DEPTH):
        self.depth = depth
        self.items: deque = deque()

    def cycle(self, push: bool, pop: bool, din: int):
        popped = None
        did_pop = pop and self.items
        did_push = push and len(self.items) < self.depth
        if did_pop:
            popped = self.items.popleft()
        if did_push:
            self.items.append(din)
        return popped

    @property
    def count(self) -> int:
        return len(self.items)


def drive_cycle(pipe: Pipe, push: int, pop: int, din: int) -> dict:
    pipe.set_inputs(push=push, pop=pop, din=din)
    outputs = pipe.eval()
    pipe.tick()
    return outputs


class TestFifoBasics:
    def test_reset_state(self):
        pipe = fresh_fifo()
        out = pipe.eval()
        assert out["empty"] == 1
        assert out["full"] == 0
        assert out["count"] == 0

    def test_push_then_pop(self):
        pipe = fresh_fifo()
        drive_cycle(pipe, push=1, pop=0, din=42)
        out = pipe.eval()
        assert (out["empty"], out["count"], out["dout"]) == (0, 1, 42)
        drive_cycle(pipe, push=0, pop=1, din=0)
        assert pipe.eval()["empty"] == 1

    def test_fill_to_full(self):
        pipe = fresh_fifo()
        for i in range(DEPTH):
            drive_cycle(pipe, push=1, pop=0, din=i)
        out = pipe.eval()
        assert out["full"] == 1
        assert out["count"] == DEPTH
        # Push into a full FIFO is ignored.
        drive_cycle(pipe, push=1, pop=0, din=99)
        assert pipe.eval()["count"] == DEPTH
        # Drain in order.
        for i in range(DEPTH):
            out = pipe.eval()
            assert out["dout"] == i
            drive_cycle(pipe, push=0, pop=1, din=0)
        assert pipe.eval()["empty"] == 1

    def test_pop_empty_ignored(self):
        pipe = fresh_fifo()
        drive_cycle(pipe, push=0, pop=1, din=0)
        out = pipe.eval()
        assert (out["empty"], out["count"]) == (1, 0)

    def test_simultaneous_push_pop_streams(self):
        pipe = fresh_fifo()
        drive_cycle(pipe, push=1, pop=0, din=7)
        for i in range(20):
            out = pipe.eval()
            assert out["count"] == 1
            expected_head = 7 + i
            assert out["dout"] == (expected_head & 0xFF)
            drive_cycle(pipe, push=1, pop=1, din=(7 + i + 1) & 0xFF)

    def test_pointer_wraparound(self):
        pipe = fresh_fifo()
        # 3 full laps around the ring buffer.
        for lap in range(3):
            for i in range(DEPTH):
                drive_cycle(pipe, push=1, pop=0, din=(lap * DEPTH + i) & 0xFF)
            for i in range(DEPTH):
                assert pipe.eval()["dout"] == (lap * DEPTH + i) & 0xFF
                drive_cycle(pipe, push=0, pop=1, din=0)
        assert pipe.eval()["empty"] == 1


class TestFifoModelBased:
    @given(stimulus=st.lists(
        st.tuples(st.booleans(), st.booleans(), st.integers(0, 255)),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=30, deadline=None)
    def test_against_deque_model(self, stimulus):
        if "design" not in _FIFO_CACHE:
            _FIFO_CACHE["design"] = compile_design(FIFO_SRC, "top")
        netlist, library = _FIFO_CACHE["design"]
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=1, push=0, pop=0, din=0)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        model = FifoModel()
        for push, pop, din in stimulus:
            out = pipe.eval()
            assert out["count"] == model.count
            assert out["empty"] == int(model.count == 0)
            assert out["full"] == int(model.count == DEPTH)
            if model.items:
                assert out["dout"] == model.items[0]
            model.cycle(push, pop, din)
            drive_cycle(pipe, int(push), int(pop), din)


_FIFO_CACHE: dict = {}


class TestFifoHotReload:
    def test_grow_capacity_in_flight(self):
        """Hot-swap the FIFO to double depth mid-stream.

        LOGD is a parameter of the *instantiation*, so this is a
        structural change: the fifo instance is rebuilt (new hardware),
        exactly like re-synthesizing with a bigger buffer.
        """
        netlist, library = compile_design(FIFO_SRC, "top")
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=1, push=0, pop=0, din=0)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        for i in range(4):
            drive_cycle(pipe, 1, 0, i)

        bigger = FIFO_SRC.replace(
            "fifo #(.W(8), .LOGD(3)) u_fifo",
            "fifo #(.W(8), .LOGD(4)) u_fifo",
        ).replace("output [3:0] count", "output [4:0] count")
        _, new_lib = compile_design(bigger, "top")
        HotReloader().swap_pipe(pipe, new_lib)
        out = pipe.eval()
        assert out["empty"] == 1  # new hardware starts empty
        for i in range(16):
            drive_cycle(pipe, 1, 0, i)
        assert pipe.eval()["full"] == 1  # sixteen deep now

    def test_flag_logic_fix_preserves_contents(self):
        """A comb-only change (flag polarity bug fix) keeps the queue
        contents: registers and memory migrate by name."""
        buggy = FIFO_SRC.replace(
            "assign full = level == DEPTH[LOGD:0];",
            "assign full = level == DEPTH[LOGD:0] - 1;",  # off-by-one
        )
        netlist, library = compile_design(buggy, "top")
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=1, push=0, pop=0, din=0)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        for i in range(5):
            drive_cycle(pipe, 1, 0, 10 + i)
        assert pipe.eval()["count"] == 5

        _, fixed_lib = compile_design(FIFO_SRC, "top")
        HotReloader().swap_pipe(pipe, fixed_lib)
        # Contents survived the swap; flags now computed correctly.
        assert pipe.eval()["count"] == 5
        for i in range(5):
            assert pipe.eval()["dout"] == 10 + i
            drive_cycle(pipe, 0, 1, 0)
        assert pipe.eval()["empty"] == 1
