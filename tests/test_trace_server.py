"""Live trace over the wire: watch/unwatch/trace/replay on the
threaded server and the sharded frontend, value-change streaming,
backpressure accounting, and subscription survival across hot reload,
worker crash, and migration.

The sharded tests share one module-scoped 2-worker frontend; the crash
test runs last so earlier tests can rely on live workers.
"""

import os
import time

import pytest

from repro.server.client import LiveSimClient, ServerError
from repro.server.frontend import ShardedFrontend
from repro.server.service import LiveSimServer
from repro.server.shard import HashRing
from tests.conftest import COUNTER_SRC

DOUBLED = COUNTER_SRC.replace("assign sum = a + b;",
                              "assign sum = a + b + b;")
RENAMED = COUNTER_SRC.replace("count_q", "cnt_q")

WORKERS = 2


def _drain_changes(client, signal, until_cycle, timeout=30.0):
    """Collect streamed value-change samples for ``signal`` until one
    at-or-past ``until_cycle`` arrives (value_change events are
    batched; markers and drops ride along)."""
    seen = {}
    markers = []
    dropped = 0
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        remaining = max(deadline - time.monotonic(), 0.01)
        try:
            event = client.wait_event("value_change", timeout=remaining)
        except TimeoutError:
            break
        dropped = max(dropped, event.data.get("events_dropped", 0))
        for item in event.data["events"]:
            if "value" in item and item.get("signal") == signal:
                seen[item["cycle"]] = item["value"]
            elif "value" not in item:
                markers.append(item)
        if seen and max(seen) >= until_cycle:
            break
    return seen, markers, dropped


def _assert_streamed_matches_trace(client, session, seen):
    """Every streamed (cycle, value) must equal the post-hoc trace
    read (streamed events are change-only, so compare this direction)."""
    window = client.trace(session, "p0", "c0", 0, max(seen) + 1)
    post = {cycle: value for cycle, value in window["samples"]}
    for cycle, value in seen.items():
        assert post[cycle] == value, f"cycle {cycle}: {value} != {post[cycle]}"


class TestThreadedTraceVerbs:
    @pytest.fixture
    def server(self):
        srv = LiveSimServer(port=0, checkpoint_interval=10)
        srv.start()
        yield srv
        srv.shutdown()

    def _client(self, srv):
        host, port = srv.address
        return LiveSimClient(host, port, timeout=30.0, read_timeout=60.0)

    def test_watch_streams_value_changes(self, server):
        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            client.command("s", "instPipe p0, stage2")
            info = client.watch("s", "p0", "c0")
            assert info["signal"] == "c0" and info["missing"] is False
            client.command("s", "run tb0, p0, 30")
            seen, _, _ = _drain_changes(client, "c0", until_cycle=29)
            assert len(seen) >= 27  # change-only: reset plateau is one
            _assert_streamed_matches_trace(client, "s", seen)

    def test_unwatch_stops_the_stream(self, server):
        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            client.command("s", "instPipe p0, stage2")
            client.watch("s", "p0", "c0")
            client.command("s", "run tb0, p0, 5")
            _drain_changes(client, "c0", until_cycle=4)
            assert client.unwatch("s", "p0", "c0")["removed"] is True
            client.events.clear()
            client.command("s", "run tb0, p0, 10")
            with pytest.raises(TimeoutError):
                client.wait_event("value_change", timeout=0.5)

    def test_trace_without_signal_returns_status(self, server):
        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            client.command("s", "instPipe p0, stage2")
            client.watch("s", "p0", "c0")
            client.command("s", "run tb0, p0, 10")
            status = client.trace("s", "p0")
            assert status["probes"][0]["signal"] == "c0"
            assert status["probes"][0]["samples"] == 10

    def test_replay_bit_identical_over_socket(self, server):
        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            client.command("s", "instPipe p0, stage2")
            client.watch("s", "p0", "c0")
            client.command("s", "run tb0, p0, 40")
            live = client.trace("s", "p0", "c0", 10, 30)["samples"]
            replay = client.replay("s", "p0", 10, 30, signals=["c0"])
            assert replay["signals"]["c0"] == live

    def test_watch_survives_hot_reload(self, server):
        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            client.command("s", "instPipe p0, stage2")
            client.watch("s", "p0", "c0")
            client.command("s", "run tb0, p0, 20")
            _drain_changes(client, "c0", until_cycle=19)
            client.reload("s", DOUBLED)
            client.command("s", "run tb0, p0, 10")
            seen, _, _ = _drain_changes(client, "c0", until_cycle=29)
            assert max(seen) == 29
            _assert_streamed_matches_trace(client, "s", seen)

    def test_vanished_signal_marked_not_fatal(self, server):
        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            client.command("s", "instPipe p0, stage2")
            client.watch("s", "p0", "u0.count_q")
            client.command("s", "run tb0, p0, 10")
            _drain_changes(client, "u0.count_q", until_cycle=9)
            client.reload("s", RENAMED)
            client.command("s", "run tb0, p0, 5")
            _, markers, _ = _drain_changes(
                client, "u0.count_q", until_cycle=14, timeout=2.0
            )
            assert {"signal": "u0.count_q", "missing": True} in markers
            status = client.trace("s", "p0")
            assert status["probes"][0]["missing"] is True

    def test_backpressure_reports_drops(self, server):
        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            client.command("s", "instPipe p0, stage2")
            client.watch("s", "p0", "c0", max_events=2)
            result = client.command("s", "run tb0, p0, 200")
            assert result["c0"] == 198  # sim never blocked on the queue
            seen, _, dropped = _drain_changes(
                client, "c0", until_cycle=199
            )
            assert dropped > 0
            _assert_streamed_matches_trace(client, "s", seen)
            stats = client.stats()
            assert stats["trace"]["events_dropped"] >= dropped

    def test_stats_exposes_trace_counters(self, server):
        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            client.command("s", "instPipe p0, stage2")
            client.watch("s", "p0", "c0")
            client.command("s", "run tb0, p0, 10")
            stats = client.stats()
            assert "events_dropped" in stats
            assert set(stats["trace"]) == {
                "cycles_dropped", "events_dropped",
            }

    def test_wire_validation_errors(self, server):
        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            client.command("s", "instPipe p0, stage2")
            with pytest.raises(ServerError, match="signal"):
                client.request("watch", session="s", pipe="p0")
            with pytest.raises(ServerError, match="start"):
                client.request("replay", session="s", pipe="p0", end=10)
            with pytest.raises(ServerError):
                client.watch("s", "p0", "bad,name")
            with pytest.raises(ServerError):
                client.trace("s", "p0", "c0", start=-1)

    def test_repl_lines_route_trace_verbs(self, server, capsys):
        from repro.server.client import run_lines

        with self._client(server) as client:
            client.open_session("s", COUNTER_SRC)
            import sys
            run_lines(client, "s", [
                "instPipe p0, stage2",
                "watch p0, c0",
                "run tb0, p0, 12",
                "trace p0, c0, 0, 5",
                "replay p0, 2, 8, c0",
                "unwatch p0, c0",
            ], sys.stdout)
        out = capsys.readouterr().out
        assert "'signal': 'c0'" in out
        assert "'removed': True" in out


@pytest.fixture(scope="module")
def frontend(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("trace-sharded")
    fe = ShardedFrontend(
        workers=WORKERS,
        store_root=str(tmp / "store"),
        state_root=str(tmp / "state"),
    )
    fe.start()
    yield fe
    fe.shutdown()


def _client(frontend, **kwargs):
    host, port = frontend.address
    kwargs.setdefault("read_timeout", 120.0)
    return LiveSimClient(host, port, timeout=30.0, **kwargs)


def _names_on_each_worker(prefix):
    ring = HashRing(range(WORKERS))
    names, i = {}, 0
    while len(names) < WORKERS:
        name = f"{prefix}-{i}"
        names.setdefault(ring.lookup(name), name)
        i += 1
    return [names[w] for w in range(WORKERS)]


class TestShardedTraceStreaming:
    def test_watch_streams_from_worker(self, frontend):
        with _client(frontend) as client:
            client.open_session("st", COUNTER_SRC)
            client.command("st", "instPipe p0, stage2")
            client.watch("st", "p0", "c0")
            client.command("st", "run tb0, p0, 30")
            seen, _, _ = _drain_changes(client, "c0", until_cycle=29)
            assert max(seen) == 29
            _assert_streamed_matches_trace(client, "st", seen)
            client.close_session("st")

    def test_events_only_reach_the_arming_client(self, frontend):
        with _client(frontend) as armed, _client(frontend) as other:
            armed.open_session("rt", COUNTER_SRC)
            armed.command("rt", "instPipe p0, stage2")
            armed.watch("rt", "p0", "c0")
            armed.command("rt", "run tb0, p0, 10")
            seen, _, _ = _drain_changes(armed, "c0", until_cycle=9)
            assert seen
            with pytest.raises(TimeoutError):
                other.wait_event("value_change", timeout=0.5)
            armed.close_session("rt")

    def test_replay_and_stats_forwarded(self, frontend):
        with _client(frontend) as client:
            client.open_session("sr", COUNTER_SRC)
            client.command("sr", "instPipe p0, stage2")
            client.watch("sr", "p0", "c0")
            client.command("sr", "run tb0, p0, 40")
            live = client.trace("sr", "p0", "c0", 5, 35)["samples"]
            replay = client.replay("sr", "p0", 5, 35, signals=["c0"])
            assert replay["signals"]["c0"] == live
            stats = client.stats()
            assert set(stats["trace"]) == {
                "cycles_dropped", "events_dropped",
            }
            assert "events_dropped" in stats
            assert "worker_stats" not in stats
            client.close_session("sr")

    def test_watch_survives_migration(self, frontend):
        first, second = _names_on_each_worker("mig")
        with _client(frontend) as client:
            client.open_session(first, COUNTER_SRC)
            client.command(first, "instPipe p0, stage2")
            client.watch(first, "p0", "c0")
            client.command(first, "run tb0, p0, 20")
            _drain_changes(client, "c0", until_cycle=19)

            moved = client.migrate(first, 1)
            assert moved["worker"] == 1
            client.events.clear()
            client.command(first, "run tb0, p0, 10")
            seen, _, _ = _drain_changes(client, "c0", until_cycle=29)
            assert min(seen) >= 20 and max(seen) == 29
            _assert_streamed_matches_trace(client, first, seen)
            client.close_session(first)

    def test_watch_survives_crash_rehydration(self, frontend):
        # SIGKILL the session's worker: the journaled watch re-arms on
        # the restarted worker and streaming resumes with no gap
        # (this test runs last — it restarts a worker).
        first, _ = _names_on_each_worker("crash")
        with _client(frontend) as client:
            client.open_session(first, COUNTER_SRC)
            client.command(first, "instPipe p0, stage2")
            client.watch(first, "p0", "c0")
            client.command(first, "run tb0, p0, 20")
            client.command(first, "chkp p0")
            _drain_changes(client, "c0", until_cycle=19)

            stats = client.stats()
            by_id = {w["id"]: w for w in stats["workers"]}
            os.kill(by_id[0]["pid"], 9)

            client.events.clear()
            result = client.command(first, "run tb0, p0, 10")
            assert result["c0"] == 28
            seen, _, _ = _drain_changes(client, "c0", until_cycle=29)
            assert min(seen) >= 20 and max(seen) == 29
            _assert_streamed_matches_trace(client, first, seen)
            replay = client.replay(first, "p0", 20, 30, signals=["c0"])
            post = {c: v for c, v in replay["signals"]["c0"]}
            for cycle, value in seen.items():
                assert post[cycle] == value
            client.close_session(first)
