"""Pipe and testbench API tests."""

import pytest

from repro import compile_design
from repro.hdl.errors import SimulationError
from repro.sim import Pipe, VectorTestbench
from repro.sim.testbench import CallbackTestbench, hold_inputs, reset_sequence
from tests.conftest import COUNTER_SRC


def fresh_pipe():
    netlist, library = compile_design(COUNTER_SRC, "top")
    pipe = Pipe(netlist.top, library)
    pipe.set_inputs(rst=0)
    return pipe


class TestPipeBasics:
    def test_port_name_views(self):
        pipe = fresh_pipe()
        assert pipe.input_names == ("clk", "rst")
        assert pipe.output_names == ("c0", "c1")

    def test_unknown_input_rejected(self):
        with pytest.raises(SimulationError):
            fresh_pipe().set_input("nope", 1)

    def test_get_input(self):
        pipe = fresh_pipe()
        pipe.set_input("rst", 1)
        assert pipe.get_input("rst") == 1

    def test_step_counts_cycles(self):
        pipe = fresh_pipe()
        assert pipe.step(7) == 7
        assert pipe.cycle == 7

    def test_outputs_cached_until_tick(self):
        pipe = fresh_pipe()
        first = pipe.outputs()
        assert pipe.outputs() is not None
        assert pipe.outputs() == first

    def test_run_until_stops_at_predicate(self):
        pipe = fresh_pipe()
        hit = pipe.run_until(lambda p, o: o["c0"] == 5, max_cycles=100)
        assert hit
        assert pipe.outputs()["c0"] == 5

    def test_run_until_bound(self):
        pipe = fresh_pipe()
        hit = pipe.run_until(lambda p, o: o["c0"] == 99, max_cycles=10)
        assert not hit
        assert pipe.cycle == 10

    def test_driver_called_each_cycle(self):
        pipe = fresh_pipe()
        calls = []
        pipe.step(4, driver=lambda p: calls.append(p.cycle))
        assert calls == [0, 1, 2, 3]

    def test_find_nested(self):
        pipe = fresh_pipe()
        assert pipe.find("u0.u_add").code.name == "adder"

    def test_find_missing_raises(self):
        with pytest.raises(SimulationError):
            fresh_pipe().find("nope")

    def test_walk_lists_hierarchy(self):
        pipe = fresh_pipe()
        paths = [path for path, _ in pipe.top.walk()]
        assert paths == ["top", "top.u0", "top.u0.u_add",
                         "top.u1", "top.u1.u_add"]


class TestSnapshotAndCopy:
    def test_snapshot_restore_roundtrip(self):
        pipe = fresh_pipe()
        pipe.step(9)
        snap = pipe.snapshot()
        pipe.step(11)
        pipe.restore(snap)
        assert pipe.cycle == 9
        assert pipe.outputs()["c0"] == 9

    def test_restore_includes_inputs(self):
        pipe = fresh_pipe()
        pipe.set_inputs(rst=0)
        snap = pipe.snapshot()
        pipe.set_inputs(rst=1)
        pipe.restore(snap)
        assert pipe.get_input("rst") == 0

    def test_copy_is_independent(self):
        pipe = fresh_pipe()
        pipe.step(5)
        clone = pipe.copy("clone")
        clone.step(5)
        assert pipe.outputs()["c0"] == 5
        assert clone.outputs()["c0"] == 10

    def test_reset_state_zeroes(self):
        pipe = fresh_pipe()
        pipe.step(9)
        pipe.reset_state()
        assert pipe.cycle == 0
        assert pipe.outputs()["c0"] == 0

    def test_snapshot_bytes(self):
        pipe = fresh_pipe()
        assert pipe.snapshot().total_bytes() > 0

    def test_registers_view(self):
        pipe = fresh_pipe()
        pipe.step(3)
        assert pipe.find("u0").registers() == {"count_q": 3}

    def test_restore_wrong_shape_rejected(self):
        pipe = fresh_pipe()
        snap = pipe.snapshot()
        other_netlist, other_lib = compile_design(
            "module m (input clk, output y); assign y = 1'b1; endmodule", "m"
        )
        other = Pipe(other_netlist.top, other_lib)
        with pytest.raises(SimulationError):
            other.restore(snap)


class TestTestbenches:
    def test_vector_testbench_drives_and_records(self):
        pipe = fresh_pipe()
        tb = VectorTestbench(vectors=[{"rst": 1}, {"rst": 1}, {"rst": 0}])
        tb.run(pipe, 6)
        assert len(tb.record) == 6
        # Held reset for 2 cycles, then counting.
        assert tb.record[-1]["c0"] == 3

    def test_vector_testbench_rebase_replays_identically(self):
        netlist, library = compile_design(COUNTER_SRC, "top")
        vectors = [{"rst": 1}] + [{"rst": 0}] * 9

        first = Pipe(netlist.top, library)
        tb = VectorTestbench(vectors=vectors)
        tb.run(first, 10)
        reference = [r["c0"] for r in tb.record]

        # Replay the tail from a snapshot, rebasing the testbench.
        second = Pipe(netlist.top, library)
        tb2 = VectorTestbench(vectors=vectors)
        tb2.run(second, 4)
        snap = second.snapshot()
        second.restore(snap)
        tb3 = VectorTestbench(vectors=vectors)
        tb3.rebase(0)
        tb3.run(second, 6)
        assert [r["c0"] for r in tb3.record] == reference[4:]

    def test_callback_testbench_check_stops(self):
        pipe = fresh_pipe()
        tb = CallbackTestbench(
            "stopper",
            drive=lambda p: p.set_inputs(rst=0),
            check=lambda p, o: o["c0"] >= 4,
        )
        ran = tb.run(pipe, 100)
        assert ran == 4

    def test_hold_inputs(self):
        pipe = fresh_pipe()
        hold_inputs(rst=1).run(pipe, 3)
        assert pipe.outputs()["c0"] == 0

    def test_reset_sequence_absolute(self):
        pipe = fresh_pipe()
        tb = reset_sequence("rst", cycles=2)
        tb.run(pipe, 5)
        assert pipe.outputs()["c0"] == 3  # 2 reset + 3 counting
        # Replay from cycle 0 gives identical stimulus.
        pipe.reset_state()
        tb.run(pipe, 5)
        assert pipe.outputs()["c0"] == 3
