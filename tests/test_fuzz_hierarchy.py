"""Structural fuzzing: random sequential hierarchies, pygen vs flatgen.

Generates random multi-module designs — stages with registers, comb
logic, and feedback wiring between sibling instances (the pattern that
exercises the two-phase evaluation and the instance scheduler) — and
checks that the shared-module simulator and the flattening simulator
agree cycle-for-cycle under random stimulus.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import compile_design
from repro.codegen.flatgen import compile_flat
from repro.hdl import elaborate, parse
from repro.sim import Pipe

OPS = ["+", "-", "^", "&", "|"]


@st.composite
def random_design(draw):
    """A chain of 2-4 stage instances with optional feedback.

    Each stage: q <= f(in1, in2); out = g(q, in1).  The chain wires
    stage[i].out into stage[i+1]; with feedback, the last stage's out
    also feeds the first stage's second input (a registered loop, which
    must schedule without fixpoint iteration).
    """
    n_stages = draw(st.integers(min_value=2, max_value=4))
    seq_op = draw(st.sampled_from(OPS))
    comb_op = draw(st.sampled_from(OPS))
    out_op = draw(st.sampled_from(OPS))
    feedback = draw(st.booleans())
    redirect_style = draw(st.booleans())  # seq-only cross input

    stage = f"""
module stage (
  input clk,
  input rst,
  input [7:0] in1,
  input [7:0] in2,
  output [7:0] out
);
  reg [7:0] q;
  wire [7:0] mixed;
  assign mixed = in1 {comb_op} q;
  assign out = mixed;
  always @(posedge clk) begin
    if (rst)
      q <= 0;
    else
      q <= in1 {seq_op} in2;
  end
endmodule
"""
    wires = "\n".join(f"  wire [7:0] w{i};" for i in range(n_stages))
    insts = []
    for i in range(n_stages):
        in1 = "x" if i == 0 else f"w{i - 1}"
        if i == 0 and feedback:
            in2 = f"w{n_stages - 1}"  # registered feedback loop
        elif redirect_style:
            in2 = f"w{(i + 1) % n_stages}"  # forward reference: seq-only
        else:
            in2 = "x"
        insts.append(
            f"  stage s{i} (.clk(clk), .rst(rst), .in1({in1}), "
            f".in2({in2}), .out(w{i}));"
        )
    top = f"""
module top (
  input clk,
  input rst,
  input [7:0] x,
  output [7:0] y
);
{wires}
{chr(10).join(insts)}
  assign y = w{n_stages - 1} {out_op} w0;
endmodule
"""
    return stage + top


@st.composite
def stimulus(draw):
    return draw(st.lists(
        st.tuples(st.booleans(), st.integers(0, 255)),
        min_size=3, max_size=15,
    ))


class TestHierarchyFuzz:
    @given(source=random_design(), stim=stimulus())
    @settings(max_examples=40, deadline=None)
    def test_pygen_and_flatgen_agree_cycle_by_cycle(self, source, stim):
        netlist, library = compile_design(source, "top")
        shared = Pipe(netlist.top, library)
        flat_code = compile_flat(elaborate(parse(source), "top"))
        flat = Pipe(flat_code.key, {flat_code.key: flat_code})
        for rst, x in stim:
            for pipe in (shared, flat):
                pipe.set_inputs(rst=int(rst), x=x)
            assert shared.eval() == flat.eval(), source
            shared.tick()
            flat.tick()

    @given(source=random_design(), stim=stimulus())
    @settings(max_examples=40, deadline=None)
    def test_opt_levels_agree_cycle_by_cycle(self, source, stim):
        """opt=full vs opt=none on random hierarchies — the sensitivity
        guards and pure-child skips must be invisible in behaviour,
        including across held inputs (guard hits) and input flips."""
        plain_netlist, plain_lib = compile_design(source, "top")
        opt_netlist, opt_lib = compile_design(source, "top", opt="full")
        plain = Pipe(plain_netlist.top, plain_lib)
        opt = Pipe(opt_netlist.top, opt_lib)
        for rst, x in stim:
            for pipe in (plain, opt):
                pipe.set_inputs(rst=int(rst), x=x)
            assert plain.eval() == opt.eval(), source
            # Hold the inputs for one extra cycle so guard-hit paths
            # (key unchanged) are exercised, not just cold misses.
            for _ in range(2):
                plain.tick()
                opt.tick()
                assert plain.eval() == opt.eval(), source

    @given(source=random_design())
    @settings(max_examples=25, deadline=None)
    def test_no_fixpoint_needed(self, source):
        """Every generated topology (feedback included) must schedule
        in one pass — loops go through registers."""
        netlist, _ = compile_design(source, "top")
        assert not any(m.needs_fixpoint for m in netlist.modules.values())

    @given(source=random_design(), stim=stimulus())
    @settings(max_examples=20, deadline=None)
    def test_snapshot_restore_determinism(self, source, stim):
        """Replaying from a snapshot reproduces the original run."""
        netlist, library = compile_design(source, "top")
        pipe = Pipe(netlist.top, library)
        half = len(stim) // 2
        for rst, x in stim[:half]:
            pipe.set_inputs(rst=int(rst), x=x)
            pipe.step(1)
        snap = pipe.snapshot()
        tail = []
        for rst, x in stim[half:]:
            pipe.set_inputs(rst=int(rst), x=x)
            tail.append(pipe.eval()["y"])
            pipe.tick()
        pipe.restore(snap)
        replayed = []
        for rst, x in stim[half:]:
            pipe.set_inputs(rst=int(rst), x=x)
            replayed.append(pipe.eval()["y"])
            pipe.tick()
        assert replayed == tail
