"""Elaboration tests: specialization, widths, drivers, diagnostics."""

import pytest

from repro.hdl import elaborate, parse
from repro.hdl.errors import ElaborationError, WidthError


def elab(source, top="m", params=None):
    return elaborate(parse(source), top, params)


class TestSpecialization:
    def test_same_params_share_one_spec(self):
        netlist = elab("""
module leaf #(parameter W = 8) (input clk, input [W-1:0] a, output [W-1:0] y);
  assign y = a;
endmodule
module m (input clk, input [7:0] a, output [7:0] x, output [7:0] y);
  leaf #(.W(8)) u0 (.clk(clk), .a(a), .y(x));
  leaf #(.W(8)) u1 (.clk(clk), .a(a), .y(y));
endmodule
""")
        leaf_specs = [k for k in netlist.modules if k.startswith("leaf")]
        assert leaf_specs == ["leaf#(W=8)"]

    def test_different_params_get_distinct_specs(self):
        netlist = elab("""
module leaf #(parameter W = 8) (input clk, input [W-1:0] a, output [W-1:0] y);
  assign y = a;
endmodule
module m (input clk, input [7:0] a, input [3:0] b,
          output [7:0] x, output [3:0] y);
  leaf #(.W(8)) u0 (.clk(clk), .a(a), .y(x));
  leaf #(.W(4)) u1 (.clk(clk), .a(b), .y(y));
endmodule
""")
        leaf_specs = sorted(k for k in netlist.modules if k.startswith("leaf"))
        assert leaf_specs == ["leaf#(W=4)", "leaf#(W=8)"]

    def test_default_params_equal_explicit(self):
        netlist = elab("""
module leaf #(parameter W = 8) (input clk, input [W-1:0] a, output [W-1:0] y);
  assign y = a;
endmodule
module m (input clk, input [7:0] a, output [7:0] x, output [7:0] y);
  leaf u0 (.clk(clk), .a(a), .y(x));
  leaf #(.W(8)) u1 (.clk(clk), .a(a), .y(y));
endmodule
""")
        assert [k for k in netlist.modules if k.startswith("leaf")] == [
            "leaf#(W=8)"
        ]

    def test_localparam_derives_from_parameter(self):
        netlist = elab("""
module m #(parameter W = 8) (input clk, output [W*2-1:0] y);
  localparam D = W * 2;
  reg [D-1:0] q;
  assign y = q;
  always @(posedge clk) q <= q + 1;
endmodule
""")
        ir = netlist.top_module
        assert ir.signals["q"].width == 16

    def test_localparam_override_rejected(self):
        with pytest.raises(ElaborationError):
            elab("""
module leaf (input clk); localparam X = 1; endmodule
module m (input clk);
  leaf #(.X(2)) u0 (.clk(clk));
endmodule
""", top="m")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ElaborationError):
            elab("module m (input clk); endmodule", params={"NOPE": 1})

    def test_top_param_override(self):
        netlist = elab(
            """
module m #(parameter W = 8) (input clk, output [W-1:0] y);
  reg [W-1:0] q;
  assign y = q;
  always @(posedge clk) q <= q + 1;
endmodule
""",
            params={"W": 13},
        )
        assert netlist.top == "m#(W=13)"
        assert netlist.top_module.signals["q"].width == 13

    def test_recursive_instantiation_rejected(self):
        with pytest.raises(ElaborationError):
            elab("""
module m (input clk);
  m u0 (.clk(clk));
endmodule
""")

    def test_instance_counts(self):
        netlist = elab("""
module leaf (input clk); endmodule
module mid (input clk);
  leaf a (.clk(clk));
  leaf b (.clk(clk));
endmodule
module m (input clk);
  mid x (.clk(clk));
  mid y (.clk(clk));
  leaf z (.clk(clk));
endmodule
""")
        counts = netlist.instance_count()
        assert counts["leaf"] == 5
        assert counts["mid"] == 2
        assert counts["m"] == 1


class TestSignalsAndDrivers:
    def test_register_slots_assigned(self):
        netlist = elab("""
module m (input clk);
  reg [7:0] a;
  reg b;
  always @(posedge clk) begin a <= a + 1; b <= !b; end
endmodule
""")
        ir = netlist.top_module
        assert ir.num_regs == 2
        assert sorted(
            n for n, s in ir.signals.items() if s.state_index is not None
        ) == ["a", "b"]

    def test_memory_geometry(self):
        netlist = elab("""
module m (input clk, input [3:0] a, output [7:0] y);
  reg [7:0] mem [0:15];
  assign y = mem[a];
  always @(posedge clk) mem[a] <= y + 1;
endmodule
""")
        mem = netlist.top_module.memories["mem"]
        assert (mem.width, mem.depth) == (8, 16)

    def test_multiple_drivers_rejected(self):
        with pytest.raises(ElaborationError, match="multiple drivers"):
            elab("""
module m (input a, input b, output y);
  assign y = a;
  assign y = b;
endmodule
""")

    def test_driving_input_rejected(self):
        with pytest.raises(ElaborationError):
            elab("module m (input a); assign a = 1; endmodule")

    def test_undriven_read_signal_rejected(self):
        with pytest.raises(ElaborationError, match="never driven"):
            elab("""
module m (input clk, output y);
  wire ghost;
  assign y = ghost;
endmodule
""")

    def test_unused_undriven_wire_tolerated(self):
        netlist = elab("""
module m (input a, output y);
  wire unused;
  assign y = a;
endmodule
""")
        assert "unused" in netlist.top_module.signals

    def test_seq_write_to_input_rejected(self):
        with pytest.raises(ElaborationError):
            elab("""
module m (input clk, input a);
  always @(posedge clk) a <= 1;
endmodule
""")

    def test_clock_must_be_input(self):
        with pytest.raises(ElaborationError, match="clock"):
            elab("""
module m (input a);
  wire clk;
  assign clk = a;
  reg q;
  always @(posedge clk) q <= 1;
endmodule
""")

    def test_registered_output_flagged(self):
        netlist = elab("""
module m (input clk, output [3:0] q);
  reg [3:0] q;
  always @(posedge clk) q <= q + 1;
endmodule
""")
        assert netlist.top_module.signals["q"].is_registered_output


class TestConnections:
    LEAF = """
module leaf (input clk, input [7:0] a, output [7:0] y);
  assign y = a;
endmodule
"""

    def test_missing_input_rejected(self):
        with pytest.raises(ElaborationError, match="unconnected"):
            elab(self.LEAF + """
module m (input clk);
  leaf u0 (.clk(clk));
endmodule
""", top="m")

    def test_unknown_port_rejected(self):
        with pytest.raises(ElaborationError, match="no port"):
            elab(self.LEAF + """
module m (input clk, input [7:0] a);
  leaf u0 (.clk(clk), .a(a), .nope(a));
endmodule
""", top="m")

    def test_output_width_mismatch_rejected(self):
        with pytest.raises(WidthError):
            elab(self.LEAF + """
module m (input clk, input [7:0] a, output [3:0] y);
  wire [3:0] narrow;
  leaf u0 (.clk(clk), .a(a), .y(narrow));
  assign y = narrow;
endmodule
""", top="m")

    def test_output_must_be_plain_signal(self):
        with pytest.raises(ElaborationError, match="plain signal"):
            elab(self.LEAF + """
module m (input clk, input [7:0] a, output [7:0] y);
  leaf u0 (.clk(clk), .a(a), .y(a + 1));
endmodule
""", top="m")

    def test_duplicate_instance_name_rejected(self):
        with pytest.raises(ElaborationError, match="duplicate instance"):
            elab(self.LEAF + """
module m (input clk, input [7:0] a, output [7:0] y, output [7:0] z);
  leaf u0 (.clk(clk), .a(a), .y(y));
  leaf u0 (.clk(clk), .a(a), .y(z));
endmodule
""", top="m")


class TestWidths:
    def test_nonzero_lsb_rejected(self):
        with pytest.raises(WidthError):
            elab("module m (input [7:4] a); endmodule")

    def test_width_from_parameter_expr(self):
        netlist = elab("""
module m #(parameter N = 6) (input clk, output [(1<<N)-1:0] y);
  reg [(1<<N)-1:0] q;
  assign y = q;
  always @(posedge clk) q <= q + 1;
endmodule
""")
        assert netlist.top_module.signals["y"].width == 64

    def test_interface_fingerprint_stable(self):
        src = """
module m (input clk, input [7:0] a, output [7:0] y);
  assign y = a;
endmodule
"""
        a = elab(src).top_module.interface_fingerprint()
        b = elab(src).top_module.interface_fingerprint()
        assert a == b

    def test_interface_fingerprint_changes_with_width(self):
        a = elab("""
module m (input clk, input [7:0] a, output [7:0] y);
  assign y = a;
endmodule
""").top_module.interface_fingerprint()
        b = elab("""
module m (input clk, input [8:0] a, output [7:0] y);
  assign y = a[7:0];
endmodule
""").top_module.interface_fingerprint()
        assert a != b
