"""Golden ISS unit tests: instruction semantics in isolation."""


from repro.riscv import encode, isa
from repro.riscv.golden import GoldenCore


def exec_words(words, max_instructions=100, **kwargs):
    core = GoldenCore(**kwargs)
    core.load_program(list(words) + [isa.ECALL])
    core.run(max_instructions)
    return core


class TestALU:
    def test_add_wraps_64(self):
        core = GoldenCore()
        core.set_reg(1, isa.MASK64)
        core.load_program([
            encode.encode_r(isa.OP_OP, 3, 0, 1, 1, 0),  # add x3,x1,x1
            isa.ECALL,
        ])
        core.run(10)
        assert core.reg(3) == isa.MASK64 - 1

    def test_sub(self):
        core = GoldenCore()
        core.set_reg(1, 5)
        core.set_reg(2, 7)
        core.load_program([
            encode.encode_r(isa.OP_OP, 3, 0, 1, 2, 0b0100000),
            isa.ECALL,
        ])
        core.run(10)
        assert core.reg(3) == isa.to_unsigned64(-2)

    def test_sll_uses_six_bit_shamt(self):
        core = GoldenCore()
        core.set_reg(1, 1)
        core.set_reg(2, 65)  # shamt = 65 & 63 = 1
        core.load_program([
            encode.encode_r(isa.OP_OP, 3, isa.F3_SLL, 1, 2, 0),
            isa.ECALL,
        ])
        core.run(10)
        assert core.reg(3) == 2

    def test_sra_sign_fills(self):
        core = GoldenCore()
        core.set_reg(1, 1 << 63)
        core.set_reg(2, 4)
        core.load_program([
            encode.encode_r(isa.OP_OP, 3, isa.F3_SRL_SRA, 1, 2, 0b0100000),
            isa.ECALL,
        ])
        core.run(10)
        assert core.reg(3) >> 59 == 0b11111

    def test_x0_never_written(self):
        core = GoldenCore()
        core.load_program([
            encode.encode_i(isa.OP_IMM, 0, 0, 0, 123),  # addi x0,x0,123
            isa.ECALL,
        ])
        core.run(10)
        assert core.reg(0) == 0


class TestControl:
    def test_jal_sets_link(self):
        core = exec_words([encode.encode_j(isa.OP_JAL, 1, 8), isa.NOP])
        assert core.reg(1) == 4

    def test_jalr_clears_low_bit(self):
        core = GoldenCore()
        core.set_reg(5, 9)  # odd target
        core.load_program([
            encode.encode_i(isa.OP_JALR, 1, 0, 5, 0),
            isa.ECALL,  # at 4 (skipped)
            isa.ECALL,  # at 8 (landed on, 9 & ~1)
        ])
        core.step(1)
        assert core.pc == 8

    def test_branch_not_taken_falls_through(self):
        core = GoldenCore()
        core.set_reg(1, 1)
        core.load_program([
            encode.encode_b(isa.OP_BRANCH, isa.F3_BEQ, 1, 0, 8),
            isa.ECALL,
        ])
        core.step(1)
        assert core.pc == 4

    def test_fence_is_noop(self):
        core = exec_words([0x0000000F])  # fence
        assert core.halted
        assert core.instret == 2

    def test_ebreak_halts(self):
        core = GoldenCore()
        core.load_program([isa.EBREAK])
        core.run(10)
        assert core.halted


class TestMemory:
    def test_little_endian_layout(self):
        core = GoldenCore()
        core.write(0x100, 0x0807060504030201, 8)
        assert core.read(0x100, 1) == 0x01
        assert core.read(0x107, 1) == 0x08

    def test_remote_store_callback(self):
        calls = []
        core = GoldenCore(remote_store=lambda a, v, s: calls.append((a, v, s)))
        core.set_reg(1, (1 << 24) | (3 << 15) | 0x100)  # node 3's window
        core.set_reg(2, 0xDEAD)
        core.load_program([
            encode.encode_s(isa.OP_STORE, isa.F3_SD, 1, 2, 0),
            isa.ECALL,
        ])
        core.run(10)
        assert calls == [((1 << 24) | (3 << 15) | 0x100, 0xDEAD, 8)]

    def test_remote_load_returns_zero(self):
        core = GoldenCore()
        core.write(0x100, 77, 8)
        core.set_reg(1, (1 << 24) | (5 << 15) | 0x100)
        core.load_program([
            encode.encode_i(isa.OP_LOAD, 3, isa.F3_LD, 1, 0),
            isa.ECALL,
        ])
        core.run(10)
        assert core.reg(3) == 0

    def test_global_self_address_is_local(self):
        core = GoldenCore(node_id=4)
        addr = (1 << 24) | (4 << 15) | 0x100
        assert not core.is_remote(addr)

    def test_instret_counts(self):
        core = exec_words([isa.NOP, isa.NOP, isa.NOP])
        assert core.instret == 4  # 3 nops + ecall

    def test_dump_regs_named(self):
        core = GoldenCore()
        core.set_reg(2, 0x1000)
        assert core.dump_regs()["sp"] == 0x1000
