"""Register transform rules and branching history tests (Tables V/VI)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.errors import SimulationError
from repro.live.transform import (
    CREATE,
    DELETE,
    RENAME,
    RegisterTransform,
    RegisterTransformHistory,
    TransformOp,
    guess_transforms,
)


class TestTransformOps:
    def test_create_initializes(self):
        t = RegisterTransform([TransformOp(CREATE, "newR", init_value=7)])
        assert t.apply({"oldR": 1}) == {"oldR": 1, "newR": 7}

    def test_create_defaults_to_zero(self):
        t = RegisterTransform([TransformOp(CREATE, "newR")])
        assert t.apply({})["newR"] == 0

    def test_delete_drops_data(self):
        t = RegisterTransform([TransformOp(DELETE, "gone")])
        assert t.apply({"gone": 9, "kept": 1}) == {"kept": 1}

    def test_delete_missing_is_noop(self):
        t = RegisterTransform([TransformOp(DELETE, "nope")])
        assert t.apply({"a": 1}) == {"a": 1}

    def test_rename_maps_value(self):
        t = RegisterTransform([TransformOp(RENAME, "someR", new_name="newR")])
        assert t.apply({"someR": 42}) == {"newR": 42}

    def test_rename_missing_is_noop(self):
        t = RegisterTransform([TransformOp(RENAME, "nope", new_name="x")])
        assert t.apply({"a": 1}) == {"a": 1}

    def test_rename_requires_new_name(self):
        with pytest.raises(ValueError):
            TransformOp(RENAME, "a")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TransformOp("mutate", "a")

    def test_compose_applies_in_order(self):
        first = RegisterTransform([TransformOp(RENAME, "a", new_name="b")])
        second = RegisterTransform([TransformOp(RENAME, "b", new_name="c")])
        composed = first.compose(second)
        assert composed.apply({"a": 5}) == {"c": 5}

    def test_identity(self):
        assert RegisterTransform().is_identity()
        assert not RegisterTransform([TransformOp(DELETE, "x")]).is_identity()

    @given(values=st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]), st.integers(0, 1000),
    ))
    @settings(max_examples=30, deadline=None)
    def test_identity_preserves_everything(self, values):
        assert RegisterTransform().apply(values) == values


class TestGuessTransforms:
    def test_unchanged_names_need_no_ops(self):
        t = guess_transforms({"a": 8, "b": 8}, {"a": 8, "b": 8})
        assert t.is_identity()

    def test_pure_addition_creates(self):
        t = guess_transforms({"a": 8}, {"a": 8, "shiny_new": 4})
        assert [op.kind for op in t.ops] == [CREATE]

    def test_pure_removal_deletes(self):
        t = guess_transforms({"a": 8, "legacy": 4}, {"a": 8})
        assert [op.kind for op in t.ops] == [DELETE]

    def test_similar_name_same_width_renames(self):
        t = guess_transforms({"count_q": 8}, {"counter_q": 8})
        assert t.ops == [TransformOp(RENAME, "count_q", new_name="counter_q")]
        assert t.apply({"count_q": 42}) == {"counter_q": 42}

    def test_different_width_not_renamed(self):
        t = guess_transforms({"count_q": 8}, {"count_w": 16})
        kinds = sorted(op.kind for op in t.ops)
        assert kinds == [CREATE, DELETE]

    def test_dissimilar_names_not_renamed(self):
        t = guess_transforms({"alpha": 8}, {"zzz9": 8})
        kinds = sorted(op.kind for op in t.ops)
        assert kinds == [CREATE, DELETE]

    def test_rename_pairs_each_target_once(self):
        t = guess_transforms(
            {"val_q": 8, "val_r": 8}, {"value_q": 8, "value_r": 8}
        )
        renames = [op for op in t.ops if op.kind == RENAME]
        targets = [op.new_name for op in renames]
        assert len(targets) == len(set(targets))

    @given(
        kept=st.sets(st.sampled_from(["r0", "r1", "r2"]), max_size=3),
        added=st.sets(st.sampled_from(["zz8", "yy7"]), max_size=2),
    )
    @settings(max_examples=25, deadline=None)
    def test_guess_produces_exactly_new_register_set(self, kept, added):
        old = {name: 8 for name in kept | {"dropped_zq"}}
        new = {name: 8 for name in kept | added}
        t = guess_transforms(old, new)
        values = {name: i for i, name in enumerate(old)}
        migrated = t.apply(values)
        assert set(migrated) == set(new)


class TestHistory:
    def test_root_exists(self):
        history = RegisterTransformHistory("1.0")
        assert "1.0" in history
        assert history.parent_of("1.0") is None

    def test_linear_chain_composes(self):
        history = RegisterTransformHistory("1.0")
        history.add_version("1.1", "1.0", {
            "m": RegisterTransform([TransformOp(CREATE, "newR")]),
        })
        history.add_version("1.2", "1.1", {
            "m": RegisterTransform([TransformOp(RENAME, "someR",
                                                new_name="newR2")]),
        })
        composed = history.composed_transform("1.0", "1.2", "m")
        assert composed.apply({"someR": 5}) == {"someR": 5, "newR": 0} or (
            composed.apply({"someR": 5}) == {"newR2": 5, "newR": 0}
        )
        result = composed.apply({"someR": 5})
        assert result["newR"] == 0
        assert result.get("newR2") == 5

    def test_branching_like_table6(self):
        """The paper's Table VI: 1.3 and 1.3a both branch from 1.2."""
        history = RegisterTransformHistory("1.1")
        history.add_version("1.2", "1.1", {
            "m": RegisterTransform([TransformOp(CREATE, "newR1")]),
        })
        history.add_version("1.3", "1.2", {
            "m": RegisterTransform([TransformOp(DELETE, "otherR")]),
        })
        history.add_version("1.3a", "1.2", {
            "m": RegisterTransform([
                TransformOp(RENAME, "newR1", new_name="myR1"),
                TransformOp(DELETE, "newR"),
            ]),
        })
        via_a = history.composed_transform("1.1", "1.3a", "m")
        result = via_a.apply({"newR": 3, "otherR": 4})
        assert "newR" not in result
        assert result["myR1"] == 0  # created in 1.2, renamed in 1.3a

    def test_cross_branch_transform_rejected(self):
        history = RegisterTransformHistory("1.0")
        history.add_version("1.1", "1.0")
        history.add_version("1.1b", "1.0")
        with pytest.raises(SimulationError, match="cross branches"):
            history.composed_transform("1.1", "1.1b", "m")

    def test_same_version_is_empty_path(self):
        history = RegisterTransformHistory("1.0")
        assert history.path("1.0", "1.0") == []

    def test_duplicate_version_rejected(self):
        history = RegisterTransformHistory("1.0")
        history.add_version("1.1", "1.0")
        with pytest.raises(SimulationError):
            history.add_version("1.1", "1.0")

    def test_unknown_parent_rejected(self):
        history = RegisterTransformHistory("1.0")
        with pytest.raises(SimulationError):
            history.add_version("2.0", "9.9")

    def test_manual_override(self):
        history = RegisterTransformHistory("1.0")
        history.add_version("1.1", "1.0")
        history.set_transform(
            "1.1", "m",
            RegisterTransform([TransformOp(RENAME, "a", new_name="b")]),
        )
        composed = history.composed_transform("1.0", "1.1", "m")
        assert composed.apply({"a": 1}) == {"b": 1}

    def test_rows_render_like_table6(self):
        history = RegisterTransformHistory("1.1")
        history.add_version("1.2", "1.1", {
            "m": RegisterTransform([TransformOp(CREATE, "newR1")]),
        })
        rows = dict((v, (ops, parent)) for v, ops, parent in history.rows())
        assert rows["1.1"] == ("-", "null")
        assert "create newR1" in rows["1.2"][0]
        assert rows["1.2"][1] == "1.1"
