"""Replay and consistency-verification tests (§III-F, Fig. 6)."""

import pytest

from repro import compile_design
from repro.hdl.errors import SimulationError
from repro.live.checkpoint import CheckpointStore
from repro.live.consistency import ConsistencyChecker
from repro.live.replay import SessionOp, replay_ops, trim_ops
from repro.sim import Pipe
from repro.sim.testbench import CallbackTestbench, hold_inputs
from tests.conftest import COUNTER_SRC


def make_pipe():
    netlist, library = compile_design(COUNTER_SRC, "top")
    pipe = Pipe(netlist.top, library)
    pipe.set_inputs(rst=0)
    return pipe


def tb_lookup_factory():
    run_tb = hold_inputs(rst=0)
    return lambda handle: run_tb


class TestReplayOps:
    def test_replay_reaches_target(self):
        pipe = make_pipe()
        ops = [SessionOp("tb0", 0, 50)]
        executed = replay_ops(pipe, ops, 30, tb_lookup_factory())
        assert executed == 30
        assert pipe.cycle == 30

    def test_replay_spans_multiple_ops(self):
        pipe = make_pipe()
        ops = [SessionOp("tb0", 0, 10), SessionOp("tb0", 10, 25)]
        replay_ops(pipe, ops, 25, tb_lookup_factory())
        assert pipe.cycle == 25
        assert pipe.outputs()["c0"] == 25

    def test_replay_from_midpoint_skips_done_ops(self):
        pipe = make_pipe()
        pipe.step(12)  # pretend we restored a checkpoint at cycle 12
        ops = [SessionOp("tb0", 0, 10), SessionOp("tb0", 10, 30)]
        executed = replay_ops(pipe, ops, 30, tb_lookup_factory())
        assert executed == 18

    def test_replay_backwards_rejected(self):
        pipe = make_pipe()
        pipe.step(20)
        with pytest.raises(SimulationError, match="backwards"):
            replay_ops(pipe, [SessionOp("tb0", 0, 30)], 10, tb_lookup_factory())

    def test_history_too_short_rejected(self):
        pipe = make_pipe()
        with pytest.raises(SimulationError, match="history ends"):
            replay_ops(pipe, [SessionOp("tb0", 0, 5)], 10, tb_lookup_factory())

    def test_testbench_rebased_to_op_start(self):
        pipe = make_pipe()

        class RecordingTB(CallbackTestbench):
            def __init__(self):
                super().__init__("rec", drive=lambda p: p.set_inputs(rst=0))
                self.base = None

            def rebase(self, start_cycle):
                self.base = start_cycle

        tb = RecordingTB()
        replay_ops(pipe, [SessionOp("tb0", 0, 5)], 5, lambda h: tb)
        assert tb.base == 0

    def test_trim_ops(self):
        ops = [SessionOp("a", 0, 10), SessionOp("b", 10, 20),
               SessionOp("c", 20, 30)]
        assert trim_ops(ops, 15) == ops[1:]
        assert trim_ops(ops, 0) == ops


class TestConsistencyChecker:
    def _checkpointed_run(self, cycles=40, interval=10):
        netlist, library = compile_design(COUNTER_SRC, "top")
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=0)
        store = CheckpointStore(interval=interval)
        for _ in range(cycles):
            pipe.step(1)
            store.maybe_take(pipe, "1.0", 0)
        ops = [SessionOp("tb0", 0, cycles)]

        def build_pipe():
            fresh = Pipe(netlist.top, library)
            fresh.set_inputs(rst=0)
            return fresh

        return store, ops, build_pipe

    def test_consistent_run_verifies(self):
        store, ops, build_pipe = self._checkpointed_run()
        checker = ConsistencyChecker(build_pipe, tb_lookup_factory())
        report = checker.verify(store.all(), ops)
        assert report.all_consistent
        assert len(report.segments) == len(store)
        assert report.divergence_cycle is None

    def test_divergence_detected_and_localized(self):
        store, ops, build_pipe = self._checkpointed_run()
        # Corrupt the checkpoint at cycle 20: its state claims a value
        # the (unchanged) design can never reach from cycle 10.
        victim = [c for c in store.all() if c.cycle == 20][0]
        victim.snapshot.state.child("u0").regs["count_q"] = 199
        checker = ConsistencyChecker(build_pipe, tb_lookup_factory())
        report = checker.verify(store.all(), ops)
        assert not report.all_consistent
        bad = report.first_divergent
        assert (bad.start_cycle, bad.end_cycle) == (10, 20)
        assert "count_q" in bad.detail
        # Divergence localized: later segments replay *from* corrupted
        # state and also mismatch, but the earliest point is what the
        # paper uses to restart.
        assert report.divergence_cycle == 10

    def test_segment_zero_covers_reset_to_first_checkpoint(self):
        store, ops, build_pipe = self._checkpointed_run()
        checker = ConsistencyChecker(build_pipe, tb_lookup_factory())
        report = checker.verify(store.all(), ops)
        assert report.segments[0].start_cycle == 0

    def test_empty_store_verifies_trivially(self):
        _, ops, build_pipe = self._checkpointed_run()
        checker = ConsistencyChecker(build_pipe, tb_lookup_factory())
        report = checker.verify([], ops)
        assert report.all_consistent
        assert report.segments == []

    def test_cpu_seconds_covers_segments(self):
        store, ops, build_pipe = self._checkpointed_run()
        checker = ConsistencyChecker(build_pipe, tb_lookup_factory())
        report = checker.verify(store.all(), ops)
        assert report.cpu_seconds > 0
        assert report.wall_seconds >= 0
