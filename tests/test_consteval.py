"""Constant evaluation and parameter folding tests."""

import pytest

from repro.hdl import ast_nodes as ast
from repro.hdl.consteval import (
    eval_const,
    expr_reads,
    fold_params,
    stmt_reads_writes,
)
from repro.hdl.errors import ElaborationError
from repro.hdl.lexer import tokenize
from repro.hdl.parser import Parser, parse_expr


def ev(text, **env):
    return eval_const(parse_expr(text), env)


class TestEvalConst:
    def test_literals(self):
        assert ev("42") == 42
        assert ev("8'hFF") == 255

    def test_arithmetic(self):
        assert ev("2 + 3 * 4") == 14
        assert ev("(10 - 4) / 2") == 3
        assert ev("7 % 3") == 1

    def test_shifts_and_bitwise(self):
        assert ev("1 << 4") == 16
        assert ev("255 >> 4") == 15
        assert ev("12 & 10") == 8
        assert ev("12 | 3") == 15
        assert ev("12 ^ 10") == 6

    def test_comparisons(self):
        assert ev("3 < 4") == 1
        assert ev("4 <= 4") == 1
        assert ev("3 == 4") == 0
        assert ev("3 != 4") == 1

    def test_logical(self):
        assert ev("1 && 0") == 0
        assert ev("1 || 0") == 1

    def test_ternary(self):
        assert ev("1 ? 10 : 20") == 10
        assert ev("0 ? 10 : 20") == 20

    def test_unary(self):
        assert ev("-3") == -3
        assert ev("!0") == 1
        assert ev("~0") == -1

    def test_parameters_resolve(self):
        assert ev("W - 1", W=8) == 7

    def test_clog2(self):
        assert ev("$clog2(1)") == 0
        assert ev("$clog2(2)") == 1
        assert ev("$clog2(4096)") == 12
        assert ev("$clog2(4097)") == 13

    def test_non_constant_rejected(self):
        with pytest.raises(ElaborationError):
            ev("some_signal + 1")

    def test_division_by_zero_rejected(self):
        with pytest.raises(ElaborationError):
            ev("4 / 0")


class TestFoldParams:
    def test_param_becomes_literal(self):
        folded = fold_params(parse_expr("W - 1"), {"W": 8})
        assert isinstance(folded, ast.Num) and folded.value == 7

    def test_nonparam_ids_survive(self):
        folded = fold_params(parse_expr("sig + W"), {"W": 8})
        assert isinstance(folded, ast.Binary)
        assert isinstance(folded.left, ast.Id)
        assert isinstance(folded.right, ast.Num)

    def test_folds_inside_concat_and_slices(self):
        folded = fold_params(parse_expr("{a[W-1:0], b[W-1]}"), {"W": 4})
        assert isinstance(folded.parts[0].msb, ast.Num)
        assert folded.parts[0].msb.value == 3

    def test_clog2_folds(self):
        folded = fold_params(parse_expr("$clog2(DEPTH)"), {"DEPTH": 1024})
        assert isinstance(folded, ast.Num) and folded.value == 10

    def test_ternary_folds_operands(self):
        folded = fold_params(parse_expr("sel ? W : 0"), {"W": 9})
        assert isinstance(folded.if_true, ast.Num)


class TestReads:
    def test_expr_reads_simple(self):
        assert expr_reads(parse_expr("a + b * c")) == {"a", "b", "c"}

    def test_expr_reads_includes_bases(self):
        assert expr_reads(parse_expr("mem[addr] + x[3:0]")) == {
            "mem", "addr", "x",
        }

    def test_expr_reads_ignores_literals(self):
        assert expr_reads(parse_expr("8'hFF + 3")) == set()

    def test_stmt_reads_writes(self):
        source = """
begin
  if (en) begin
    q <= a + b;
    mem[addr] <= d;
  end else
    q <= 0;
end
"""
        parser = Parser(tokenize(source))
        stmts = parser._parse_stmt_as_list("seq")
        reads, writes = stmt_reads_writes(stmts)
        assert writes == {"q", "mem"}
        assert {"en", "a", "b", "addr", "d"} <= reads
