"""repro.analyze tests: the semantic checks, the fingerprint-cached
analyzer, the hot-reload gate, line attribution after incremental
edits, and the repro.analyze/v1 CLI + baseline diff."""

import json

import pytest

from repro.analyze import (
    COMB_LOOP,
    DEAD_BRANCH,
    LATCH,
    MULTI_DRIVER,
    NB_RACE,
    OOB_INDEX,
    PROVED_CONDITION,
    SEVERITY_ERROR,
    TRUNC_LOSS,
    UNREACHABLE_ARM,
    Analyzer,
    Diagnostic,
    GateBlockedError,
    GatePolicy,
    diff_reports,
    evaluate_gate,
    load_report,
)
from repro.analyze.__main__ import main as analyze_main
from repro.hdl import elaborate, parse
from repro.live.session import LiveSession
from repro.sim.testbench import hold_inputs
from tests.conftest import COUNTER_SRC


def analyze_source(source, top):
    netlist = elaborate(parse(source), top)
    return Analyzer().analyze_netlist(netlist)


def kinds_of(report):
    return [d.kind for d in report.diagnostics]


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------


class TestCombLoop:
    def test_assign_cycle_reports_full_path(self):
        report = analyze_source("""
module m(input [3:0] a, output [3:0] y);
  wire [3:0] p;
  wire [3:0] q;
  assign p = q & a;
  assign q = p | 4'd1;
  assign y = p;
endmodule
""", "m")
        loops = report.findings(SEVERITY_ERROR)
        assert len(loops) == 1
        diag = loops[0]
        assert diag.kind == COMB_LOOP
        assert set(diag.path) == {"p", "q"}
        assert diag.path[0] == diag.path[-1]  # closed cycle
        assert "p" in diag.message and "q" in diag.message

    def test_register_breaks_the_path(self):
        report = analyze_source("""
module m(input clk, input [3:0] a, output [3:0] y);
  reg [3:0] q;
  wire [3:0] p;
  assign p = q & a;
  always @(posedge clk) q <= p;
  assign y = p;
endmodule
""", "m")
        assert COMB_LOOP not in kinds_of(report)

    def test_loop_through_child_instance(self):
        report = analyze_source("""
module inv(input [3:0] x, output [3:0] y);
  assign y = ~x;
endmodule

module m(input clk, output [3:0] out);
  wire [3:0] fwd;
  wire [3:0] back;
  inv u0 (.x(fwd), .y(back));
  assign fwd = back ^ 4'd5;
  assign out = fwd;
endmodule
""", "m")
        loops = [d for d in report.diagnostics if d.kind == COMB_LOOP]
        assert len(loops) == 1
        assert loops[0].module == "m"

    def test_registered_child_output_breaks_loop(self):
        report = analyze_source("""
module dff(input clk, input [3:0] d, output [3:0] q);
  reg [3:0] q_r;
  always @(posedge clk) q_r <= d;
  assign q = q_r;
endmodule

module m(input clk, output [3:0] out);
  wire [3:0] fwd;
  wire [3:0] back;
  dff u0 (.clk(clk), .d(fwd), .q(back));
  assign fwd = back ^ 4'd5;
  assign out = fwd;
endmodule
""", "m")
        assert COMB_LOOP not in kinds_of(report)


MULTI_SRC = """
module m(input clk, input [3:0] a, output [3:0] y);
  reg [3:0] q;
  always @(posedge clk) q <= a;
  always @(posedge clk) q <= a + 4'd1;
  assign y = q;
endmodule
"""


class TestMultiDriver:
    def test_two_seq_blocks_same_register(self):
        report = analyze_source(MULTI_SRC, "m")
        conflicts = [d for d in report.diagnostics if d.kind == MULTI_DRIVER]
        assert len(conflicts) == 1
        assert conflicts[0].severity == SEVERITY_ERROR
        assert "'q'" in conflicts[0].message

    def test_memory_written_from_two_blocks(self):
        report = analyze_source("""
module m(input clk, input [3:0] a, input [1:0] wa, output [3:0] y);
  reg [3:0] mem [0:3];
  always @(posedge clk) mem[wa] <= a;
  always @(posedge clk) mem[2'd0] <= 4'd7;
  assign y = mem[wa];
endmodule
""", "m")
        conflicts = [d for d in report.diagnostics if d.kind == MULTI_DRIVER]
        assert len(conflicts) == 1
        assert "memory 'mem'" in conflicts[0].message

    def test_single_writer_is_quiet(self):
        report = analyze_source(COUNTER_SRC, "top")
        assert MULTI_DRIVER not in kinds_of(report)


class TestLatch:
    def test_if_without_else_infers_latch(self):
        report = analyze_source("""
module m(input sel, input [3:0] a, output [3:0] y);
  reg [3:0] v;
  always @(*) begin
    if (sel)
      v = a;
  end
  assign y = v;
endmodule
""", "m")
        latches = [d for d in report.diagnostics if d.kind == LATCH]
        assert len(latches) == 1
        assert "'v'" in latches[0].message

    def test_complete_if_else_is_quiet(self):
        report = analyze_source("""
module m(input sel, input [3:0] a, output [3:0] y);
  reg [3:0] v;
  always @(*) begin
    if (sel)
      v = a;
    else
      v = 4'd0;
  end
  assign y = v;
endmodule
""", "m")
        assert LATCH not in kinds_of(report)

    def test_case_with_default_is_quiet(self):
        report = analyze_source("""
module m(input [1:0] sel, input [3:0] a, output [3:0] y);
  reg [3:0] v;
  always @(*) begin
    case (sel)
      2'd0: v = a;
      2'd1: v = ~a;
      default: v = 4'd0;
    endcase
  end
  assign y = v;
endmodule
""", "m")
        assert LATCH not in kinds_of(report)

    def test_case_without_default_infers_latch(self):
        report = analyze_source("""
module m(input [1:0] sel, input [3:0] a, output [3:0] y);
  reg [3:0] v;
  always @(*) begin
    case (sel)
      2'd0: v = a;
      2'd1: v = ~a;
    endcase
  end
  assign y = v;
endmodule
""", "m")
        assert LATCH in kinds_of(report)


RACE_SRC = """
module m(input clk, input [7:0] a, input [7:0] b, output [7:0] y);
  reg [7:0] merged;
  always @(posedge clk) begin
    merged[3:0] <= a[3:0];
  end
  always @(posedge clk) begin
    merged <= b;
  end
  assign y = merged;
endmodule
"""


class TestRace:
    def test_partial_write_against_sibling_writer(self):
        report = analyze_source(RACE_SRC, "m")
        races = [d for d in report.diagnostics if d.kind == NB_RACE]
        assert len(races) == 1
        assert races[0].severity == SEVERITY_ERROR
        assert "'merged'" in races[0].message

    def test_partial_writes_in_one_block_are_fine(self):
        report = analyze_source("""
module m(input clk, input [7:0] a, output [7:0] y);
  reg [7:0] v;
  always @(posedge clk) begin
    v[3:0] <= a[3:0];
    v[7:4] <= a[7:4];
  end
  assign y = v;
endmodule
""", "m")
        assert NB_RACE not in kinds_of(report)


class TestDeadBranch:
    def test_constant_if_condition(self):
        report = analyze_source("""
module m #(parameter W = 4) (input clk, input [3:0] a, output [3:0] y);
  reg [3:0] v;
  always @(posedge clk) begin
    if (W == 8)
      v <= a;
    else
      v <= ~a;
  end
  assign y = v;
endmodule
""", "m")
        dead = [d for d in report.diagnostics if d.kind == DEAD_BRANCH]
        assert len(dead) == 1
        assert "then-branch is unreachable" in dead[0].message

    def test_duplicate_case_labels(self):
        report = analyze_source("""
module m(input clk, input [1:0] sel, input [3:0] a, output [3:0] y);
  reg [3:0] v;
  always @(posedge clk) begin
    case (sel)
      2'd0: v <= a;
      2'd0: v <= ~a;
      default: v <= 4'd0;
    endcase
  end
  assign y = v;
endmodule
""", "m")
        dead = [d for d in report.diagnostics if d.kind == DEAD_BRANCH]
        assert len(dead) == 1
        assert "already matched" in dead[0].message

    def test_clean_design_has_no_findings(self):
        report = analyze_source(COUNTER_SRC, "top")
        assert report.diagnostics == []


VR_OOB_SRC = """
module m (
  input clk,
  input [7:0] a,
  output [7:0] y
);
  wire [3:0] idx;
  wire [7:0] mem_out;
  reg [7:0] store [0:7];
  assign idx = {2'd2, a[1:0]};
  assign mem_out = store[idx];
  assign y = mem_out;
endmodule
"""

VR_PROVED_SRC = """
module m (
  input clk,
  input [7:0] a,
  output [7:0] y,
  output [7:0] w
);
  wire [7:0] b;
  assign b = a & 8'h0F;
  assign y = (b < 8'd16) ? b : 8'd0;
  always @(*) begin
    case (b)
      8'd200: w = 8'd1;
      default: w = 8'd0;
    endcase
  end
endmodule
"""

VR_TRUNC_SRC = """
module m (
  input clk,
  input [7:0] a,
  output [1:0] z
);
  wire [7:0] big;
  assign big = (a & 8'h07) + 8'd9;
  assign z = big[7:0];
endmodule
"""


class TestValueRangeCheck:
    def test_provable_oob_memory_index_is_an_error(self):
        report = analyze_source(VR_OOB_SRC, "m")
        oob = [d for d in report.diagnostics if d.kind == OOB_INDEX]
        assert len(oob) == 1
        assert oob[0].severity == SEVERITY_ERROR
        assert "'store'" in oob[0].message
        assert ">= bound 8" in oob[0].message
        # The derivation chain walks back to the module input.
        assert oob[0].notes
        assert any("idx" in note for note in oob[0].notes)
        assert any("module input" in note for note in oob[0].notes)

    def test_in_bounds_dynamic_index_is_quiet(self):
        quiet = VR_OOB_SRC.replace("{2'd2, a[1:0]}", "{2'd1, a[1:0]}")
        report = analyze_source(quiet, "m")
        assert OOB_INDEX not in kinds_of(report)

    def test_provably_true_condition_and_dead_arm(self):
        report = analyze_source(VR_PROVED_SRC, "m")
        proved = [d for d in report.diagnostics
                  if d.kind == PROVED_CONDITION]
        assert len(proved) == 1
        assert "always true" in proved[0].message
        arms = [d for d in report.diagnostics if d.kind == UNREACHABLE_ARM]
        assert len(arms) == 1
        assert "provably unmatchable" in arms[0].message

    def test_provable_truncation_loss(self):
        report = analyze_source(VR_TRUNC_SRC, "m")
        lossy = [d for d in report.diagnostics if d.kind == TRUNC_LOSS]
        assert len(lossy) == 1
        assert "'z'" in lossy[0].message
        # explain() renders the chain indented under the finding.
        rendered = lossy[0].explain()
        assert rendered.startswith(f"[{TRUNC_LOSS}]")
        assert "\n    " in rendered

    def test_input_driven_condition_is_quiet(self):
        report = analyze_source("""
module m(input [7:0] a, output [7:0] y);
  assign y = (a < 8'd16) ? a : 8'd0;
endmodule
""", "m")
        assert PROVED_CONDITION not in kinds_of(report)

    def test_counter_design_stays_clean(self):
        report = analyze_source(COUNTER_SRC, "top")
        assert report.diagnostics == []

    def test_notes_survive_json_roundtrip(self):
        report = analyze_source(VR_OOB_SRC, "m")
        oob = next(d for d in report.diagnostics if d.kind == OOB_INDEX)
        data = oob.to_json()
        assert data["notes"] == list(oob.notes)

    def test_parent_edit_changing_facts_reanalyzes_child(self):
        # Cross-module flow: the child's findings depend on the value
        # the parent feeds it, so a parent-side edit must re-analyze
        # the child even though the child's fingerprint is unchanged.
        parent = """
module child(input [7:0] v, output [7:0] y);
  reg [7:0] store [0:7];
  assign y = store[v[3:0]];
endmodule

module m(input clk, input [7:0] a, output [7:0] out);
  wire [7:0] fed;
  assign fed = a & 8'h07;
  child u0 (.v(fed), .y(out));
endmodule
"""
        session = LiveSession(parent)
        session.inst_pipe("p0", session.stage_handle_for("m"))
        first = session.lint("p0")
        assert OOB_INDEX not in [d.kind for d in first.diagnostics]
        edited = parent.replace("a & 8'h07", "(a & 8'h07) + 8'd8")
        # The proof lands in *child* (unedited) and, being error-class,
        # the gate blocks the swap outright.
        with pytest.raises(GateBlockedError) as excinfo:
            session.apply_change(edited)
        blocked = excinfo.value.diagnostics
        assert any(
            d.kind == OOB_INDEX and d.module == "child" for d in blocked
        )


# ---------------------------------------------------------------------------
# Analyzer cache
# ---------------------------------------------------------------------------


class TestAnalyzerCache:
    def test_uncached_without_fingerprints(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        analyzer = Analyzer()
        analyzer.analyze_netlist(netlist)
        assert analyzer.cache_size() == 0

    def test_noop_reanalysis_reuses_everything(self):
        session = LiveSession(COUNTER_SRC)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        first = session.lint("p0")
        assert first.reused_keys  # inst_pipe seeded the cache
        second = session.lint("p0")
        assert second.analyzed_keys == []
        assert sorted(second.reused_keys) == sorted(
            first.analyzed_keys + first.reused_keys
        )

    def test_single_module_edit_reanalyzes_only_that_module(self):
        session = LiveSession(COUNTER_SRC)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        edited = COUNTER_SRC.replace("assign sum = a + b;",
                                     "assign sum = a + b + 8'd1;")
        report = session.apply_change(edited)
        # adder's body changed; its comb signature (per-output deps)
        # did not, so top/counter reuse their cached analyses.
        assert [k.split("#")[0] for k in report.analyzed_keys] == ["adder"]
        assert len(report.analysis_reused_keys) >= 2

    def test_evict_stale_bounds_generations(self):
        session = LiveSession(COUNTER_SRC)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        analyzer = session.analyzer
        source = COUNTER_SRC
        for step in range(6):
            source = source.replace(
                "assign sum = a + b", "assign sum = a + b + 8'd1 - 8'd1",
            ) if step % 2 == 0 else source.replace(
                "assign sum = a + b + 8'd1 - 8'd1", "assign sum = a + b",
            )
            session.apply_change(source)
        before = analyzer.cache_size()
        evicted = analyzer.evict_stale(keep_generations=1)
        assert evicted > 0
        assert analyzer.cache_size() == before - evicted


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------

LOOPY = COUNTER_SRC.replace(
    "  counter #(.W(8)) u1",
    "  wire [7:0] fb;\n"
    "  assign fb = fb & c0;\n"
    "  counter #(.W(8)) u1",
)


def make_session():
    session = LiveSession(COUNTER_SRC, checkpoint_interval=10)
    session.inst_pipe("p0", session.stage_handle_for("top"))
    tb = session.load_testbench(hold_inputs(rst=0))
    return session, tb


class TestGatePolicyUnit:
    def _err(self, message="boom"):
        return Diagnostic(COMB_LOOP, "m", message, 3, SEVERITY_ERROR)

    def test_new_error_blocks(self):
        decision = evaluate_gate(GatePolicy(), [], [self._err()])
        assert not decision.allowed
        with pytest.raises(GateBlockedError, match="boom"):
            decision.raise_if_blocked()

    def test_preexisting_finding_does_not_block(self):
        diag = self._err()
        decision = evaluate_gate(GatePolicy(), [diag], [diag])
        assert decision.allowed and decision.new_findings == []

    def test_override_lets_it_through(self):
        decision = evaluate_gate(
            GatePolicy(), [], [self._err()], override=True
        )
        assert decision.allowed and decision.overridden
        assert decision.blocking  # recorded even though allowed

    def test_allow_kinds_exempts(self):
        policy = GatePolicy(allow_kinds=frozenset({COMB_LOOP}))
        decision = evaluate_gate(policy, [], [self._err()])
        assert decision.allowed

    def test_block_kinds_escalates_warnings(self):
        diag = Diagnostic(LATCH, "m", "latchy", 3, "warning")
        policy = GatePolicy(block_kinds=frozenset({LATCH}))
        assert not evaluate_gate(policy, [], [diag]).allowed

    def test_disabled_gate_observes_only(self):
        policy = GatePolicy(enabled=False)
        decision = evaluate_gate(policy, [], [self._err()])
        assert decision.allowed and decision.new_findings


class TestGateLive:
    def test_comb_loop_reload_blocked_and_rolled_back(self):
        session, tb = make_session()
        session.run(tb, "p0", 30)
        with pytest.raises(GateBlockedError) as excinfo:
            session.apply_change(LOOPY)
        # The error names the cycle path and the override escape hatch.
        assert "comb-loop" in str(excinfo.value)
        assert "fb" in str(excinfo.value)
        assert "override" in str(excinfo.value)
        assert excinfo.value.diagnostics[0].path  # full path attached
        # Transactional: source and simulation state are untouched.
        assert session.compiler.source == COUNTER_SRC
        assert session.version == "1.0"
        assert session.pipe("p0").cycle == 30
        session.run(tb, "p0", 5)
        assert session.peek("p0")["c0"] == 35

    def test_override_forces_the_swap_and_rebaselines(self):
        session, tb = make_session()
        session.run(tb, "p0", 30)
        report = session.apply_change(LOOPY, override_gate=True)
        assert report.gate_overridden
        assert any(d.kind == COMB_LOOP for d in report.new_findings)
        assert session.compiler.source == LOOPY
        # The accepted loop is now baseline: further edits elsewhere
        # are not re-blocked by it.
        edited = LOOPY.replace("assign sum = a + b;",
                               "assign sum = a + b + 8'd1;")
        report = session.apply_change(edited)
        assert not report.gate_overridden
        assert all(d.kind != COMB_LOOP for d in report.new_findings)

    def test_preexisting_loop_does_not_wedge_edits(self):
        session = LiveSession(LOOPY)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        edited = LOOPY.replace("assign sum = a + b;",
                               "assign sum = a + b + 8'd1;")
        report = session.apply_change(edited)  # must not raise
        assert report.behavioral

    def test_disabled_policy_never_blocks(self):
        session = LiveSession(
            COUNTER_SRC, gate_policy=GatePolicy(enabled=False)
        )
        session.inst_pipe("p0", session.stage_handle_for("top"))
        report = session.apply_change(LOOPY)
        assert any(d.kind == COMB_LOOP for d in report.new_findings)

    def test_erd_report_carries_analysis_accounting(self):
        session, tb = make_session()
        edited = COUNTER_SRC.replace("assign sum = a + b;",
                                     "assign sum = a + b + 8'd1;")
        report = session.apply_change(edited)
        assert report.analyze_seconds >= 0.0
        assert report.analyzed_keys and report.analysis_reused_keys
        assert report.diagnostics == [] and report.new_findings == []


# ---------------------------------------------------------------------------
# Line attribution through incremental edits
# ---------------------------------------------------------------------------


class TestLineAttribution:
    def test_incremental_region_reparse_keeps_absolute_lines(self):
        session = LiveSession(COUNTER_SRC)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        # Introduce a latch inside counter (the second module): the
        # edit is region-local, so the incremental path re-parses just
        # that region — lines must still be file-absolute.
        edited = COUNTER_SRC.replace(
            "  assign count = count_q;",
            "  reg [W-1:0] shadow;\n"
            "  always @(*) begin\n"
            "    if (rst)\n"
            "      shadow = count_q;\n"
            "  end\n"
            "  assign count = count_q;",
        )
        report = session.apply_change(edited)
        latches = [d for d in report.new_findings if d.kind == LATCH]
        assert len(latches) == 1
        lines = edited.splitlines()
        assert latches[0].line > 0
        assert "shadow = count_q;" in lines[latches[0].line - 1]

    def test_module_ast_lines_match_file_after_incremental_edit(self):
        from repro.live.compiler_live import LiveCompiler

        compiler = LiveCompiler(COUNTER_SRC)
        before = compiler.design.modules["counter"].always_blocks[0].line
        edited = COUNTER_SRC.replace("count_q <= next;",
                                     "count_q <= next + 8'd0;")
        result = compiler.update_source(edited)
        assert result.changed_modules == {"counter"}
        after = compiler.design.modules["counter"].always_blocks[0].line
        assert after == before  # absolute, not region-relative


# ---------------------------------------------------------------------------
# CLI + repro.analyze/v1 reports
# ---------------------------------------------------------------------------


class TestCli:
    def _write_designs(self, tmp_path):
        clean = tmp_path / "clean.v"
        clean.write_text(COUNTER_SRC)
        racy = tmp_path / "racy.v"
        racy.write_text(RACE_SRC)
        return clean, racy

    def test_report_schema_and_exit_zero(self, tmp_path, capsys):
        clean, racy = self._write_designs(tmp_path)
        out = tmp_path / "report.json"
        code = analyze_main(
            [str(clean), str(racy), "--json", str(out), "--quiet"]
        )
        assert code == 0
        report = load_report(str(out))
        assert report["schema"] == "repro.analyze/v1"
        entries = {e["design"]: e for e in report["designs"]}
        assert len(entries) == 2
        racy_entry = next(
            e for d, e in entries.items() if d.endswith("racy.v")
        )
        assert racy_entry["counts"]["error"] == 2  # nb-race + multi-driver
        assert {f["kind"] for f in racy_entry["findings"]} == {
            NB_RACE, MULTI_DRIVER,
        }

    def test_baseline_match_and_mismatch(self, tmp_path, capsys):
        clean, racy = self._write_designs(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert analyze_main(
            [str(clean), str(racy), "--json", str(baseline), "--quiet"]
        ) == 0
        # Identical run: baseline matches, exit 0.
        assert analyze_main(
            [str(clean), str(racy), "--baseline", str(baseline), "--quiet"]
        ) == 0
        # A fixed design makes findings disappear: exit 2.
        racy.write_text(COUNTER_SRC.replace("module top",
                                            "module other_top"))
        code = analyze_main(
            [str(clean), str(racy), "--baseline", str(baseline), "--quiet"]
        )
        assert code == 2
        assert "disappeared" in capsys.readouterr().out

    def test_fail_on_error(self, tmp_path):
        _, racy = self._write_designs(tmp_path)
        assert analyze_main([str(racy), "--quiet"]) == 0
        assert analyze_main([str(racy), "--quiet", "--fail-on-error"]) == 3

    def test_explain_appends_derivation_chain(self, tmp_path, capsys):
        oob = tmp_path / "oob.v"
        oob.write_text(VR_OOB_SRC)
        assert analyze_main([str(oob), "--top", "m"]) == 0
        plain = capsys.readouterr().out
        assert "oob-index" in plain
        assert "module input" not in plain  # chain only under --explain
        assert analyze_main([str(oob), "--top", "m", "--explain"]) == 0
        explained = capsys.readouterr().out
        assert "module input" in explained

    def test_explain_lines_are_pre_opt_at_every_level(
        self, tmp_path, capsys
    ):
        # Satellite regression: under --opt full the findings AND the
        # --explain derivation chains must cite pre-optimization
        # source lines — byte-identical output across levels.
        oob = tmp_path / "oob.v"
        oob.write_text(VR_OOB_SRC)
        outputs = {}
        for level in ("none", "basic", "full"):
            assert analyze_main(
                [str(oob), "--top", "m", "--explain", "--opt", level]
            ) == 0
            outputs[level] = capsys.readouterr().out
        assert outputs["none"] == outputs["basic"] == outputs["full"]
        lines = VR_OOB_SRC.splitlines()
        import re

        chain = re.search(r"idx .*\(line (\d+), assign\)",
                          outputs["full"])
        assert chain is not None
        assert "assign idx" in lines[int(chain.group(1)) - 1]

    def test_bad_design_is_a_toolchain_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.v"
        bad.write_text("module broken(input clk;\n")
        assert analyze_main([str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_diff_reports_identities_ignore_lines(self):
        base = {
            "schema": "repro.analyze/v1",
            "designs": [{
                "design": "d.v",
                "findings": [
                    {"kind": LATCH, "module": "m", "message": "x", "line": 4},
                ],
            }],
        }
        moved = json.loads(json.dumps(base))
        moved["designs"][0]["findings"][0]["line"] = 40
        new, missing = diff_reports(base, moved)
        assert new == [] and missing == []


# ---------------------------------------------------------------------------
# Command + server surfaces
# ---------------------------------------------------------------------------


class TestSurfaces:
    def test_lint_command_via_interpreter(self):
        from repro.live.commands import CommandInterpreter

        session, _ = make_session()
        interp = CommandInterpreter(session)
        result = interp.execute("lint p0")
        assert result.value.diagnostics == []
        assert result.value.reused_keys

    def test_summarize_analysis_report(self):
        from repro.server.service import summarize

        session, _ = make_session()
        wire = summarize(session.lint("p0"))
        assert wire["_type"] == "AnalysisReport"
        assert wire["findings"] == []
        assert wire["counts"] == {"error": 0, "warning": 0, "info": 0}
