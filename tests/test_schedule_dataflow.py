"""Scheduler and dataflow analysis tests: ordering, per-output deps,
early binding, fixpoint detection."""

import pytest

from repro import compile_design
from repro.hdl import elaborate, parse
from repro.hdl.errors import ConvergenceError
from repro.sim import Pipe


def elab(source, top="m"):
    return elaborate(parse(source), top)


class TestCombScheduling:
    def test_assigns_ordered_by_dependency(self):
        ir = elab("""
module m (input [7:0] a, output [7:0] y);
  wire [7:0] t2;
  wire [7:0] t1;
  assign y = t2 + 1;
  assign t2 = t1 + 1;
  assign t1 = a + 1;
endmodule
""").top_module
        order = [ir.comb_assigns[i].defines for kind, i in ir.schedule
                 if kind == "assign"]
        assert order.index("t1") < order.index("t2") < order.index("y")
        assert not ir.needs_fixpoint

    def test_true_comb_loop_marks_fixpoint(self):
        ir = elab("""
module m (input [7:0] a, output [7:0] y);
  wire [7:0] p;
  wire [7:0] q;
  assign p = q & a;
  assign q = p | 8'd1;
  assign y = q;
endmodule
""").top_module
        assert ir.needs_fixpoint

    def test_registers_break_ordering_constraints(self):
        ir = elab("""
module m (input clk, output [7:0] y);
  reg [7:0] q;
  wire [7:0] nxt;
  assign nxt = q + 1;
  assign y = q;
  always @(posedge clk) q <= nxt;
endmodule
""").top_module
        assert not ir.needs_fixpoint


class TestOutputDeps:
    def test_comb_passthrough_depends_on_input(self):
        ir = elab("""
module m (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a + 1;
endmodule
""").top_module
        assert ir.output_deps["y"] == {"a"}
        assert ir.comb_inputs == {"a"}

    def test_registered_output_depends_on_nothing(self):
        ir = elab("""
module m (input clk, input [7:0] d, output [7:0] q);
  reg [7:0] q;
  always @(posedge clk) q <= d;
endmodule
""").top_module
        assert ir.output_deps["q"] == set()
        assert ir.comb_inputs == set()

    def test_assign_from_register_depends_on_nothing(self):
        ir = elab("""
module m (input clk, input [7:0] d, output [7:0] q);
  reg [7:0] q_r;
  assign q = q_r;
  always @(posedge clk) q_r <= d;
endmodule
""").top_module
        assert ir.output_deps["q"] == set()

    def test_per_output_precision(self):
        """A memory-like unit: read data depends on the address, not on
        the write data — per-output deps must distinguish."""
        ir = elab("""
module m (input clk, input [3:0] raddr, input [7:0] wdata,
          input we, output [7:0] rdata, output busy);
  reg [7:0] mem [0:15];
  reg busy_r;
  assign rdata = mem[raddr];
  assign busy = busy_r;
  always @(posedge clk) begin
    if (we) mem[raddr] <= wdata;
    busy_r <= we;
  end
endmodule
""").top_module
        assert ir.output_deps["rdata"] == {"raddr"}
        assert ir.output_deps["busy"] == set()

    def test_deps_propagate_through_children(self):
        ir = elab("""
module inner (input [7:0] p, input [7:0] q, output [7:0] r);
  assign r = p + 1;
endmodule
module m (input [7:0] a, input [7:0] b, output [7:0] y);
  inner u (.p(a), .q(b), .r(y));
endmodule
""").top_module
        assert ir.output_deps["y"] == {"a"}


class TestEarlyBinding:
    RING = """
module stop (input clk, input rst, input in_v, input [7:0] in_d,
             output out_v, output [7:0] out_d, output seen);
  reg v_r;
  reg [7:0] d_r;
  assign out_v = v_r;
  assign out_d = d_r;
  assign seen = in_v;
  always @(posedge clk) begin
    if (rst) v_r <= 0;
    else begin
      v_r <= in_v;
      d_r <= in_d + 1;
    end
  end
endmodule

module m (input clk, input rst, output [7:0] y, output any);
  wire v0;
  wire v1;
  wire [7:0] d0;
  wire [7:0] d1;
  wire s0;
  wire s1;
  stop a (.clk(clk), .rst(rst), .in_v(v1), .in_d(d1),
          .out_v(v0), .out_d(d0), .seen(s0));
  stop b (.clk(clk), .rst(rst), .in_v(v0), .in_d(d0),
          .out_v(v1), .out_d(d1), .seen(s1));
  assign y = d0;
  assign any = s0 | s1;
endmodule
"""

    def test_ring_resolves_without_fixpoint(self):
        ir = elab(self.RING).top_module
        assert not ir.needs_fixpoint
        assert ir.early_bind  # the cycle was broken by early binding

    def test_ring_simulates_correctly(self):
        netlist, library = compile_design(self.RING, "m")
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=1)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        pipe.step(6)
        # Data increments by one per hop, two hops per lap.
        assert pipe.outputs()["y"] == 6

    def test_one_stop_ring(self):
        source = """
module stop (input clk, input rst, input in_v, output out_v);
  reg v_r;
  assign out_v = v_r;
  always @(posedge clk) v_r <= rst ? 1'b1 : in_v;
endmodule
module m (input clk, input rst, output y);
  wire v;
  stop a (.clk(clk), .rst(rst), .in_v(v), .out_v(v));
  assign y = v;
endmodule
"""
        netlist, library = compile_design(source, "m")
        ir = netlist.top_module
        assert not ir.needs_fixpoint
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=1)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        pipe.step(3)
        assert pipe.outputs()["y"] == 1  # the token keeps circulating


class TestFixpointRuntime:
    def test_convergent_loop_settles(self):
        # q = p | 1; p = q & a — settles in a couple of passes.
        netlist, library = compile_design("""
module m (input [7:0] a, output [7:0] y);
  wire [7:0] p;
  wire [7:0] q;
  assign p = q & a;
  assign q = p | 8'd1;
  assign y = q;
endmodule
""", "m")
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(a=0xFF)
        assert pipe.eval()["y"] == 1

    def test_oscillating_loop_raises(self):
        netlist, library = compile_design("""
module m (input a, output y);
  wire p;
  assign p = !p | a & !a;
  assign y = p;
endmodule
""", "m")
        pipe = Pipe(netlist.top, library, max_passes=8)
        pipe.set_inputs(a=0)
        with pytest.raises(ConvergenceError):
            pipe.eval()


class TestPGASScheduling:
    def test_pgas_core_is_schedulable(self, pgas1_netlist_library):
        _, netlist, _ = pgas1_netlist_library
        assert not any(m.needs_fixpoint for m in netlist.modules.values())

    def test_core_outputs_have_no_comb_inputs(self, pgas1_netlist_library):
        _, netlist, _ = pgas1_netlist_library
        core = netlist.modules["rv_core"]
        # Every rv_core output is register-sourced (pipeline discipline).
        assert core.comb_inputs == set()

    def test_mesh_ring_early_bound(self, pgas2_netlist_library):
        _, netlist, _ = pgas2_netlist_library
        top = netlist.top_module
        assert top.early_bind
        assert not top.needs_fixpoint
