"""Regression-suite and Table I command-interpreter tests."""

import pytest

from repro.live.commands import CommandError, CommandInterpreter
from repro.live.regression import RegressionSuite
from repro.live.session import LiveSession
from repro.sim.testbench import hold_inputs
from tests.conftest import COUNTER_SRC

BUGGY = COUNTER_SRC.replace("assign sum = a + b;", "assign sum = a + b + 8'd1;")


def make_session(interval=10):
    session = LiveSession(COUNTER_SRC, checkpoint_interval=interval)
    session.inst_pipe("p0", session.stage_handle_for("top"))
    tb = session.load_testbench(hold_inputs(rst=0))
    return session, tb


class TestRegressionSuite:
    def _suite(self):
        session, tb_handle = make_session()
        session.run(tb_handle, "p0", 40)
        suite = RegressionSuite(session, "p0")
        tb = hold_inputs(rst=0)
        suite.add(
            "counts-from-reset", tb, cycles=10,
            check=lambda p: p.outputs()["c0"] == 10,
            start=None,
            description="from power-on, c0 counts one per cycle",
        )
        suite.add(
            "progresses-from-checkpoint", tb, cycles=5,
            check=lambda p: p.outputs()["c0"] == 25,
            start=20,
            description="from the cycle-20 checkpoint, 5 more cycles",
        )
        suite.add(
            "triple-rate", tb, cycles=7,
            check=lambda p: p.outputs()["c1"] == 3 * p.outputs()["c0"],
            start=None,
        )
        return session, tb_handle, suite

    def test_all_pass_on_good_design(self):
        session, _, suite = self._suite()
        report = suite.run()
        assert report.passed, report.summary()
        assert len(report.results) == 3
        assert report.design_version == session.version

    def test_live_pipe_undisturbed(self):
        session, _, suite = self._suite()
        before = session.pipe("p0").outputs()
        cycle_before = session.pipe("p0").cycle
        suite.run()
        assert session.pipe("p0").outputs() == before
        assert session.pipe("p0").cycle == cycle_before

    def test_catches_regression_after_hot_reload(self):
        """The paper's workflow: hot-patch the design, re-run the batch."""
        session, _, suite = self._suite()
        assert suite.run().passed
        session.apply_change(BUGGY)  # adder now adds an extra +1
        report = suite.run()
        assert not report.passed
        failed = {r.name for r in report.failures}
        assert "counts-from-reset" in failed
        assert report.design_version == session.version

    def test_selective_run(self):
        _, _, suite = self._suite()
        report = suite.run(names=["triple-rate"])
        assert [r.name for r in report.results] == ["triple-rate"]

    def test_crashing_check_is_a_failure(self):
        session, tb_handle, suite = self._suite()
        suite.add(
            "explodes", hold_inputs(rst=0), cycles=1,
            check=lambda p: 1 / 0,
        )
        report = suite.run(names=["explodes"])
        assert not report.passed
        assert "ZeroDivisionError" in report.results[0].error

    def test_missing_checkpoint_start_fails_cleanly(self):
        session, tb_handle = make_session(interval=1000)  # no checkpoints
        suite = RegressionSuite(session, "p0")
        suite.add("needs-cp", hold_inputs(rst=0), cycles=1,
                  check=lambda p: True, start=500)
        report = suite.run()
        assert not report.passed
        assert "no checkpoint" in report.results[0].error

    def test_duplicate_case_rejected(self):
        _, _, suite = self._suite()
        from repro.hdl.errors import SimulationError

        with pytest.raises(SimulationError):
            suite.add("triple-rate", hold_inputs(rst=0), 1, lambda p: True)

    def test_summary_renders(self):
        _, _, suite = self._suite()
        text = suite.run().summary()
        assert "PASS" in text
        assert "counts-from-reset" in text


class TestCommandInterpreter:
    def _interp(self, files=None):
        session, tb_handle = make_session()
        interp = CommandInterpreter(
            session, read_file=(files or {}).__getitem__
        )
        return session, tb_handle, interp

    def test_parse_splits_verb_and_operands(self):
        verb, ops = CommandInterpreter.parse("run tb0, p0, 1000")
        assert verb == "run"
        assert ops == ["tb0", "p0", "1000"]

    def test_parse_strips_comments(self):
        verb, ops = CommandInterpreter.parse("chkp p0  # snapshot now")
        assert (verb, ops) == ("chkp", ["p0"])

    def test_run_command(self):
        session, tb_handle, interp = self._interp()
        result = interp.execute(f"run {tb_handle}, p0, 25")
        assert result.value["c0"] == 25
        assert session.pipe("p0").cycle == 25

    def test_chkp_and_ldch_roundtrip(self, tmp_path):
        session, tb_handle, interp = self._interp()
        interp.execute(f"run {tb_handle}, p0, 15")
        path = str(tmp_path / "cp.pkl")
        interp.execute(f"chkp p0, {path}")
        interp.execute(f"run {tb_handle}, p0, 10")
        interp.execute(f"ldch p0, {path}")
        assert session.pipe("p0").cycle == 15

    def test_copy_pipe_command(self):
        session, tb_handle, interp = self._interp()
        interp.execute(f"run {tb_handle}, p0, 5")
        interp.execute("copyPipe p1, p0")
        assert session.pipe("p1").outputs()["c0"] == 5

    def test_ldlib_bad_path_is_a_command_error(self):
        # The default file reader's OSError must surface as a
        # CommandError (a user typo must not crash a server
        # connection), with the offending path in the message.
        session, _, _ = self._interp()
        interp = CommandInterpreter(session)
        with pytest.raises(CommandError, match="/no/such/lib.v"):
            interp.execute("ldLib extra, /no/such/lib.v")

    def test_ldlib_command_reads_file(self):
        files = {"/libs/extra.v": """
module widget (input clk, output y);
  assign y = 1'b1;
endmodule
"""}
        session, _, interp = self._interp(files)
        result = interp.execute("ldLib extra, /libs/extra.v")
        assert result.value  # new handles registered
        session.inst_pipe("w0", session.stage_handle_for("widget"))

    def test_inst_pipe_command(self):
        session, _, interp = self._interp()
        handle = session.stage_handle_for("counter")
        interp.execute(f"instPipe c0, {handle}")
        assert "c0" in session.pipelines

    def test_inst_stage_command(self):
        session, _, interp = self._interp()
        handle = session.stage_handle_for("adder")
        interp.execute(f"instStage p0, u0.u_add, {handle}")
        assert session.stages.handle_of("p0", "u0.u_add") == handle

    def test_swap_stage_command(self):
        session, tb_handle, interp = self._interp()
        interp.execute(f"run {tb_handle}, p0, 8")
        session.compiler.update_source(BUGGY)
        result = interp.execute("swapStage p0, u0.u_add")
        assert result.value.swapped_instances == 1

    def test_script_runs_batch(self):
        session, tb_handle, interp = self._interp()
        results = interp.script(f"""
# boot and snapshot
run {tb_handle}, p0, 12
chkp p0
copyPipe scratch, p0
""")
        assert [r.command for r in results] == ["run", "chkp", "copyPipe"]
        assert session.pipe("scratch").cycle == 12

    def test_unknown_command_rejected(self):
        _, _, interp = self._interp()
        with pytest.raises(CommandError, match="unknown command"):
            interp.execute("teleport p0")

    def test_bad_arity_rejected(self):
        _, _, interp = self._interp()
        with pytest.raises(CommandError, match="usage"):
            interp.execute("copyPipe p1")

    def test_bad_cycle_count_rejected(self):
        _, tb_handle, interp = self._interp()
        with pytest.raises(CommandError, match="integer"):
            interp.execute(f"run {tb_handle}, p0, soon")

    def test_simulation_errors_become_command_errors(self):
        _, tb_handle, interp = self._interp()
        with pytest.raises(CommandError, match="unknown pipeline"):
            interp.execute(f"run {tb_handle}, ghost, 5")
