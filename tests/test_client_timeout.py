"""Client framing under a stalling server: a read timeout between
frames is recoverable, a timeout mid-frame poisons the connection
(the buffered partial line would desynchronize every later read)."""

import json
import socket
import threading

import pytest

from repro.server.client import LiveSimClient, ReadTimeout


class StallingServer:
    """Scripted fake server: one behavior list per accepted connection.

    Each request on a connection consumes that connection's next
    behavior:
      "ok"     — answer it properly;
      "silent" — send nothing (a between-frames stall);
      "half"   — send part of a response line, no newline, then stall.
    """

    def __init__(self, connections):
        self.connections = [list(b) for b in connections]
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(len(self.connections))
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._conns = []

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        for sock in self._conns + [self._listener]:
            try:
                sock.close()
            except OSError:
                pass
        self._thread.join(timeout=5.0)
        return False

    def _serve(self):
        try:
            for behaviors in self.connections:
                conn, _ = self._listener.accept()
                self._conns.append(conn)
                self._serve_one(conn, behaviors)
        except OSError:
            pass

    @staticmethod
    def _serve_one(conn, behaviors):
        buf = b""
        for behavior in behaviors:
            while b"\n" not in buf:
                chunk = conn.recv(65536)
                if not chunk:
                    return
                buf += chunk
            line, buf = buf.split(b"\n", 1)
            request = json.loads(line)
            if behavior == "ok":
                response = json.dumps({
                    "id": request["id"], "ok": True,
                    "value": {"pong": True},
                })
                conn.sendall(response.encode() + b"\n")
            elif behavior == "half":
                partial = json.dumps({
                    "id": request["id"], "ok": True,
                })
                # No newline: the frame never completes.
                conn.sendall(partial[:-1].encode())
            # "silent": send nothing at all.


def test_between_frame_timeout_is_recoverable():
    with StallingServer([["silent", "ok"]]) as server:
        with LiveSimClient(*server.address, read_timeout=0.3) as client:
            with pytest.raises(ReadTimeout, match="no data"):
                client.ping()
            assert client.broken is False
            # The connection still works: the next request's reply is
            # matched by id (the stalled one never produced bytes).
            assert client.ping() == {"pong": True}


def test_midframe_timeout_marks_client_broken():
    with StallingServer([["half"]]) as server:
        with LiveSimClient(*server.address, read_timeout=0.3) as client:
            with pytest.raises(ReadTimeout, match="mid-frame"):
                client.ping()
            assert client.broken is True
            # Every later request refuses to reuse the stream rather
            # than decoding garbage from the middle of the stale frame.
            with pytest.raises(ConnectionError, match="fresh"):
                client.ping()


def test_broken_client_demands_reconnect_not_retry():
    with StallingServer([["half"], ["ok"]]) as server:
        with LiveSimClient(*server.address, read_timeout=0.3) as client:
            with pytest.raises(ReadTimeout):
                client.ping()
            assert client.broken is True
        # A fresh connection to the same server works (the second
        # behavior answers properly).
        with LiveSimClient(*server.address, read_timeout=5.0) as fresh:
            assert fresh.ping() == {"pong": True}
