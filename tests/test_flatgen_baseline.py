"""Flattening compiler and baseline tests: equivalence with the
shared-module compiler, budget handling, replication counts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_design
from repro.baseline import BaselineCompiler
from repro.codegen.flatgen import compile_flat
from repro.hdl import elaborate, parse
from repro.hdl.errors import CompileBudgetExceeded
from repro.sim import Pipe
from tests.conftest import COUNTER_SRC


def build_three_ways(source, top):
    """Compile with pygen, flat-inline, and replicate; return pipes."""
    netlist, library = compile_design(source, top)
    shared = Pipe(netlist.top, library, name="shared")

    netlist2 = elaborate(parse(source), top)
    flat = compile_flat(netlist2)
    inline = Pipe(flat.key, {flat.key: flat}, name="inline")

    replicated = BaselineCompiler(mode="replicate").compile(netlist2).make_pipe()
    return shared, inline, replicated


class TestEquivalence:
    def test_counter_equivalence(self):
        pipes = build_three_ways(COUNTER_SRC, "top")
        for pipe in pipes:
            pipe.set_inputs(rst=1)
            pipe.step(1)
            pipe.set_inputs(rst=0)
            pipe.step(17)
        outs = [pipe.outputs() for pipe in pipes]
        assert outs[0] == outs[1] == outs[2] == {"c0": 17, "c1": 51}

    @given(stimulus=st.lists(st.booleans(), min_size=1, max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_random_reset_sequences_agree(self, stimulus):
        pipes = build_three_ways(COUNTER_SRC, "top")
        for rst in stimulus:
            for pipe in pipes:
                pipe.set_inputs(rst=int(rst))
                pipe.step(1)
        outs = [pipe.outputs() for pipe in pipes]
        assert outs[0] == outs[1] == outs[2]

    def test_memory_design_equivalence(self):
        source = """
module store (input clk, input we, input [3:0] a, input [7:0] d,
              output [7:0] q);
  reg [7:0] mem [0:15];
  assign q = mem[a];
  always @(posedge clk) begin
    if (we) mem[a] <= d;
  end
endmodule
module m (input clk, input we, input [3:0] a, input [7:0] d,
          output [7:0] q);
  store u (.clk(clk), .we(we), .a(a), .d(d), .q(q));
endmodule
"""
        pipes = build_three_ways(source, "m")
        for pipe in pipes:
            for addr, data in ((1, 10), (5, 50), (1, 11)):
                pipe.set_inputs(we=1, a=addr, d=data)
                pipe.step(1)
            pipe.set_inputs(we=0, a=1)
        assert {p.eval()["q"] for p in pipes} == {11}

    def test_flat_pgas_node_matches_shared(self, pgas1_netlist_library):
        from repro.riscv import assemble

        source, netlist, library = pgas1_netlist_library
        prog = assemble("""
    li t0, 7
    li t1, 6
    add t2, t0, t1
    sd t2, 0x200(zero)
    ecall
""")
        flat = compile_flat(elaborate(parse(source), "pgas_mesh_1x1"))
        shared = Pipe(netlist.top, library)
        inline = Pipe(flat.key, {flat.key: flat})

        words = prog.as_mem64(4096)
        shared.find("n_0.u_mem").write_memory("mem", 0, words)
        spec = flat.mem_specs["n_0.u_mem.mem"]
        inline.top.state[spec.slot][0 : len(words)] = words
        inline.invalidate()

        for pipe in (shared, inline):
            pipe.set_inputs(rst=1)
            pipe.step(2)
            pipe.set_inputs(rst=0)
            pipe.step(40)
        assert shared.outputs() == inline.outputs()
        assert shared.outputs()["all_halted"] == 1
        got_shared = shared.find("n_0.u_mem").memory("mem")[0x200 // 8]
        got_inline = inline.top.state[spec.slot][0x200 // 8]
        assert got_shared == got_inline == 13


class TestReplication:
    def test_replicate_compiles_per_instance(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        result = BaselineCompiler(mode="replicate").compile(netlist)
        # top + 2 counters + 2 adders = 5 compiled units.
        assert result.instances_compiled == 5
        assert len(result.library) == 5

    def test_replicated_code_objects_distinct(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        result = BaselineCompiler(mode="replicate").compile(netlist)
        pipe = result.make_pipe()
        u0 = pipe.find("u0")
        u1 = pipe.find("u1")
        assert u0.code is not u1.code  # replication, not sharing

    def test_replicate_total_source_grows_with_instances(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        replicated = BaselineCompiler(mode="replicate").compile(netlist)
        _, shared_lib = compile_design(COUNTER_SRC, "top")
        shared_bytes = sum(len(m.source) for m in shared_lib.values())
        assert replicated.total_code_bytes() > shared_bytes


class TestBudget:
    def test_zero_budget_times_out(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        result = BaselineCompiler(mode="replicate", budget_seconds=0.0).compile(
            netlist
        )
        assert result.timed_out
        assert not result.succeeded
        assert result.library == {}

    def test_timed_out_pipe_raises(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        result = BaselineCompiler(mode="replicate", budget_seconds=0.0).compile(
            netlist
        )
        with pytest.raises(CompileBudgetExceeded):
            result.make_pipe()

    def test_inline_budget_times_out(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        result = BaselineCompiler(mode="inline", budget_seconds=0.0).compile(
            netlist
        )
        assert result.timed_out

    def test_generous_budget_succeeds(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        result = BaselineCompiler(mode="replicate", budget_seconds=60.0).compile(
            netlist
        )
        assert result.succeeded


class TestFlatMetadata:
    def test_flat_reg_names_are_hierarchical(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        flat = compile_flat(netlist)
        assert "u0.count_q" in flat.reg_slots
        assert "u1.count_q" in flat.reg_slots

    def test_flat_has_no_children(self):
        netlist = elaborate(parse(COUNTER_SRC), "top")
        flat = compile_flat(netlist)
        assert flat.child_insts == ()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            BaselineCompiler(mode="wat")
