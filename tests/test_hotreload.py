"""Hot reload tests: in-flight swaps, state migration, structure
reconciliation."""

import pytest

from repro import compile_design
from repro.hdl.errors import SimulationError
from repro.live.hotreload import HotReloader
from repro.live.transform import RegisterTransform, TransformOp
from repro.sim import Pipe
from tests.conftest import COUNTER_SRC


def compiled(source):
    return compile_design(source, "top")


def warmed_pipe(cycles=25):
    netlist, library = compiled(COUNTER_SRC)
    pipe = Pipe(netlist.top, library)
    pipe.set_inputs(rst=1)
    pipe.step(1)
    pipe.set_inputs(rst=0)
    pipe.step(cycles)
    return pipe


class TestBasicSwap:
    def test_swap_preserves_state_and_changes_logic(self):
        pipe = warmed_pipe(25)
        assert pipe.outputs() == {"c0": 25, "c1": 75}
        _, new_lib = compiled(
            COUNTER_SRC.replace("assign sum = a + b;",
                                "assign sum = a + b + 8'd1;")
        )
        report = HotReloader().swap_pipe(pipe, new_lib)
        assert report.modules_changed == {"adder"}
        # State survived the swap...
        assert pipe.outputs() == {"c0": 25, "c1": 75}
        # ...and the new logic is live: +2 and +4 per cycle now.
        pipe.step(1)
        assert pipe.outputs() == {"c0": 27, "c1": 79}

    def test_unchanged_modules_not_swapped(self):
        pipe = warmed_pipe(5)
        old_top_code = pipe.top.code
        _, new_lib = compiled(
            COUNTER_SRC.replace("assign sum = a + b;", "assign sum = a - b;")
        )
        HotReloader().swap_pipe(pipe, new_lib)
        # Cache-reused modules keep the same code object identity.
        assert pipe.top.code is old_top_code or (
            pipe.top.code is new_lib[pipe.top.code.key]
        )
        u0 = pipe.find("u0")
        assert u0.code is new_lib["counter#(W=8)"]

    def test_swap_counts_instances(self):
        pipe = warmed_pipe(5)
        _, new_lib = compiled(
            COUNTER_SRC.replace("assign sum = a + b;", "assign sum = a ^ b;")
        )
        report = HotReloader().swap_pipe(pipe, new_lib)
        # Two adder instances swapped (one per counter).
        assert report.swapped_instances == 2
        assert report.registers_migrated == 0  # adder has no registers

    def test_identity_swap_is_noop(self):
        netlist, library = compiled(COUNTER_SRC)
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=0)
        pipe.step(5)
        report = HotReloader().swap_pipe(pipe, library)
        assert report.swapped_instances == 0
        assert pipe.outputs()["c0"] == 5

    def test_swap_requires_matching_top(self):
        pipe = warmed_pipe(1)
        _, other_lib = compile_design(
            "module other (input clk, output y); assign y = 1'b0; endmodule",
            "other",
        )
        with pytest.raises(SimulationError):
            HotReloader().swap_pipe(pipe, other_lib)


class TestRegisterMigration:
    WIDER = COUNTER_SRC.replace(
        "reg [W-1:0] count_q;", "reg [W-1:0] count_q;\n  reg [W-1:0] shadow_q;"
    ).replace(
        "    else\n      count_q <= next;",
        "    else begin\n      count_q <= next;\n      shadow_q <= count_q;\n    end",
    )

    def test_created_register_initializes_to_zero(self):
        pipe = warmed_pipe(10)
        _, new_lib = compiled(self.WIDER)
        HotReloader().swap_pipe(pipe, new_lib)
        u0 = pipe.find("u0")
        assert u0.peek_reg("count_q") == 10  # migrated
        assert u0.peek_reg("shadow_q") == 0  # created -> 0

    def test_deleted_register_data_dropped(self):
        netlist, library = compiled(self.WIDER)
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=1)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        pipe.step(10)
        _, back_lib = compiled(COUNTER_SRC)
        HotReloader().swap_pipe(pipe, back_lib)
        u0 = pipe.find("u0")
        assert u0.peek_reg("count_q") == 10
        with pytest.raises(SimulationError):
            u0.peek_reg("shadow_q")

    def test_renamed_register_keeps_value(self):
        # A pure rename emits byte-identical generated code (state is
        # slot-addressed), so the reloader keeps the state arrays and
        # just rebinds the code object — zero copies, value preserved
        # under the new name.
        renamed = COUNTER_SRC.replace("count_q", "counter_q")
        pipe = warmed_pipe(12)
        _, new_lib = compiled(renamed)
        report = HotReloader().swap_pipe(pipe, new_lib)
        assert report.swapped_instances == 0
        assert pipe.find("u0").peek_reg("counter_q") == 12
        with pytest.raises(SimulationError):
            pipe.find("u0").peek_reg("count_q")

    def test_renamed_register_with_logic_change_migrates_via_guess(self):
        # Rename + a real logic change: the code differs, so the swap
        # path runs and the best-guess transform maps the value.
        renamed = COUNTER_SRC.replace("count_q", "counter_q").replace(
            "if (rst)", "if (rst || 1'b0)"
        )
        pipe = warmed_pipe(12)
        _, new_lib = compiled(renamed)
        report = HotReloader().swap_pipe(pipe, new_lib)
        assert report.registers_migrated == 2
        assert pipe.find("u0").peek_reg("counter_q") == 12

    def test_explicit_transform_overrides_guess(self):
        renamed = COUNTER_SRC.replace("count_q", "zzz_q")
        pipe = warmed_pipe(9)
        _, new_lib = compiled(renamed)
        transform = RegisterTransform(
            [TransformOp("rename", "count_q", new_name="zzz_q")]
        )
        HotReloader({"counter": transform}).swap_pipe(pipe, new_lib)
        assert pipe.find("u0").peek_reg("zzz_q") == 9

    def test_width_shrink_masks_value(self):
        narrow = COUNTER_SRC.replace(
            "counter #(.W(8)) u0", "counter #(.W(4)) u0"
        ).replace("output [7:0] c0", "output [3:0] c0")
        pipe = warmed_pipe(200)  # count_q = 200 = 0xC8
        _, new_lib = compiled(narrow)
        HotReloader().swap_pipe(pipe, new_lib)
        # Parameter changed => different spec key => fresh instance (a
        # W=4 counter is new hardware, not a migration target).
        assert pipe.find("u0").peek_reg("count_q") == 0


class TestStructuralChanges:
    THREE = COUNTER_SRC.replace(
        """  counter #(.W(8)) u0 (.clk(clk), .rst(rst), .step(8'd1), .count(c0));
  counter #(.W(8)) u1 (.clk(clk), .rst(rst), .step(8'd3), .count(c1));""",
        """  counter #(.W(8)) u0 (.clk(clk), .rst(rst), .step(8'd1), .count(c0));
  counter #(.W(8)) u1 (.clk(clk), .rst(rst), .step(8'd3), .count(c1));
  wire [7:0] unused;
  counter #(.W(8)) u2 (.clk(clk), .rst(rst), .step(8'd7), .count(unused));
  wire [7:0] c1x;
  assign c1x = c1 + unused;""",
    )

    def test_added_instance_built_fresh(self):
        pipe = warmed_pipe(6)
        _, new_lib = compiled(self.THREE)
        report = HotReloader().swap_pipe(pipe, new_lib)
        assert report.rebuilt_instances >= 1
        u2 = pipe.find("u2")
        assert u2.peek_reg("count_q") == 0  # brand new hardware
        assert pipe.find("u0").peek_reg("count_q") == 6  # survivors keep state

    def test_removed_instance_dropped(self):
        netlist, library = compiled(self.THREE)
        pipe = Pipe(netlist.top, library)
        pipe.set_inputs(rst=1)
        pipe.step(1)
        pipe.set_inputs(rst=0)
        pipe.step(4)
        _, back = compiled(COUNTER_SRC)
        HotReloader().swap_pipe(pipe, back)
        assert len(pipe.top.children) == 2
        with pytest.raises(SimulationError):
            pipe.find("u2")


class TestSwapStage:
    def test_swap_single_stage(self):
        pipe = warmed_pipe(8)
        _, new_lib = compiled(
            COUNTER_SRC.replace("assign sum = a + b;",
                                "assign sum = a + b + 8'd1;")
        )
        report = HotReloader().swap_stage(pipe, "u0.u_add", new_lib)
        assert report.swapped_instances == 1
        pipe.step(1)
        # u0's adder is patched (+2/cycle); u1 still runs old code.
        assert pipe.outputs() == {"c0": 10, "c1": 27}

    def test_interface_change_rejected_for_stage_swap(self):
        pipe = warmed_pipe(1)
        widened = COUNTER_SRC.replace(
            "module adder #(parameter W = 8) (\n  input clk,",
            "module adder #(parameter W = 8) (\n  input clk,\n  input en,",
        ).replace(
            "adder #(.W(W)) u_add (.clk(clk),",
            "adder #(.W(W)) u_add (.clk(clk), .en(1'b1),",
        )
        _, new_lib = compiled(widened)
        with pytest.raises(SimulationError, match="interface changed"):
            HotReloader().swap_stage(pipe, "u0.u_add", new_lib)
