"""End-to-end tests for sharded mode: the asyncio front door, worker
processes, crash rehydration, and per-client event routing.

One module-scoped frontend (2 worker processes) serves every test —
spawning workers is the expensive part.  The crash test runs last so
earlier tests can assert zero restarts.
"""

import os

import pytest

from repro.server.client import LiveSimClient, ServerError
from repro.server.frontend import ShardedFrontend
from repro.server.shard import HashRing
from tests.conftest import COUNTER_SRC

WORKERS = 2


@pytest.fixture(scope="module")
def frontend(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("sharded")
    fe = ShardedFrontend(
        workers=WORKERS,
        store_root=str(tmp / "store"),
        state_root=str(tmp / "state"),
    )
    fe.start()
    yield fe
    fe.shutdown()


def _client(frontend, **kwargs):
    host, port = frontend.address
    kwargs.setdefault("read_timeout", 120.0)
    return LiveSimClient(host, port, timeout=30.0, **kwargs)


def _names_on_each_worker(prefix):
    """Session names (one per worker) the frontend's ring will place
    on workers 0..WORKERS-1, in worker order."""
    ring = HashRing(range(WORKERS))
    names, i = {}, 0
    while len(names) < WORKERS:
        name = f"{prefix}-{i}"
        names.setdefault(ring.lookup(name), name)
        i += 1
    return [names[w] for w in range(WORKERS)]


class TestShardedBasics:
    def test_ping_reports_sharding(self, frontend):
        with _client(frontend) as client:
            pong = client.ping()
            assert pong["pong"] is True
            assert pong["sharded"] is True
            assert pong["workers"] == WORKERS

    def test_open_run_close_roundtrip(self, frontend):
        with _client(frontend) as client:
            info = client.open_session("basic", COUNTER_SRC)
            assert info["handles"]["top"] == "stage2"
            client.command("basic", "instPipe p0, stage2")
            result = client.command("basic", "run tb0, p0, 50")
            assert result["c0"] == 48
            assert client.close_session("basic") == {"closed": "basic"}

    def test_unknown_and_duplicate_sessions_error(self, frontend):
        with _client(frontend) as client:
            with pytest.raises(ServerError, match="unknown session"):
                client.command("ghost", "peek p0")
            client.open_session("dup", COUNTER_SRC)
            with pytest.raises(ServerError, match="already exists"):
                client.open_session("dup", COUNTER_SRC)
            client.close_session("dup")

    def test_sessions_spread_across_workers(self, frontend):
        first, second = _names_on_each_worker("spread")
        with _client(frontend) as client:
            client.open_session(first, COUNTER_SRC)
            client.open_session(second, COUNTER_SRC)
            stats = client.stats()
            by_id = {w["id"]: w for w in stats["workers"]}
            assert by_id[0]["sessions"] >= 1
            assert by_id[1]["sessions"] >= 1
            listed = {s["session"] for s in client.sessions()}
            assert {first, second} <= listed
            client.close_session(first)
            client.close_session(second)

    def test_command_errors_carry_worker_payloads(self, frontend):
        with _client(frontend) as client:
            client.open_session("errs", COUNTER_SRC)
            with pytest.raises(ServerError, match="unknown command"):
                client.command("errs", "frobnicate p0")
            # The session survives a failed command.
            client.command("errs", "instPipe p0, stage2")
            client.close_session("errs")


class TestShardedCrashRecovery:
    # Must run after the basics: it restarts worker processes.

    def test_kill_worker_rehydrates_sessions(self, frontend):
        victim_name, survivor_name = _names_on_each_worker("crash")
        with _client(frontend) as client, _client(frontend) as other:
            client.open_session(victim_name, COUNTER_SRC)
            client.open_session(survivor_name, COUNTER_SRC)
            client.command(victim_name, "instPipe p0, stage2")
            client.command(survivor_name, "instPipe p0, stage2")
            assert client.command(
                victim_name, "run tb0, p0, 200"
            )["c0"] == 198
            assert client.command(victim_name, "chkp p0")["cycle"] == 200
            client.command(survivor_name, "run tb0, p0, 50")

            stats = client.stats()
            by_id = {w["id"]: w for w in stats["workers"]}
            os.kill(by_id[0]["pid"], 9)

            # First command after the kill blocks on restart +
            # rehydration: journal replay rebuilds the design, the
            # checkpoint store restores the simulated state.
            assert client.command(victim_name, "peek p0")["c0"] == 198
            assert client.command(
                victim_name, "run tb0, p0, 10"
            )["c0"] == 208
            # The other worker's session never noticed.
            assert client.command(survivor_name, "peek p0")["c0"] == 48

            # Event streams route to the requesting client — and only
            # to it — even though the session now lives in a brand-new
            # worker process.
            client.command(victim_name, "verify p0")
            event = client.wait_event(
                "verify_status",
                predicate=lambda e: e.data["state"] != "running",
                timeout=60.0,
            )
            assert event.session == victim_name
            assert event.data["state"] == "consistent"
            with pytest.raises(TimeoutError):
                other.wait_event("verify_status", timeout=0.5)

            stats = client.stats()
            by_id = {w["id"]: w for w in stats["workers"]}
            assert by_id[0]["alive"] is True
            assert by_id[0]["restarts"] == 1
            assert by_id[1]["restarts"] == 0
            client.close_session(victim_name)
            client.close_session(survivor_name)
