"""End-to-end tests for sharded mode: the asyncio front door, worker
processes, crash rehydration, live resize/migration, and per-client
event routing.

One module-scoped frontend (2 worker processes) serves every test —
spawning workers is the expensive part.  Resize tests return the pool
to its original size, and the crash test runs last so earlier tests
can assert zero restarts.
"""

import os
import threading

import pytest

from repro.server.client import LiveSimClient, ServerError
from repro.server.frontend import ShardedFrontend
from repro.server.shard import HashRing
from tests.conftest import COUNTER_SRC

WORKERS = 2


@pytest.fixture(scope="module")
def frontend(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("sharded")
    fe = ShardedFrontend(
        workers=WORKERS,
        store_root=str(tmp / "store"),
        state_root=str(tmp / "state"),
    )
    fe.start()
    yield fe
    fe.shutdown()


def _client(frontend, **kwargs):
    host, port = frontend.address
    kwargs.setdefault("read_timeout", 120.0)
    return LiveSimClient(host, port, timeout=30.0, **kwargs)


def _names_on_each_worker(prefix):
    """Session names (one per worker) the frontend's ring will place
    on workers 0..WORKERS-1, in worker order."""
    ring = HashRing(range(WORKERS))
    names, i = {}, 0
    while len(names) < WORKERS:
        name = f"{prefix}-{i}"
        names.setdefault(ring.lookup(name), name)
        i += 1
    return [names[w] for w in range(WORKERS)]


class TestShardedBasics:
    def test_ping_reports_sharding(self, frontend):
        with _client(frontend) as client:
            pong = client.ping()
            assert pong["pong"] is True
            assert pong["sharded"] is True
            assert pong["workers"] == WORKERS

    def test_open_run_close_roundtrip(self, frontend):
        with _client(frontend) as client:
            info = client.open_session("basic", COUNTER_SRC)
            assert info["handles"]["top"] == "stage2"
            client.command("basic", "instPipe p0, stage2")
            result = client.command("basic", "run tb0, p0, 50")
            assert result["c0"] == 48
            assert client.close_session("basic") == {"closed": "basic"}

    def test_unknown_and_duplicate_sessions_error(self, frontend):
        with _client(frontend) as client:
            with pytest.raises(ServerError, match="unknown session"):
                client.command("ghost", "peek p0")
            client.open_session("dup", COUNTER_SRC)
            with pytest.raises(ServerError, match="already exists"):
                client.open_session("dup", COUNTER_SRC)
            client.close_session("dup")

    def test_sessions_spread_across_workers(self, frontend):
        first, second = _names_on_each_worker("spread")
        with _client(frontend) as client:
            client.open_session(first, COUNTER_SRC)
            client.open_session(second, COUNTER_SRC)
            stats = client.stats()
            by_id = {w["id"]: w for w in stats["workers"]}
            assert by_id[0]["sessions"] >= 1
            assert by_id[1]["sessions"] >= 1
            listed = {s["session"] for s in client.sessions()}
            assert {first, second} <= listed
            client.close_session(first)
            client.close_session(second)

    def test_command_errors_carry_worker_payloads(self, frontend):
        with _client(frontend) as client:
            client.open_session("errs", COUNTER_SRC)
            with pytest.raises(ServerError, match="unknown command"):
                client.command("errs", "frobnicate p0")
            # The session survives a failed command.
            client.command("errs", "instPipe p0, stage2")
            client.close_session("errs")


class TestShardedResize:
    # Runs after the basics; returns the pool to WORKERS so the crash
    # test's restart accounting still holds.

    def test_resize_grow_and_shrink_preserves_state(self, frontend):
        ring2 = HashRing(range(2))
        ring4 = HashRing(range(4))
        movers, stayers, i = [], [], 0
        while len(movers) < 2 or len(stayers) < 2:
            name = f"resize-{i}"
            i += 1
            if ring4.lookup(name) != ring2.lookup(name):
                movers.append(name)
            else:
                stayers.append(name)
        names = movers[:2] + stayers[:2]

        with _client(frontend) as client:
            for name in names:
                client.open_session(name, COUNTER_SRC)
                client.command(name, "instPipe p0, stage2")
                assert client.command(
                    name, "run tb0, p0, 100"
                )["c0"] == 98

            # Hammer the moving sessions from another connection while
            # the pool resizes: commands must queue behind the
            # migration gates, never fail.
            stop = threading.Event()
            errors = []

            def hammer():
                with _client(frontend) as other:
                    j = 0
                    while not stop.is_set():
                        try:
                            other.command(
                                names[j % len(names)], "peek p0"
                            )
                        except Exception as exc:  # noqa: BLE001
                            errors.append(exc)
                            return
                        j += 1

            thread = threading.Thread(target=hammer, daemon=True)
            thread.start()
            try:
                grown = client.resize(4)
                assert grown["workers"] == 4
                assert grown["previous"] == 2
                assert grown["spawned"] == [2, 3]
                assert grown["retired"] == []
                assert set(grown["migrated"]) == set(movers[:2])

                stats = client.stats()
                by_id = {w["id"]: w for w in stats["workers"]}
                assert sorted(by_id) == [0, 1, 2, 3]
                assert all(w["alive"] for w in stats["workers"])
                placed = {
                    s["session"]: s["worker"]
                    for s in client.sessions()
                }
                for name in names:
                    assert placed[name] == ring4.lookup(name)
                    # Simulated state survived the move (the persist
                    # step checkpoints at the *current* cycle).
                    assert client.command(
                        name, "peek p0"
                    )["c0"] == 98

                shrunk = client.resize(2)
                assert shrunk["workers"] == 2
                assert shrunk["retired"] == [2, 3]
                assert set(shrunk["migrated"]) == set(movers[:2])
            finally:
                stop.set()
                thread.join(timeout=30.0)
            assert errors == []

            stats = client.stats()
            assert sorted(w["id"] for w in stats["workers"]) == [0, 1]
            for name in names:
                assert client.command(
                    name, "run tb0, p0, 10"
                )["c0"] == 108
                client.close_session(name)

    def test_resize_to_same_size_is_a_noop(self, frontend):
        with _client(frontend) as client:
            value = client.resize(WORKERS)
            assert value["workers"] == WORKERS
            assert value["migrated"] == []
            assert value["spawned"] == []

    def test_resize_validates_worker_count(self, frontend):
        with _client(frontend) as client:
            with pytest.raises(ServerError, match="must be an integer"):
                client.resize(0)

    def test_explicit_migrate_moves_one_session(self, frontend):
        with _client(frontend) as client:
            client.open_session("mover", COUNTER_SRC)
            client.command("mover", "instPipe p0, stage2")
            assert client.command("mover", "run tb0, p0, 60")["c0"] == 58
            src = next(
                s["worker"] for s in client.sessions()
                if s["session"] == "mover"
            )
            dest = 1 - src
            value = client.migrate("mover", dest)
            assert value == {
                "session": "mover", "from": src, "worker": dest,
                "migrated": True,
            }
            assert next(
                s["worker"] for s in client.sessions()
                if s["session"] == "mover"
            ) == dest
            assert client.command("mover", "peek p0")["c0"] == 58
            # Migrating to the worker it already lives on is a no-op.
            again = client.migrate("mover", dest)
            assert again["migrated"] is False
            client.close_session("mover")

    def test_migrate_rejects_bad_targets(self, frontend):
        with _client(frontend) as client:
            with pytest.raises(ServerError, match="no worker 9"):
                client.open_session("badmig", COUNTER_SRC)
                client.migrate("badmig", 9)
            with pytest.raises(ServerError, match="unknown session"):
                client.migrate("no-such-session", 0)
            client.close_session("badmig")


class TestShardedCrashRecovery:
    # Must run after the basics: it restarts worker processes.

    def test_kill_worker_rehydrates_sessions(self, frontend):
        victim_name, survivor_name = _names_on_each_worker("crash")
        with _client(frontend) as client, _client(frontend) as other:
            client.open_session(victim_name, COUNTER_SRC)
            client.open_session(survivor_name, COUNTER_SRC)
            client.command(victim_name, "instPipe p0, stage2")
            client.command(survivor_name, "instPipe p0, stage2")
            assert client.command(
                victim_name, "run tb0, p0, 200"
            )["c0"] == 198
            assert client.command(victim_name, "chkp p0")["cycle"] == 200
            client.command(survivor_name, "run tb0, p0, 50")

            stats = client.stats()
            by_id = {w["id"]: w for w in stats["workers"]}
            os.kill(by_id[0]["pid"], 9)

            # First command after the kill blocks on restart +
            # rehydration: journal replay rebuilds the design, the
            # checkpoint store restores the simulated state.
            assert client.command(victim_name, "peek p0")["c0"] == 198
            assert client.command(
                victim_name, "run tb0, p0, 10"
            )["c0"] == 208
            # The other worker's session never noticed.
            assert client.command(survivor_name, "peek p0")["c0"] == 48

            # Event streams route to the requesting client — and only
            # to it — even though the session now lives in a brand-new
            # worker process.
            client.command(victim_name, "verify p0")
            event = client.wait_event(
                "verify_status",
                predicate=lambda e: e.data["state"] != "running",
                timeout=60.0,
            )
            assert event.session == victim_name
            assert event.data["state"] == "consistent"
            with pytest.raises(TimeoutError):
                other.wait_event("verify_status", timeout=0.5)

            stats = client.stats()
            by_id = {w["id"]: w for w in stats["workers"]}
            assert by_id[0]["alive"] is True
            assert by_id[0]["restarts"] == 1
            assert by_id[1]["restarts"] == 0
            client.close_session(victim_name)
            client.close_session(survivor_name)


class TestFailoverReplayDies:
    def test_replay_that_also_kills_the_worker_is_one_shot(
        self, tmp_path
    ):
        # A poison command that SIGKILL-crashes every worker it
        # touches: the frontend replays it exactly once against the
        # recovered session, then gives up instead of restart-looping.
        fe = ShardedFrontend(
            workers=1,
            store_root=str(tmp_path / "store"),
            state_root=str(tmp_path / "state"),
            worker_extra={"crash_line": "peek poison"},
        )
        host, port = fe.start()
        try:
            with LiveSimClient(host, port, read_timeout=120.0) as client:
                client.open_session("boom", COUNTER_SRC)
                client.command("boom", "instPipe p0, stage2")
                assert client.command(
                    "boom", "run tb0, p0, 50"
                )["c0"] == 48
                assert client.command("boom", "chkp p0")["cycle"] == 50
                # The obs registry is process-global (shared with any
                # earlier frontend in this test process), so assert
                # deltas, not absolutes.
                before = client.stats()["metrics"]["counters"]
                with pytest.raises(ServerError,
                                   match="died mid-request"):
                    client.command("boom", "peek poison")
                # One failover happened, exactly one.
                counters = client.stats()["metrics"]["counters"]
                assert counters.get("server.request_failovers", 0) \
                    - before.get("server.request_failovers", 0) == 1
                assert counters.get("server.worker_deaths", 0) \
                    - before.get("server.worker_deaths", 0) == 2
                # The session itself recovered from its checkpoint and
                # keeps working for non-poison commands.
                assert client.command("boom", "peek p0")["c0"] == 48
                client.close_session("boom")
        finally:
            fe.shutdown()
