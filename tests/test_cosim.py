"""Lockstep cosim tests: agreement on good designs, precise divergence
localization on buggy ones."""

import pytest

from repro.codegen.pygen import compile_netlist
from repro.hdl import elaborate, parse
from repro.riscv import assemble, build_pgas_source
from repro.riscv.cosim import Cosim, cosim_program
from repro.riscv.patches import get_patch
from repro.riscv.programs import fibonacci, gcd
from repro.sim import Pipe

PROGRAM = """
    li   t0, 100
    addi t0, t0, -1
    addi t1, t0, 5
    add  t2, t0, t1
    sd   t2, 0x200(zero)
    ecall
"""


def buggy_pipe(patch_name):
    source = get_patch(patch_name).inject(build_pgas_source(1))
    netlist = elaborate(parse(source), "pgas_mesh_1x1")
    return Pipe(netlist.top, compile_netlist(netlist))


class TestLockstepAgreement:
    def test_straightline_program_matches(self, pgas1_pipe):
        result = cosim_program(pgas1_pipe, assemble(PROGRAM))
        assert result.matched
        assert result.halted
        assert result.retired == 6  # li + 3 alu + sd + ecall

    def test_fibonacci_matches(self, pgas1_pipe):
        result = cosim_program(pgas1_pipe, assemble(fibonacci(12)))
        assert result.matched and result.halted

    def test_gcd_matches(self, pgas1_pipe):
        result = cosim_program(pgas1_pipe, assemble(gcd(48, 18)),
                               max_cycles=20_000)
        assert result.matched and result.halted

    def test_retire_counts_agree(self, pgas1_pipe):
        cosim = Cosim(pgas1_pipe)
        cosim.load_program(assemble(PROGRAM))
        result = cosim.run()
        assert result.retired == cosim.golden.instret


class TestDivergenceLocalization:
    def test_imm_sign_bug_localized_to_the_addi(self):
        pipe = buggy_pipe("id-imm-sign")
        result = cosim_program(pipe, assemble(PROGRAM), max_cycles=2_000)
        assert not result.matched
        div = result.divergence
        # The first wrong value lands exactly at the addi t0, t0, -1
        # (retire #2: li is one instruction) in register x5 (t0).
        assert div.retire_index == 2
        assert div.register == "x5"
        assert div.golden_value == 99
        assert div.rtl_value == (100 + 0xFFF) & ((1 << 64) - 1)

    def test_sltu_bug_localized(self):
        pipe = buggy_pipe("ex-sltu-signed")
        program = assemble("""
    li   t0, -1
    li   t1, 1
    sltu t2, t1, t0
    sd   t2, 0x200(zero)
    ecall
""")
        result = cosim_program(pipe, program, max_cycles=2_000)
        assert not result.matched
        assert result.divergence.register == "x7"  # t2
        assert result.divergence.golden_value == 1
        assert result.divergence.rtl_value == 0

    def test_divergence_report_renders(self):
        pipe = buggy_pipe("id-imm-sign")
        result = cosim_program(pipe, assemble(PROGRAM), max_cycles=2_000)
        text = str(result.divergence)
        assert "retire #2" in text
        assert "x5" in text

    def test_continue_past_divergence(self):
        pipe = buggy_pipe("id-imm-sign")
        cosim = Cosim(pipe)
        cosim.load_program(assemble(PROGRAM))
        result = cosim.run(max_cycles=2_000, stop_on_divergence=False)
        assert result.halted
        assert not result.matched  # first divergence still recorded
        assert result.divergence.retire_index == 2


class TestRandomLockstep:
    from hypothesis import given, settings

    from tests.test_rtl_core import random_program

    @given(source=random_program())
    @settings(max_examples=15, deadline=None)
    def test_random_programs_lockstep(self, source):
        """Stronger than end-state differential: every retire compared."""
        from repro.codegen.pygen import compile_netlist as _cn
        from repro.hdl import elaborate as _el, parse as _pa

        if "pipe" not in _LOCKSTEP_CACHE:
            netlist = _el(_pa(build_pgas_source(1)), "pgas_mesh_1x1")
            _LOCKSTEP_CACHE["pipe"] = Pipe(netlist.top, _cn(netlist))
        result = cosim_program(
            _LOCKSTEP_CACHE["pipe"], assemble(source), max_cycles=2_000
        )
        assert result.matched, str(result.divergence)
        assert result.halted


_LOCKSTEP_CACHE: dict = {}


class TestCosimGuards:
    def test_nonhalting_program_raises(self, pgas1_pipe):
        from repro.hdl.errors import SimulationError

        program = assemble("spin:\n  j spin")
        with pytest.raises(SimulationError, match="cycle bound"):
            cosim_program(pgas1_pipe, program, max_cycles=200)
