"""Stateful property testing of the live loop.

A Hypothesis state machine drives a LiveSession through random
interleavings of run / edit / rewind / verify+repair and checks the
one invariant that spans all of them: after repair, the pipeline's
outputs equal an analytically computed ground truth (the counter's
value is a pure function of the cycle count and the *current* adder
delta, because repair re-executes the whole recorded history under the
current design).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.live.session import LiveSession
from repro.sim.testbench import hold_inputs
from tests.conftest import COUNTER_SRC

DELTAS = [0, 1, 2, 5]


def design_with_delta(delta: int) -> str:
    if delta == 0:
        return COUNTER_SRC
    return COUNTER_SRC.replace(
        "assign sum = a + b;", f"assign sum = a + b + 8'd{delta};"
    )


class LiveLoopMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.session = LiveSession(COUNTER_SRC, checkpoint_interval=7)
        self.session.inst_pipe("p0", self.session.stage_handle_for("top"))
        self.tb = self.session.load_testbench(hold_inputs(rst=0))
        self.delta = 0  # current adder modification
        self.repaired = True  # history currently consistent with design

    # -- actions -------------------------------------------------------------

    @rule(cycles=st.integers(min_value=1, max_value=23))
    def run(self, cycles: int) -> None:
        self.session.run(self.tb, "p0", cycles)

    @rule(delta=st.sampled_from(DELTAS))
    def edit(self, delta: int) -> None:
        report = self.session.apply_change(design_with_delta(delta))
        if delta != self.delta:
            assert report.behavioral
            self.repaired = False
        else:
            assert not report.behavioral
        self.delta = delta

    @rule()
    def rewind_to_some_checkpoint(self) -> None:
        store = self.session.store("p0")
        if len(store):
            self.session.ldch("p0", store.all()[0])

    @rule()
    def repair(self) -> None:
        self.session.verify_consistency("p0", repair=True)
        self.repaired = True

    # -- invariants -----------------------------------------------------------

    @invariant()
    def history_covers_pipe_position(self) -> None:
        ops = self.session.ops("p0")
        end = ops[-1].end_cycle if ops else 0
        assert self.session.pipe("p0").cycle <= end or not ops

    @invariant()
    def checkpoints_never_after_now(self) -> None:
        ops = self.session.ops("p0")
        history_end = ops[-1].end_cycle if ops else 0
        for checkpoint in self.session.checkpoints("p0"):
            assert checkpoint.cycle <= history_end

    @precondition(lambda self: self.repaired)
    @invariant()
    def repaired_outputs_match_analytic_model(self) -> None:
        pipe = self.session.pipe("p0")
        cycle = pipe.cycle
        # The adder computes count + step + delta: u0 advances by
        # 1+delta per cycle, u1 by 3+delta.
        assert pipe.outputs()["c0"] == (cycle * (1 + self.delta)) & 0xFF
        assert pipe.outputs()["c1"] == (cycle * (3 + self.delta)) & 0xFF

    @precondition(lambda self: self.repaired)
    @invariant()
    def repaired_history_verifies(self) -> None:
        report = self.session.verify_consistency("p0")
        assert report.all_consistent


LiveLoopMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestLiveLoopStateMachine = LiveLoopMachine.TestCase
