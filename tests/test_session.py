"""LiveSession tests: the Table I command set and the live loop."""

import pytest

from repro.hdl.errors import SimulationError
from repro.live.session import LiveSession
from repro.live.transform import RegisterTransform, TransformOp
from repro.sim.testbench import hold_inputs
from tests.conftest import COUNTER_SRC

BUGGY = COUNTER_SRC.replace("assign sum = a + b;", "assign sum = a + b + 8'd1;")
COMMENT = COUNTER_SRC.replace("assign sum = a + b;",
                              "assign sum = a + b; // reviewed")


def make_session(interval=10):
    session = LiveSession(COUNTER_SRC, checkpoint_interval=interval)
    session.inst_pipe("p0", session.stage_handle_for("top"))
    tb = session.load_testbench(hold_inputs(rst=0))
    return session, tb


class TestTableOneCommands:
    def test_ld_lib_registers_stage_handles(self):
        session = LiveSession(COUNTER_SRC)
        names = {e.payload for e in session.objects.by_type("Stage")}
        assert names == {"adder", "counter", "top"}

    def test_ld_lib_merges_new_source(self):
        session = LiveSession(COUNTER_SRC)
        added = session.ld_lib("extras", """
module blinker (input clk, output y);
  reg q;
  assign y = q;
  always @(posedge clk) q <= !q;
endmodule
""")
        assert len(added) == 1
        pipe = session.inst_pipe("b0", session.stage_handle_for("blinker"))
        pipe.step(1)
        assert pipe.outputs()["y"] == 1

    def test_inst_pipe_creates_running_uut(self):
        session, tb = make_session()
        assert "p0" in session.pipelines
        assert session.pipe("p0").cycle == 0

    def test_inst_pipe_rejects_tb_handle(self):
        session, tb = make_session()
        with pytest.raises(SimulationError, match="not a stage"):
            session.inst_pipe("p1", tb)

    def test_run_advances_and_records_history(self):
        session, tb = make_session()
        session.run(tb, "p0", 25)
        assert session.pipe("p0").cycle == 25
        ops = session.ops("p0")
        assert len(ops) == 1
        assert (ops[0].start_cycle, ops[0].end_cycle) == (0, 25)

    def test_run_takes_checkpoints(self):
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 35)
        assert session.store("p0").cycles() == [10, 20, 30]

    def test_chkp_manual_checkpoint(self):
        session, tb = make_session()
        session.run(tb, "p0", 7)
        cp = session.chkp("p0")
        assert cp.cycle == 7

    def test_ldch_rewinds_and_truncates_history(self):
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 35)
        cp = [c for c in session.checkpoints("p0") if c.cycle == 20][0]
        session.ldch("p0", cp)
        pipe = session.pipe("p0")
        assert pipe.cycle == 20
        assert pipe.outputs()["c0"] == 20
        assert all(op.end_cycle <= 20 for op in session.ops("p0"))

    def test_ldch_from_file(self, tmp_path):
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 25)
        path = str(tmp_path / "cps.pkl")
        session.chkp("p0", path)
        session.run(tb, "p0", 10)
        session.ldch("p0", path)
        assert session.pipe("p0").cycle == 25

    def test_copy_pipe_duplicates_state(self):
        session, tb = make_session()
        session.run(tb, "p0", 15)
        clone = session.copy_pipe("p1", "p0")
        assert clone.outputs()["c0"] == 15
        # Divergent futures: the clone is independent.
        session.run(tb, "p1", 5)
        assert session.pipe("p1").outputs()["c0"] == 20
        assert session.pipe("p0").outputs()["c0"] == 15

    def test_stage_table_populated(self):
        session, tb = make_session()
        rows = session.stages.rows()
        paths = {(pipe, stage) for pipe, stage, _, _ in rows}
        assert ("p0", "u0") in paths
        assert ("p0", "u0.u_add") in paths

    def test_object_table_rows(self):
        session, tb = make_session()
        rows = session.objects.rows()
        types = {t for _, t, _, _ in rows}
        assert types == {"Stage", "Testbench"}


class TestApplyChange:
    def test_comment_edit_short_circuits(self):
        session, tb = make_session()
        session.run(tb, "p0", 20)
        report = session.apply_change(COMMENT)
        assert not report.behavioral
        assert report.compile_seconds == 0
        assert session.pipe("p0").cycle == 20

    def test_behavioral_edit_full_loop(self):
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 35)
        report = session.apply_change(BUGGY)
        assert report.behavioral
        assert report.recompiled_keys == ["adder#(W=8)"]
        assert set(report.reused_keys) == {"counter#(W=8)", "top"}
        pipe = session.pipe("p0")
        # Estimate: reload checkpoint at 10 (closest to 35-10000 -> 0,
        # i.e. earliest), replay 25 cycles at +2/cycle.
        assert report.checkpoint_cycle == 10
        assert report.cycles_replayed == 25
        assert pipe.cycle == 35
        assert pipe.outputs()["c0"] == (10 + 2 * 25)

    def test_version_advances_per_change(self):
        session, tb = make_session()
        v0 = session.version
        session.apply_change(BUGGY)
        assert session.version != v0
        assert session.history.parent_of(session.version) == v0

    def test_reload_distance_selects_near_checkpoint(self):
        session = LiveSession(
            COUNTER_SRC, checkpoint_interval=10, reload_distance=10
        )
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        session.run(tb, "p0", 55)
        report = session.apply_change(BUGGY)
        assert report.checkpoint_cycle == 50  # closest to 55-10=45... ties later
        assert session.pipe("p0").cycle == 55

    def test_no_checkpoints_replays_from_reset(self):
        session = LiveSession(COUNTER_SRC, checkpoints_enabled=False)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        session.run(tb, "p0", 30)
        report = session.apply_change(BUGGY)
        assert report.checkpoint_cycle is None
        assert report.cycles_replayed == 30
        assert session.pipe("p0").outputs()["c0"] == 60

    def test_explicit_transform_respected(self):
        renamed = COUNTER_SRC.replace("count_q", "tally_q").replace(
            "if (rst)", "if (rst || 1'b0)"
        )
        session, tb = make_session()
        session.run(tb, "p0", 12)
        transform = RegisterTransform(
            [TransformOp("rename", "count_q", new_name="tally_q")]
        )
        session.apply_change(renamed, transforms={"counter": transform})
        assert session.pipe("p0").find("u0").peek_reg("tally_q") == 12

    def test_checkpoints_retargeted_to_new_version(self):
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 25)
        session.apply_change(BUGGY)
        assert all(
            cp.version == session.version for cp in session.checkpoints("p0")
        )

    def test_syntax_error_leaves_session_usable(self):
        session, tb = make_session()
        session.run(tb, "p0", 5)
        from repro.hdl.errors import HDLError

        with pytest.raises(HDLError):
            session.apply_change(COUNTER_SRC.replace("assign sum = a + b;",
                                                     "assign sum = ("))
        session.run(tb, "p0", 5)
        assert session.pipe("p0").outputs()["c0"] == 10


class TestConsistencyIntegration:
    def test_stale_checkpoints_detected_after_change(self):
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 35)
        session.apply_change(BUGGY)
        report = session.verify_consistency("p0")
        assert not report.all_consistent
        assert report.divergence_cycle == 0

    def test_repair_reestablishes_truth(self):
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 35)
        session.apply_change(BUGGY)
        estimate = session.pipe("p0").outputs()["c0"]
        session.verify_consistency("p0", repair=True)
        fixed = session.pipe("p0").outputs()["c0"]
        assert fixed == 70  # 35 cycles at +2
        assert fixed != estimate
        # Post-repair, the store is consistent under the new code.
        assert session.verify_consistency("p0").all_consistent

    def test_consistent_when_change_does_not_affect_history(self):
        # Change only counter's reset value: with rst held low the
        # replayed trajectories are identical, so checkpoints verify.
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 25)
        changed = COUNTER_SRC.replace("count_q <= 0;", "count_q <= 8'd99;")
        session.apply_change(changed)
        report = session.verify_consistency("p0")
        assert report.all_consistent

    def test_swap_stage_command(self):
        session, tb = make_session()
        session.run(tb, "p0", 8)
        session.compiler.update_source(BUGGY)
        report = session.swap_stage("p0", "u0.u_add")
        assert report.swapped_instances == 1
        session.run(tb, "p0", 1)
        assert session.pipe("p0").outputs()["c0"] == 10  # +2 on patched u0
        assert session.pipe("p0").outputs()["c1"] == 27  # u1 untouched


class TestTransactionalApplyChange:
    def test_elaboration_failure_rolls_back(self):
        """Deleting a module that is still instantiated fails in
        elaboration; the session must stay on the old design."""
        session, tb = make_session()
        session.run(tb, "p0", 12)
        no_adder = COUNTER_SRC.replace(
            COUNTER_SRC[COUNTER_SRC.index("module adder"):
                        COUNTER_SRC.index("endmodule") + len("endmodule")],
            "",
        )
        from repro.hdl.errors import HDLError

        with pytest.raises(HDLError):
            session.apply_change(no_adder)
        # Old source intact, old version intact, pipe still runs.
        assert "module adder" in session.compiler.source
        assert session.version == "1.0"
        session.run(tb, "p0", 3)
        assert session.pipe("p0").outputs()["c0"] == 15

    def test_failure_then_good_edit_applies(self):
        session, tb = make_session()
        session.run(tb, "p0", 5)
        from repro.hdl.errors import HDLError

        with pytest.raises(HDLError):
            session.apply_change(
                COUNTER_SRC.replace("assign sum = a + b;",
                                    "assign sum = a + ;")
            )
        report = session.apply_change(BUGGY)
        assert report.behavioral
        session.run(tb, "p0", 1)
        assert session.pipe("p0").outputs()["c0"] == 12  # 5*2 replayed + 2


class TestApplyChangeWithVerify:
    def test_verify_true_repairs_inline(self):
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 35)
        report = session.apply_change(BUGGY, verify=True)
        # Background refinement ran and the state is exact: 35 cycles
        # of the patched (+2) adder from reset.
        assert "p0" in report.consistency
        assert not report.consistency["p0"].all_consistent  # was stale
        assert session.pipe("p0").outputs()["c0"] == 70
        assert session.verify_consistency("p0").all_consistent
        assert report.verify_seconds > 0
        # The verify time is accounted separately from the ERD total.
        assert report.total_seconds < report.total_seconds + report.verify_seconds

    def test_verify_on_consistent_history_is_noop(self):
        session, tb = make_session(interval=10)
        session.run(tb, "p0", 25)
        # Change only the reset value: trajectories identical with
        # rst held low, so verification confirms without repair.
        changed = COUNTER_SRC.replace("count_q <= 0;", "count_q <= 8'd9;")
        report = session.apply_change(changed, verify=True)
        assert report.consistency["p0"].all_consistent
        assert session.pipe("p0").outputs()["c0"] == 25
