"""Design lint tests."""


from repro.hdl import elaborate, parse
from repro.hdl.lint import (
    CONSTANT_CONDITION,
    EXTENSION,
    TRUNCATION,
    UNUSED,
    Diagnostic,
    lint_netlist,
)


def diags(source, top="m", kinds=None):
    netlist = elaborate(parse(source), top)
    return lint_netlist(netlist, kinds=kinds)


class TestWidthDiagnostics:
    def test_truncating_assign_flagged(self):
        found = diags("""
module m (input [15:0] a, output [7:0] y);
  assign y = a;
endmodule
""")
        assert any(d.kind == TRUNCATION and "'y'" in d.message for d in found)

    def test_widening_assign_flagged_as_extension(self):
        found = diags("""
module m (input [3:0] a, output [15:0] y);
  assign y = a;
endmodule
""")
        assert any(d.kind == EXTENSION for d in found)

    def test_equal_widths_clean(self):
        found = diags("""
module m (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a ^ b;
endmodule
""", kinds={TRUNCATION, EXTENSION})
        assert found == []

    def test_literal_assignment_not_extension(self):
        # `q <= 0` is idiomatic; a bare literal never warns.
        found = diags("""
module m (input clk, output [31:0] y);
  reg [31:0] q;
  assign y = q;
  always @(posedge clk) q <= 0;
endmodule
""", kinds={EXTENSION})
        assert found == []

    def test_seq_assignment_width_checked(self):
        found = diags("""
module m (input clk, input [31:0] d, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) q <= d;
endmodule
""")
        assert any(d.kind == TRUNCATION for d in found)

    def test_concat_width_understood(self):
        found = diags("""
module m (input [3:0] a, input [3:0] b, output [7:0] y);
  assign y = {a, b};
endmodule
""", kinds={TRUNCATION, EXTENSION})
        assert found == []

    def test_addition_carry_not_flagged(self):
        # a + b is max-width by our rules; same-width target is clean.
        found = diags("""
module m (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a + b;
endmodule
""", kinds={TRUNCATION})
        assert found == []


class TestQualityDiagnostics:
    def test_unused_signal_flagged(self):
        found = diags("""
module m (input a, output y);
  wire dead;
  assign dead = a;
  assign y = a;
endmodule
""")
        assert any(d.kind == UNUSED and "'dead'" in d.message for d in found)

    def test_used_signals_clean(self):
        found = diags("""
module m (input a, output y);
  wire mid;
  assign mid = !a;
  assign y = mid;
endmodule
""", kinds={UNUSED})
        assert found == []

    def test_constant_mux_select_flagged(self):
        found = diags("""
module m (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = 1'b1 ? a : b;
endmodule
""")
        assert any(d.kind == CONSTANT_CONDITION for d in found)

    def test_constant_if_flagged(self):
        found = diags("""
module m (input clk, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) begin
    if (1'b0)
      q <= 1;
    else
      q <= 2;
  end
endmodule
""")
        assert any(d.kind == CONSTANT_CONDITION for d in found)

    def test_synthetic_begin_blocks_not_flagged(self):
        # Anonymous begin/end blocks lower to if(1) internally; those
        # must not be reported as constant conditions.
        found = diags("""
module m (input clk, input e, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) begin
    begin
      if (e)
        q <= q + 1;
    end
  end
endmodule
""", kinds={CONSTANT_CONDITION})
        assert found == []


class TestNetlistLint:
    def test_clean_counter_design(self, counter_design):
        netlist, _ = counter_design
        found = lint_netlist(netlist, kinds={TRUNCATION, UNUSED})
        assert found == []

    def test_pgas_core_is_lint_clean_for_truncation(self, pgas1_netlist_library):
        _, netlist, _ = pgas1_netlist_library
        found = lint_netlist(netlist, kinds={TRUNCATION})
        assert found == [], [str(d) for d in found]

    def test_diagnostic_str(self):
        diag = Diagnostic(TRUNCATION, "m", "msg", 7)
        assert str(diag) == "[truncation] m:7: msg"

    def test_kinds_filter(self):
        found = diags("""
module m (input [15:0] a, output [7:0] y);
  wire dead;
  assign dead = a[0];
  assign y = a;
endmodule
""", kinds={UNUSED})
        assert {d.kind for d in found} == {UNUSED}


class TestDeprecationShim:
    def test_lint_functions_warn(self):
        import pytest

        with pytest.warns(DeprecationWarning, match="repro.analyze.Analyzer"):
            diags("""
module m (input clk, input a, output y);
  assign y = a;
endmodule
""")

    def test_package_import_stays_silent(self):
        # Importing repro.hdl (or reaching any non-lint attribute) must
        # not fire the shim's module-level DeprecationWarning — the
        # lazy re-export only loads repro.hdl.lint on first touch.
        import os
        import subprocess
        import sys

        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        code = (
            "import warnings; warnings.simplefilter('error');"
            "import repro.hdl; repro.hdl.parse; repro.hdl.Diagnostic"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={**os.environ, "PYTHONPATH": src},
        )

    def test_lazy_reexport_still_works(self):
        import warnings

        import pytest

        import repro.hdl

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert repro.hdl.lint_netlist is not None
            assert repro.hdl.lint_module is not None
        with pytest.raises(AttributeError):
            repro.hdl.no_such_symbol
