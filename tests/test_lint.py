"""Width/quality check tests (formerly the ``repro.hdl.lint`` suite).

These exercise the checks that predate ``repro.analyze`` — truncation,
extension, unused-signal, constant-condition — now through the
Analyzer like everything else.  The deprecated ``repro.hdl.lint`` shim
is gone; the last test pins that removal.
"""

import pytest

from repro.analyze import (
    CONSTANT_CONDITION,
    EXTENSION,
    TRUNCATION,
    UNUSED,
    Analyzer,
    Diagnostic,
)
from repro.hdl import elaborate, parse


def analyze(netlist, kinds=None):
    found = Analyzer().analyze_netlist(netlist).diagnostics
    if kinds is not None:
        found = [d for d in found if d.kind in kinds]
    return found


def diags(source, top="m", kinds=None):
    return analyze(elaborate(parse(source), top), kinds=kinds)


class TestWidthDiagnostics:
    def test_truncating_assign_flagged(self):
        found = diags("""
module m (input [15:0] a, output [7:0] y);
  assign y = a;
endmodule
""")
        assert any(d.kind == TRUNCATION and "'y'" in d.message for d in found)

    def test_widening_assign_flagged_as_extension(self):
        found = diags("""
module m (input [3:0] a, output [15:0] y);
  assign y = a;
endmodule
""")
        assert any(d.kind == EXTENSION for d in found)

    def test_equal_widths_clean(self):
        found = diags("""
module m (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a ^ b;
endmodule
""", kinds={TRUNCATION, EXTENSION})
        assert found == []

    def test_literal_assignment_not_extension(self):
        # `q <= 0` is idiomatic; a bare literal never warns.
        found = diags("""
module m (input clk, output [31:0] y);
  reg [31:0] q;
  assign y = q;
  always @(posedge clk) q <= 0;
endmodule
""", kinds={EXTENSION})
        assert found == []

    def test_seq_assignment_width_checked(self):
        found = diags("""
module m (input clk, input [31:0] d, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) q <= d;
endmodule
""")
        assert any(d.kind == TRUNCATION for d in found)

    def test_concat_width_understood(self):
        found = diags("""
module m (input [3:0] a, input [3:0] b, output [7:0] y);
  assign y = {a, b};
endmodule
""", kinds={TRUNCATION, EXTENSION})
        assert found == []

    def test_addition_carry_not_flagged(self):
        # a + b is max-width by our rules; same-width target is clean.
        found = diags("""
module m (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a + b;
endmodule
""", kinds={TRUNCATION})
        assert found == []


class TestQualityDiagnostics:
    def test_unused_signal_flagged(self):
        found = diags("""
module m (input a, output y);
  wire dead;
  assign dead = a;
  assign y = a;
endmodule
""")
        assert any(d.kind == UNUSED and "'dead'" in d.message for d in found)

    def test_used_signals_clean(self):
        found = diags("""
module m (input a, output y);
  wire mid;
  assign mid = !a;
  assign y = mid;
endmodule
""", kinds={UNUSED})
        assert found == []

    def test_constant_mux_select_flagged(self):
        found = diags("""
module m (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = 1'b1 ? a : b;
endmodule
""")
        assert any(d.kind == CONSTANT_CONDITION for d in found)

    def test_constant_if_flagged(self):
        found = diags("""
module m (input clk, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) begin
    if (1'b0)
      q <= 1;
    else
      q <= 2;
  end
endmodule
""")
        assert any(d.kind == CONSTANT_CONDITION for d in found)

    def test_synthetic_begin_blocks_not_flagged(self):
        # Anonymous begin/end blocks lower to if(1) internally; those
        # must not be reported as constant conditions.
        found = diags("""
module m (input clk, input e, output [7:0] y);
  reg [7:0] q;
  assign y = q;
  always @(posedge clk) begin
    begin
      if (e)
        q <= q + 1;
    end
  end
endmodule
""", kinds={CONSTANT_CONDITION})
        assert found == []


class TestNetlistLint:
    def test_clean_counter_design(self, counter_design):
        netlist, _ = counter_design
        found = analyze(netlist, kinds={TRUNCATION, UNUSED})
        assert found == []

    def test_pgas_core_is_lint_clean_for_truncation(self, pgas1_netlist_library):
        _, netlist, _ = pgas1_netlist_library
        found = analyze(netlist, kinds={TRUNCATION})
        assert found == [], [str(d) for d in found]

    def test_diagnostic_str(self):
        diag = Diagnostic(TRUNCATION, "m", "msg", 7)
        assert str(diag) == "[truncation] m:7: msg"

    def test_kinds_filter(self):
        found = diags("""
module m (input [15:0] a, output [7:0] y);
  wire dead;
  assign dead = a[0];
  assign y = a;
endmodule
""", kinds={UNUSED})
        assert {d.kind for d in found} == {UNUSED}


class TestShimRemoved:
    def test_hdl_lint_module_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.hdl.lint  # noqa: F401

    def test_hdl_package_no_longer_reexports_lint(self):
        import repro.hdl

        for name in ("lint", "lint_module", "lint_netlist"):
            with pytest.raises(AttributeError):
                getattr(repro.hdl, name)
