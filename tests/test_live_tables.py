"""Internal table tests (paper Tables II-IV)."""

import pytest

from repro import compile_design
from repro.hdl.errors import SimulationError
from repro.live.tables import (
    PIPE,
    STAGE,
    TESTBENCH,
    ObjectEntry,
    ObjectLibraryTable,
    PipelineTable,
    StageTable,
)
from repro.sim import Pipe
from tests.conftest import COUNTER_SRC


def make_pipe(name="p"):
    netlist, library = compile_design(COUNTER_SRC, "top")
    return Pipe(netlist.top, library, name=name)


class TestObjectLibraryTable:
    def test_fresh_handles_sequence(self):
        table = ObjectLibraryTable()
        assert table.fresh_handle(STAGE) == "stage0"
        assert table.fresh_handle(STAGE) == "stage1"
        assert table.fresh_handle(TESTBENCH) == "tb0"
        assert table.fresh_handle(PIPE) == "pipe0"

    def test_add_and_get(self):
        table = ObjectLibraryTable()
        entry = ObjectEntry("stage0", STAGE, "f.v#m", "<livesim>/lib#m", "m")
        table.add(entry)
        assert table.get("stage0") is entry
        assert "stage0" in table
        assert len(table) == 1

    def test_duplicate_handle_rejected(self):
        table = ObjectLibraryTable()
        table.add(ObjectEntry("h", STAGE, "", "", None))
        with pytest.raises(SimulationError):
            table.add(ObjectEntry("h", STAGE, "", "", None))

    def test_unknown_handle_rejected(self):
        with pytest.raises(SimulationError):
            ObjectLibraryTable().get("ghost")

    def test_by_type_filters(self):
        table = ObjectLibraryTable()
        table.add(ObjectEntry("s0", STAGE, "", "", None))
        table.add(ObjectEntry("t0", TESTBENCH, "", "", None))
        assert [e.handle for e in table.by_type(STAGE)] == ["s0"]

    def test_rows_shape_matches_table2(self):
        table = ObjectLibraryTable()
        table.add(ObjectEntry(
            "stage0", STAGE, "/src/adder.v#adder", "/objs/libc0.so#adder", "adder"
        ))
        rows = table.rows()
        assert rows == [
            ("stage0", STAGE, "/src/adder.v#adder", "/objs/libc0.so#adder")
        ]


class TestPipelineTable:
    def test_add_get_remove(self):
        table = PipelineTable()
        pipe = make_pipe()
        table.add("p0", "pipe0", pipe)
        assert table.get("p0") is pipe
        assert table.handle_of("p0") == "pipe0"
        assert table.names() == ["p0"]
        table.remove("p0")
        assert "p0" not in table

    def test_duplicate_name_rejected(self):
        table = PipelineTable()
        table.add("p0", "pipe0", make_pipe())
        with pytest.raises(SimulationError):
            table.add("p0", "pipe1", make_pipe())

    def test_rows_include_pointers(self):
        table = PipelineTable()
        pipe = make_pipe()
        table.add("p0", "pipe0", pipe)
        (name, handle, pointer), = table.rows()
        assert (name, handle) == ("p0", "pipe0")
        assert pointer == hex(id(pipe))

    def test_items_iterates(self):
        table = PipelineTable()
        table.add("a", "pipe0", make_pipe("a"))
        table.add("b", "pipe1", make_pipe("b"))
        assert [name for name, _ in table.items()] == ["a", "b"]


class TestStageTable:
    def test_resolve_hierarchical_path(self):
        pipes = PipelineTable()
        pipe = make_pipe()
        pipes.add("p0", "pipe0", pipe)
        stages = StageTable(pipes)
        stages.register("p0", "u0", "stage0")
        inst = stages.resolve("p0", "u0")
        assert inst is pipe.find("u0")
        assert stages.handle_of("p0", "u0") == "stage0"

    def test_resolve_top_with_empty_path(self):
        pipes = PipelineTable()
        pipe = make_pipe()
        pipes.add("p0", "pipe0", pipe)
        stages = StageTable(pipes)
        assert stages.resolve("p0", "") is pipe.top

    def test_forget_pipe(self):
        pipes = PipelineTable()
        pipes.add("p0", "pipe0", make_pipe())
        stages = StageTable(pipes)
        stages.register("p0", "u0", "stage0")
        stages.forget_pipe("p0")
        assert stages.handle_of("p0", "u0") is None

    def test_rows_mark_stale_entries(self):
        pipes = PipelineTable()
        pipes.add("p0", "pipe0", make_pipe())
        stages = StageTable(pipes)
        stages.register("p0", "ghost_stage", "stage9")
        rows = stages.rows()
        assert rows[0][3] == "<stale>"
