"""Source-region splitting tests (LiveParser's substrate)."""

from repro.hdl.source_regions import (
    DIRECTIVE_REGION,
    MODULE_REGION,
    TOPLEVEL_REGION,
    module_regions,
    region_at_line,
    split_regions,
)

SOURCE = """\
// top comment
`define W 8

module alpha (input clk);
  wire x;
endmodule

`ifdef W
module beta (input clk);
endmodule
`endif
"""


def test_module_regions_found():
    regions = module_regions(SOURCE)
    assert set(regions) == {"alpha", "beta"}


def test_module_region_bounds():
    region = module_regions(SOURCE)["alpha"]
    assert region.start_line == 4
    assert region.end_line == 6
    assert region.text.startswith("module alpha")
    assert region.text.rstrip().endswith("endmodule")


def test_directive_regions_found():
    directives = [r for r in split_regions(SOURCE) if r.kind == DIRECTIVE_REGION]
    assert [d.name for d in directives] == ["`define W 8", "`ifdef W", "`endif"]


def test_toplevel_comment_region():
    tops = [r for r in split_regions(SOURCE) if r.kind == TOPLEVEL_REGION]
    assert any("top comment" in r.text for r in tops)


def test_region_at_line():
    regions = split_regions(SOURCE)
    assert region_at_line(regions, 5).name == "alpha"
    assert region_at_line(regions, 2).kind == DIRECTIVE_REGION


def test_commented_module_keyword_ignored():
    source = "// module fake (input x);\nmodule real_one (input x);\nendmodule\n"
    regions = module_regions(source)
    assert set(regions) == {"real_one"}


def test_single_line_module():
    source = "module tiny (input x); endmodule"
    region = module_regions(source)["tiny"]
    assert region.start_line == region.end_line == 1


def test_unterminated_module_runs_to_eof():
    source = "module broken (input x);\n  wire w;\n"
    region = module_regions(source)["broken"]
    assert region.end_line == 2


def test_adjacent_modules_have_disjoint_spans():
    source = (
        "module a (input x);\nendmodule\nmodule b (input y);\nendmodule\n"
    )
    regions = module_regions(source)
    assert regions["a"].end_line < regions["b"].start_line


def test_directive_inside_module_body_not_split():
    # Only directives at statement level split regions; a directive
    # line inside a module belongs to the module region boundary scan.
    source = "`define A 1\nmodule m (input x);\n  wire [`A:0] w;\nendmodule\n"
    regions = split_regions(source)
    kinds = [r.kind for r in regions]
    assert kinds.count(MODULE_REGION) == 1
    assert kinds.count(DIRECTIVE_REGION) == 1
