"""Heterogeneous multicore runs: each node executes a different program
and every node's final state is differentially checked against its own
golden-model instance."""


from repro.riscv import assemble
from repro.riscv.golden import GoldenCore
from repro.riscv.pgas import LOCAL_MEM_WORDS
from repro.riscv.programs import (
    RESULT_ADDR,
    fibonacci,
    memcopy,
    sieve,
    vector_sum,
)


def run_mesh_with_programs(pipe, sources, max_cycles=30_000):
    pipe.reset_state()
    programs = [assemble(src) for src in sources]
    for i, program in enumerate(programs):
        pipe.find(f"n_{i}.u_mem").write_memory(
            "mem", 0, program.as_mem64(LOCAL_MEM_WORDS)
        )
    pipe.set_inputs(rst=1)
    pipe.step(2)
    pipe.set_inputs(rst=0)
    halted = pipe.run_until(lambda p, o: o["all_halted"] == 1, max_cycles)
    assert halted, "mesh did not halt"
    return programs


def golden_result(source, max_instructions=500_000):
    program = assemble(source)
    core = GoldenCore()
    core.load_program(program.words)
    core.run(max_instructions)
    assert core.halted
    return core


class TestHeterogeneousMesh:
    def test_four_different_programs(self, pgas2_pipe):
        sources = [
            fibonacci(15),
            vector_sum([11, 22, 33, 44]),
            sieve(30),
            memcopy(words=8),
        ]
        # Seed node 3's copy source region first? memcopy copies zeros:
        # checksum 0 is a valid (if dull) result; keep it simple.
        run_mesh_with_programs(pgas2_pipe, sources)
        for node, source in enumerate(sources):
            golden = golden_result(source)
            rtl = pgas2_pipe.find(f"n_{node}.u_mem").memory("mem")
            assert rtl[RESULT_ADDR // 8] == golden.read(RESULT_ADDR, 8), (
                f"node {node} result mismatch"
            )

    def test_full_state_matches_per_node(self, pgas2_pipe):
        sources = [fibonacci(n) for n in (5, 10, 20, 25)]
        run_mesh_with_programs(pgas2_pipe, sources)
        for node, source in enumerate(sources):
            golden = golden_result(source)
            rf = pgas2_pipe.find(f"n_{node}.u_core.u_id").memory("rf")
            for i in range(1, 32):
                assert rf[i] == golden.regs[i], f"node {node} x{i}"
            retired = pgas2_pipe.find(
                f"n_{node}.u_core.u_wb"
            ).peek_reg("retired_q")
            assert retired == golden.instret, f"node {node} retire count"

    def test_node_runtimes_independent(self, pgas2_pipe):
        """Cores halt at different times; early finishers must freeze
        while the rest keep running."""
        sources = [
            "ecall",                      # halts immediately
            fibonacci(3),
            fibonacci(30),                # the long pole
            "nop\nnop\necall",
        ]
        run_mesh_with_programs(pgas2_pipe, sources)
        retire = [
            pgas2_pipe.find(f"n_{i}.u_core.u_wb").peek_reg("retired_q")
            for i in range(4)
        ]
        assert retire[0] == 1
        assert retire[3] == 3
        assert retire[2] > retire[1] > retire[0]
        golden = golden_result(fibonacci(30))
        assert (
            pgas2_pipe.find("n_2.u_mem").memory("mem")[RESULT_ADDR // 8]
            == golden.read(RESULT_ADDR, 8)
            == 832040
        )
