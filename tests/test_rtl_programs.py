"""Differential RTL-vs-golden tests on the richer program library
(sorting, recursion, sub-word memory traffic, subroutines)."""

import math

import pytest

from repro.riscv.programs import (
    byte_checksum,
    bubble_sort,
    fib_recursive,
    gcd,
)
from tests.test_rtl_core import differential


class TestBubbleSort:
    def test_small_array(self, pgas1_pipe):
        values = [5, 2, 9, 1, 7]
        golden = differential(pgas1_pipe, bubble_sort(values),
                              max_cycles=20_000)
        expected = sum(v * (i + 1) for i, v in enumerate(sorted(values)))
        assert golden.read(0x200, 8) == expected

    def test_already_sorted(self, pgas1_pipe):
        values = [1, 2, 3, 4]
        golden = differential(pgas1_pipe, bubble_sort(values),
                              max_cycles=20_000)
        expected = sum(v * (i + 1) for i, v in enumerate(values))
        assert golden.read(0x200, 8) == expected

    def test_reverse_sorted(self, pgas1_pipe):
        values = [9, 7, 5, 3, 1]
        golden = differential(pgas1_pipe, bubble_sort(values),
                              max_cycles=40_000)
        expected = sum(v * (i + 1) for i, v in enumerate(sorted(values)))
        assert golden.read(0x200, 8) == expected

    def test_sorted_in_memory(self, pgas1_pipe):
        values = [4, 1, 3]
        differential(pgas1_pipe, bubble_sort(values), max_cycles=20_000)
        mem = pgas1_pipe.find("n_0.u_mem").memory("mem")
        stored = [mem[0x800 // 8 + i] for i in range(len(values))]
        assert stored == sorted(values)


class TestGCD:
    @pytest.mark.parametrize("a,b", [(48, 18), (17, 5), (100, 100), (7, 0)])
    def test_gcd_pairs(self, pgas1_pipe, a, b):
        golden = differential(pgas1_pipe, gcd(a, b), max_cycles=20_000)
        assert golden.read(0x200, 8) == math.gcd(a, b)


class TestRecursion:
    @pytest.mark.parametrize("n,expected", [(1, 1), (5, 5), (8, 21)])
    def test_fib_recursive(self, pgas1_pipe, n, expected):
        golden = differential(pgas1_pipe, fib_recursive(n),
                              max_cycles=40_000)
        assert golden.read(0x200, 8) == expected


class TestByteChecksum:
    def test_ascii_buffer(self, pgas1_pipe):
        text = b"LiveSim: hot reload for HDLs"
        golden = differential(pgas1_pipe, byte_checksum(text),
                              max_cycles=20_000)
        assert golden.read(0x200, 8) == sum(text)

    def test_pattern_written_back(self, pgas1_pipe):
        text = bytes([250, 250, 250])  # forces 8-bit wraparound
        differential(pgas1_pipe, byte_checksum(text), max_cycles=20_000)
        mem = pgas1_pipe.find("n_0.u_mem").memory("mem")
        word = mem[0x1000 // 8]
        assert word & 0xFF == 250
        assert (word >> 8) & 0xFF == (500 & 0xFF)
        assert (word >> 16) & 0xFF == (750 & 0xFF)

    def test_empty_buffer(self, pgas1_pipe):
        golden = differential(pgas1_pipe, byte_checksum(b""),
                              max_cycles=5_000)
        assert golden.read(0x200, 8) == 0
