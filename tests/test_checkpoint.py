"""Checkpoint store tests: capture cadence, selection, GC (Fig. 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_design
from repro.live.checkpoint import Checkpoint, CheckpointStore, GCPolicy
from repro.sim import Pipe
from tests.conftest import COUNTER_SRC


def make_pipe():
    netlist, library = compile_design(COUNTER_SRC, "top")
    pipe = Pipe(netlist.top, library)
    pipe.set_inputs(rst=1)
    pipe.step(1)
    pipe.set_inputs(rst=0)
    return pipe


class TestCapture:
    def test_take_records_cycle_and_state(self):
        pipe = make_pipe()
        store = CheckpointStore(interval=10)
        pipe.step(7)
        cp = store.take(pipe, version="1.0", op_index=0)
        assert cp.cycle == 8  # 1 reset cycle + 7
        assert cp.snapshot.state.child("u0").regs["count_q"] == 7

    def test_maybe_take_honours_interval(self):
        pipe = make_pipe()
        store = CheckpointStore(interval=5)
        for _ in range(21):
            pipe.step(1)
            store.maybe_take(pipe, "1.0", 0)
        assert store.cycles() == [5, 10, 15, 20]

    def test_disabled_store_takes_nothing(self):
        pipe = make_pipe()
        store = CheckpointStore(interval=5, enabled=False)
        for _ in range(12):
            pipe.step(1)
            store.maybe_take(pipe, "1.0", 0)
        assert len(store) == 0

    def test_same_cycle_recapture_replaces(self):
        pipe = make_pipe()
        store = CheckpointStore(interval=10)
        store.take(pipe, "1.0", 0)
        before = len(store)
        store.take(pipe, "1.1", 1)
        assert len(store) == before
        assert store.all()[0].version == "1.1"

    def test_capture_stats_accumulate(self):
        pipe = make_pipe()
        store = CheckpointStore(interval=10)
        store.take(pipe, "1.0", 0)
        pipe.step(1)
        store.take(pipe, "1.0", 0)
        assert store.total_captured == 2
        assert store.total_capture_seconds > 0

    def test_checkpoint_is_deep_copy(self):
        pipe = make_pipe()
        store = CheckpointStore(interval=10)
        cp = store.take(pipe, "1.0", 0)
        before = dict(cp.snapshot.state.child("u0").regs)
        pipe.step(10)
        assert cp.snapshot.state.child("u0").regs == before

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            CheckpointStore(interval=0)


class TestSelection:
    def _store_with_cycles(self, cycles):
        pipe = make_pipe()
        store = CheckpointStore(interval=1)
        for cycle in cycles:
            pipe.step(cycle - pipe.cycle)
            store.take(pipe, "1.0", 0)
        return store

    def test_nearest_before(self):
        store = self._store_with_cycles([10, 20, 30])
        assert store.nearest_before(25).cycle == 20
        assert store.nearest_before(30).cycle == 30
        assert store.nearest_before(5) is None

    def test_reload_candidate_targets_distance(self):
        # Paper §III-D: reload the checkpoint closest to 10k cycles
        # before the stop point.
        store = self._store_with_cycles([10, 20, 30, 40, 50])
        cp = store.reload_candidate(stop_cycle=50, distance=25)
        assert cp.cycle == 30  # closest to 50-25=25

    def test_reload_candidate_never_after_stop(self):
        store = self._store_with_cycles([10, 20, 30, 40, 50])
        cp = store.reload_candidate(stop_cycle=35, distance=0)
        assert cp.cycle <= 35

    def test_reload_candidate_empty_store(self):
        store = CheckpointStore(interval=10)
        assert store.reload_candidate(100) is None

    def test_invalidate_after(self):
        store = self._store_with_cycles([10, 20, 30, 40])
        removed = store.invalidate_after(25)
        assert removed == 2
        assert store.cycles() == [10, 20]


class TestGCPolicy:
    @staticmethod
    def _fake_checkpoints(cycles):
        return [
            Checkpoint(id=i, cycle=c, snapshot=None, version="1.0", op_index=0)
            for i, c in enumerate(cycles)
        ]

    def test_under_limit_no_victims(self):
        policy = GCPolicy(keep_latest=100, older_budget=100)
        cps = self._fake_checkpoints(range(0, 500, 10))
        assert policy.select_victims(cps) == []

    def test_latest_always_survive(self):
        policy = GCPolicy(keep_latest=10, older_budget=5)
        cps = self._fake_checkpoints(range(0, 1000, 10))
        victims = {c.id for c in policy.select_victims(cps)}
        newest_ids = {c.id for c in cps[-10:]}
        assert not (victims & newest_ids)

    def test_older_thinned_to_budget(self):
        policy = GCPolicy(keep_latest=10, older_budget=5)
        cps = self._fake_checkpoints(range(0, 1000, 10))
        victims = policy.select_victims(cps)
        survivors_old = len(cps) - 10 - len(victims)
        assert survivors_old <= 5

    def test_survivors_roughly_equally_spaced(self):
        policy = GCPolicy(keep_latest=4, older_budget=4)
        cps = self._fake_checkpoints(range(0, 400, 10))
        victims = {c.id for c in policy.select_victims(cps)}
        old_survivors = [c.cycle for c in cps[:-4] if c.id not in victims]
        gaps = [b - a for a, b in zip(old_survivors, old_survivors[1:])]
        assert max(gaps) <= 3 * min(gaps)

    @given(cycles=st.lists(st.integers(0, 10_000), min_size=1, max_size=300,
                           unique=True))
    @settings(max_examples=30, deadline=None)
    def test_gc_invariants(self, cycles):
        cycles.sort()
        policy = GCPolicy(keep_latest=20, older_budget=15)
        cps = self._fake_checkpoints(cycles)
        victims = policy.select_victims(cps)
        victim_ids = {c.id for c in victims}
        survivors = [c for c in cps if c.id not in victim_ids]
        # Invariant 1: the newest keep_latest always survive.
        assert all(c.id not in victim_ids for c in cps[-20:])
        # Invariant 2: population bounded.
        assert len(survivors) <= 20 + 15
        # Invariant 3: victims only ever come from the older section.
        assert all(v in cps[:-20] for v in victims)

    def test_clustered_cycles_keep_full_budget(self):
        # Clustered cycles used to collapse the keep set: several
        # equally-spaced targets resolved to the same nearest
        # checkpoint, so fewer than older_budget survived.
        policy = GCPolicy(keep_latest=2, older_budget=4)
        cps = self._fake_checkpoints([0, 1, 2, 3, 1000, 2000, 2001])
        victims = policy.select_victims(cps)
        older = cps[:-2]
        survivors = len(older) - len(victims)
        assert survivors == 4  # exactly min(older_budget, len(older))

    def test_keep_set_never_collapses(self):
        # Degenerate span: every older checkpoint at the same cycle.
        # Every target resolves to the same nearest checkpoint unless
        # the keep set dedupes, so the old code kept exactly one.
        policy = GCPolicy(keep_latest=1, older_budget=3)
        cps = self._fake_checkpoints([7, 7, 7, 7, 7, 900])
        victims = policy.select_victims(cps)
        assert len(cps[:-1]) - len(victims) == 3

    def test_store_gc_applies_policy(self):
        pipe = make_pipe()
        store = CheckpointStore(
            interval=1, policy=GCPolicy(keep_latest=5, older_budget=3)
        )
        for _ in range(30):
            pipe.step(1)
            store.maybe_take(pipe, "1.0", 0)
        assert len(store) <= 8
        assert store.total_collected > 0


class TestPersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        pipe = make_pipe()
        store = CheckpointStore(interval=10)
        pipe.step(3)
        store.take(pipe, "1.0", 0)
        pipe.step(3)
        store.take(pipe, "1.0", 1)
        path = str(tmp_path / "checkpoints.pkl")
        store.save(path)

        loaded = CheckpointStore(interval=99)
        loaded.load(path)
        assert loaded.interval == 10
        assert loaded.cycles() == store.cycles()
        regs = loaded.all()[0].snapshot.state.child("u0").regs
        assert regs["count_q"] == 3

    def test_total_bytes_counts_payload(self):
        pipe = make_pipe()
        store = CheckpointStore(interval=10)
        store.take(pipe, "1.0", 0)
        assert store.total_bytes() > 0

    def test_load_preserves_overhead_stats(self, tmp_path):
        # A session reload must not zero the §V-B overhead accounting.
        pipe = make_pipe()
        store = CheckpointStore(
            interval=1, policy=GCPolicy(keep_latest=3, older_budget=2)
        )
        for _ in range(10):
            pipe.step(1)
            store.take(pipe, "1.0", 0)
        assert store.total_collected > 0
        path = str(tmp_path / "checkpoints.pkl")
        store.save(path)

        loaded = CheckpointStore(interval=99)
        loaded.load(path)
        assert loaded.total_captured == store.total_captured == 10
        assert loaded.total_capture_seconds == store.total_capture_seconds
        assert loaded.total_collected == store.total_collected

    def test_load_reapplies_current_policy(self, tmp_path):
        # A store saved under a loose policy must be GC'd on load when
        # the loading store's policy is tighter.
        pipe = make_pipe()
        loose = CheckpointStore(interval=1)
        for _ in range(12):
            pipe.step(1)
            loose.take(pipe, "1.0", 0)
        path = str(tmp_path / "checkpoints.pkl")
        loose.save(path)

        tight = CheckpointStore(
            interval=1, policy=GCPolicy(keep_latest=3, older_budget=2)
        )
        tight.load(path)
        assert len(tight) <= 5
        assert tight.total_collected > 0

    def test_load_legacy_file_derives_stats(self, tmp_path):
        # Files written before stats were persisted still load, with
        # capture stats derived from the checkpoints themselves.
        import pickle

        pipe = make_pipe()
        store = CheckpointStore(interval=10)
        pipe.step(2)
        store.take(pipe, "1.0", 0)
        path = str(tmp_path / "legacy.pkl")
        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "interval": store.interval,
                    "checkpoints": store.all(),
                    "next_id": 1,
                },
                fh,
            )
        loaded = CheckpointStore(interval=99)
        loaded.load(path)
        assert loaded.total_captured == 1
        assert loaded.total_capture_seconds > 0
        assert loaded.total_collected == 0
