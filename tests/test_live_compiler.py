"""LiveCompiler tests: incremental recompilation and cache behaviour."""

import pytest

from repro.hdl.errors import HDLError
from repro.live.compiler_live import LiveCompiler
from tests.conftest import COUNTER_SRC


class TestFullCompile:
    def test_first_compile_builds_everything(self):
        compiler = LiveCompiler(COUNTER_SRC)
        result = compiler.compile_top("top")
        assert sorted(result.report.recompiled_keys) == [
            "adder#(W=8)", "counter#(W=8)", "top",
        ]
        assert result.report.reused_keys == []

    def test_second_compile_reuses_everything(self):
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        result = compiler.compile_top("top")
        assert result.report.recompiled_keys == []
        assert len(result.report.reused_keys) == 3

    def test_different_tops_share_children(self):
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("counter")
        result = compiler.compile_top("top")
        assert "adder#(W=8)" in result.report.reused_keys
        assert "top" in result.report.recompiled_keys


class TestIncrementalRecompile:
    def test_body_edit_recompiles_one_module(self):
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        compiler.update_source(
            COUNTER_SRC.replace("assign sum = a + b;", "assign sum = a - b;")
        )
        result = compiler.compile_top("top")
        assert result.report.recompiled_keys == ["adder#(W=8)"]
        assert sorted(result.report.reused_keys) == ["counter#(W=8)", "top"]

    def test_comment_edit_recompiles_nothing(self):
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        analysis = compiler.update_source(
            COUNTER_SRC.replace("assign sum = a + b;",
                                "assign sum = a + b;  // reviewed")
        )
        assert not analysis.behavioral
        result = compiler.compile_top("top")
        assert result.report.recompiled_keys == []

    def test_interface_edit_recompiles_parent_chain(self):
        # Widening the adder's port changes its interface: counter must
        # recompile too, but top (whose child interface is unchanged)
        # must not.
        new = COUNTER_SRC.replace(
            "module adder #(parameter W = 8) (\n  input clk,",
            "module adder #(parameter W = 8) (\n  input clk,\n  input enable,",
        ).replace(
            "adder #(.W(W)) u_add (.clk(clk),",
            "adder #(.W(W)) u_add (.clk(clk), .enable(1'b1),",
        )
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        compiler.update_source(new)
        result = compiler.compile_top("top")
        assert sorted(result.report.recompiled_keys) == [
            "adder#(W=8)", "counter#(W=8)",
        ]
        assert result.report.reused_keys == ["top"]

    def test_reverting_edit_hits_cache(self):
        compiler = LiveCompiler(COUNTER_SRC)
        first = compiler.compile_top("top")
        compiler.update_source(COUNTER_SRC.replace("a + b", "a - b"))
        compiler.compile_top("top")
        compiler.update_source(COUNTER_SRC)
        result = compiler.compile_top("top")
        assert result.report.recompiled_keys == []
        assert result.library["adder#(W=8)"] is first.library["adder#(W=8)"]

    def test_syntax_error_keeps_old_source(self):
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        with pytest.raises(HDLError):
            compiler.update_source(
                COUNTER_SRC.replace("assign sum = a + b;", "assign sum = ;")
            )
        # The old design still compiles fine.
        result = compiler.compile_top("top")
        assert result.library["top"] is not None

    def test_added_module_compiles(self):
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        compiler.update_source(COUNTER_SRC + """
module widget (input clk, output y);
  assign y = 1'b1;
endmodule
""")
        result = compiler.compile_top("widget")
        assert "widget" in result.report.recompiled_keys

    def test_removed_module_disappears(self):
        extended = COUNTER_SRC + "\nmodule extra (input clk); endmodule\n"
        compiler = LiveCompiler(extended)
        compiler.compile_top("extra")
        compiler.update_source(COUNTER_SRC)
        assert "extra" not in compiler.design.modules


class TestCacheManagement:
    def test_cache_grows_with_versions(self):
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        baseline = compiler.cache_size()
        compiler.update_source(COUNTER_SRC.replace("a + b", "a - b"))
        compiler.compile_top("top")
        assert compiler.cache_size() == baseline + 1

    def test_evict_stale_bounds_population(self):
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        variants = ["a - b", "a ^ b", "a & b", "a | b", "a * b", "a + b + 1"]
        for variant in variants:
            compiler.update_source(COUNTER_SRC.replace("a + b", variant))
            compiler.compile_top("top")
        evicted = compiler.evict_stale(keep_generations=2)
        assert evicted > 0
        # Current version still compiles from cache.
        result = compiler.compile_top("top")
        assert result.report.recompiled_keys == []

    def test_evict_stale_keeps_newest_generations_per_spec(self):
        """Eviction is per spec key in insertion order: the newest
        ``keep_generations`` versions of each module survive."""
        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        # Four adder generations; counter/top each stay at one.
        variants = ["a - b", "a ^ b", "a & b"]
        for variant in variants:
            compiler.update_source(COUNTER_SRC.replace("a + b", variant))
            compiler.compile_top("top")
        assert compiler.cache_size() == 3 + len(variants)
        evicted = compiler.evict_stale(keep_generations=2)
        # Only the adder spec exceeded the bound: 4 generations -> 2.
        assert evicted == 2
        assert compiler.cache_size() == 3 + len(variants) - 2
        # The two *newest* generations were kept: the current source
        # ("a & b") and the previous one ("a ^ b") compile fully from
        # cache, while an evicted older generation recompiles.
        result = compiler.compile_top("top")
        assert result.report.recompiled_keys == []
        compiler.update_source(COUNTER_SRC.replace("a + b", "a ^ b"))
        assert compiler.compile_top("top").report.recompiled_keys == []
        compiler.update_source(COUNTER_SRC.replace("a + b", "a - b"))
        result = compiler.compile_top("top")
        assert result.report.recompiled_keys == ["adder#(W=8)"]

    def test_evict_stale_counts_evictions(self):
        from repro import obs

        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        for variant in ["a - b", "a ^ b", "a & b"]:
            compiler.update_source(COUNTER_SRC.replace("a + b", variant))
            compiler.compile_top("top")
        metrics = obs.get_metrics()
        before = metrics.counter("compile.cache_evicted")
        evicted = compiler.evict_stale(keep_generations=1)
        assert evicted == 3
        assert metrics.counter("compile.cache_evicted") == before + 3
        assert metrics.gauge_value("compile.cache_size") == compiler.cache_size()

    def test_evict_stale_noop_below_bound(self):
        from repro import obs

        compiler = LiveCompiler(COUNTER_SRC)
        compiler.compile_top("top")
        metrics = obs.get_metrics()
        before = metrics.counter("compile.cache_evicted")
        size = compiler.cache_size()
        assert compiler.evict_stale(keep_generations=4) == 0
        # The no-op path touches neither the cache nor the counter.
        assert compiler.cache_size() == size
        assert metrics.counter("compile.cache_evicted") == before
        assert compiler.compile_top("top").report.recompiled_keys == []


class TestTimingFields:
    def test_report_times_populated(self):
        compiler = LiveCompiler(COUNTER_SRC)
        result = compiler.compile_top("top")
        report = result.report
        assert report.elaborate_seconds > 0
        assert report.codegen_seconds > 0
        assert report.total_seconds >= report.codegen_seconds

    def test_incremental_flag(self):
        compiler = LiveCompiler(COUNTER_SRC)
        assert not compiler.compile_top("top").report.was_incremental
        assert compiler.compile_top("top").report.was_incremental
