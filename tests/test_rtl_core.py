"""Differential testing of the RTL core against the golden ISS.

The strongest correctness evidence in this repo: the 5-stage pipelined
RTL core and the single-cycle reference interpreter run the same
programs; final architectural state (registers, memory, retire count)
must agree — including on randomly generated programs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.riscv import assemble
from repro.riscv.golden import GoldenCore
from repro.riscv.programs import (
    fibonacci,
    memcopy,
    sieve,
    vector_sum,
)
from repro.sim import Pipe

MAX_CYCLES = 6000


def run_rtl(pipe: Pipe, program, max_cycles=MAX_CYCLES):
    pipe.reset_state()
    pipe.find("n_0.u_mem").write_memory("mem", 0, program.as_mem64(4096))
    pipe.set_inputs(rst=1)
    pipe.step(2)
    pipe.set_inputs(rst=0)
    halted = pipe.run_until(
        lambda p, o: o["all_halted"] == 1, max_cycles=max_cycles
    )
    return halted


def run_golden(program, max_instructions=200_000):
    core = GoldenCore()
    core.load_program(program.words)
    core.run(max_instructions)
    return core


def differential(pipe: Pipe, source: str, max_cycles=MAX_CYCLES):
    program = assemble(source)
    golden = run_golden(program)
    assert golden.halted, "golden model must halt"
    halted = run_rtl(pipe, program, max_cycles)
    assert halted, "RTL must halt"

    core = pipe.find("n_0.u_core")
    rf = core.find("u_id").memory("rf")
    for i in range(1, 32):
        assert rf[i] == golden.regs[i], (
            f"x{i}: rtl={rf[i]:#x} golden={golden.regs[i]:#x}"
        )
    mem = pipe.find("n_0.u_mem").memory("mem")
    for word_index in range(4096):
        expect = int.from_bytes(
            golden.mem[8 * word_index : 8 * word_index + 8], "little"
        )
        assert mem[word_index] == expect, (
            f"mem[{word_index:#x}]: rtl={mem[word_index]:#x} "
            f"golden={expect:#x}"
        )
    retired = core.find("u_wb").peek_reg("retired_q")
    assert retired == golden.instret
    return golden


class TestPrograms:
    def test_fibonacci(self, pgas1_pipe):
        golden = differential(pgas1_pipe, fibonacci(10))
        assert golden.read(0x200, 8) == 55

    def test_fibonacci_larger(self, pgas1_pipe):
        golden = differential(pgas1_pipe, fibonacci(30))
        assert golden.read(0x200, 8) == 832040

    def test_vector_sum(self, pgas1_pipe):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        golden = differential(pgas1_pipe, vector_sum(values))
        assert golden.read(0x200, 8) == sum(values)

    def test_vector_sum_with_negatives(self, pgas1_pipe):
        values = [-5, 10, -3]
        golden = differential(
            pgas1_pipe, vector_sum([v & ((1 << 64) - 1) for v in values])
        )
        assert golden.read(0x200, 8) == (sum(values)) & ((1 << 64) - 1)

    def test_sieve(self, pgas1_pipe):
        golden = differential(pgas1_pipe, sieve(50), max_cycles=20000)
        assert golden.read(0x200, 8) == 15  # primes below 50

    def test_memcopy(self, pgas1_pipe):
        source = """
    li   t0, 0x800
    li   t1, 0xDEAD
    sd   t1, 0(t0)
    li   t1, 0xBEEF
    sd   t1, 8(t0)
    li   t1, 0xCAFE
    sd   t1, 16(t0)
""" + memcopy(words=3)
        differential(pgas1_pipe, source)


class TestHazards:
    def test_back_to_back_dependencies_forwarded(self, pgas1_pipe):
        differential(pgas1_pipe, """
    li   t0, 1
    addi t1, t0, 1
    addi t2, t1, 1
    addi t3, t2, 1
    add  a0, t2, t3
    ecall
""")

    def test_load_use_hazard(self, pgas1_pipe):
        differential(pgas1_pipe, """
    li   t0, 321
    sd   t0, 0x100(zero)
    ld   t1, 0x100(zero)
    addi a0, t1, 1
    ecall
""")

    def test_double_forward_priority(self, pgas1_pipe):
        # Two writers to the same register back-to-back: EX/MEM must
        # win over the WB bus.
        differential(pgas1_pipe, """
    li   t0, 1
    addi t0, t0, 10
    addi t0, t0, 100
    mv   a0, t0
    ecall
""")

    def test_branch_flush_kills_wrong_path(self, pgas1_pipe):
        differential(pgas1_pipe, """
    li   a0, 0
    j    skip
    addi a0, a0, 100
    addi a0, a0, 100
skip:
    addi a0, a0, 1
    ecall
""")

    def test_branch_depends_on_forwarded_value(self, pgas1_pipe):
        differential(pgas1_pipe, """
    li   a0, 0
    li   t0, 4
    addi t0, t0, -4
    beqz t0, yes
    li   a0, 111
    ecall
yes:
    li   a0, 222
    ecall
""")

    def test_store_data_forwarding(self, pgas1_pipe):
        differential(pgas1_pipe, """
    li   t0, 5
    addi t1, t0, 37
    sd   t1, 0x180(zero)
    ld   a0, 0x180(zero)
    ecall
""")

    def test_jalr_uses_forwarded_base(self, pgas1_pipe):
        differential(pgas1_pipe, """
    la   t0, fn
    jalr ra, t0, 0
    ecall
fn:
    li   a0, 7
    ecall
""")

    def test_x0_discards_writes(self, pgas1_pipe):
        differential(pgas1_pipe, """
    li   zero, 55
    addi a0, zero, 3
    ecall
""")


_REG_POOL = ["t0", "t1", "t2", "a0", "a1", "s2", "s3"]


@st.composite
def random_program(draw):
    """Straight-line random RV64I (safe ops only) with sprinkled
    memory traffic; ends with ecall."""
    lines = [
        "    li t0, 0x1234",
        "    li t1, -77",
        "    li t2, 9",
        "    li s0, 0x800",  # scratch-memory base (s0 never clobbered)
    ]
    count = draw(st.integers(min_value=3, max_value=25))
    for _ in range(count):
        kind = draw(st.sampled_from(["alu", "alui", "aluw", "mem", "shift"]))
        rd = draw(st.sampled_from(_REG_POOL))
        rs1 = draw(st.sampled_from(_REG_POOL))
        rs2 = draw(st.sampled_from(_REG_POOL))
        if kind == "alu":
            op = draw(st.sampled_from(
                ["add", "sub", "and", "or", "xor", "slt", "sltu"]
            ))
            lines.append(f"    {op} {rd}, {rs1}, {rs2}")
        elif kind == "alui":
            op = draw(st.sampled_from(["addi", "andi", "ori", "xori", "slti"]))
            imm = draw(st.integers(min_value=-512, max_value=511))
            lines.append(f"    {op} {rd}, {rs1}, {imm}")
        elif kind == "aluw":
            op = draw(st.sampled_from(["addw", "subw", "sllw", "srlw", "sraw"]))
            lines.append(f"    {op} {rd}, {rs1}, {rs2}")
        elif kind == "shift":
            op = draw(st.sampled_from(["slli", "srli", "srai"]))
            shamt = draw(st.integers(min_value=0, max_value=63))
            lines.append(f"    {op} {rd}, {rs1}, {shamt}")
        else:
            offset = draw(st.integers(min_value=0, max_value=63)) * 8
            if draw(st.booleans()):
                lines.append(f"    sd {rs1}, {offset}(s0)")
            else:
                lines.append(f"    ld {rd}, {offset}(s0)")
    lines.append("    ecall")
    return "\n".join(lines)


class TestRandomDifferential:
    @given(source=random_program())
    @settings(max_examples=25, deadline=None)
    def test_random_programs_match_golden(self, source):
        from repro.riscv.pgas import build_pgas_source, mesh_top_name
        from repro.hdl import elaborate, parse
        from repro.codegen.pygen import compile_netlist

        if "pipe" not in _PIPE_CACHE:
            netlist = elaborate(parse(build_pgas_source(1)), mesh_top_name(1))
            library = compile_netlist(netlist)
            _PIPE_CACHE["pipe"] = Pipe(netlist.top, library)
        differential(_PIPE_CACHE["pipe"], source, max_cycles=1500)


_PIPE_CACHE: dict = {}
