"""Shared fixtures: canonical small designs and compiled artifacts.

Expensive artifacts (the PGAS netlist/library) are session-scoped;
tests that mutate state build their own pipes from the shared library,
which is cheap.
"""

from __future__ import annotations

import pytest

from repro import compile_design
from repro.codegen.pygen import compile_netlist
from repro.hdl import elaborate, parse
from repro.riscv.pgas import build_pgas_source, mesh_top_name
from repro.sim import Pipe

COUNTER_SRC = """
module adder #(parameter W = 8) (
  input clk,
  input [W-1:0] a,
  input [W-1:0] b,
  output [W-1:0] sum
);
  assign sum = a + b;
endmodule

module counter #(parameter W = 8) (
  input clk,
  input rst,
  input [W-1:0] step,
  output [W-1:0] count
);
  reg [W-1:0] count_q;
  wire [W-1:0] next;
  adder #(.W(W)) u_add (.clk(clk), .a(count_q), .b(step), .sum(next));
  assign count = count_q;
  always @(posedge clk) begin
    if (rst)
      count_q <= 0;
    else
      count_q <= next;
  end
endmodule

module top (
  input clk,
  input rst,
  output [7:0] c0,
  output [7:0] c1
);
  counter #(.W(8)) u0 (.clk(clk), .rst(rst), .step(8'd1), .count(c0));
  counter #(.W(8)) u1 (.clk(clk), .rst(rst), .step(8'd3), .count(c1));
endmodule
"""


@pytest.fixture
def counter_source() -> str:
    return COUNTER_SRC


@pytest.fixture
def counter_design(counter_source):
    netlist, library = compile_design(counter_source, "top")
    return netlist, library


@pytest.fixture
def counter_pipe(counter_design) -> Pipe:
    netlist, library = counter_design
    pipe = Pipe(netlist.top, library)
    pipe.set_inputs(rst=1)
    pipe.step(1)
    pipe.set_inputs(rst=0)
    return pipe


@pytest.fixture(scope="session")
def pgas1_netlist_library():
    source = build_pgas_source(1)
    netlist = elaborate(parse(source), mesh_top_name(1))
    return source, netlist, compile_netlist(netlist)


@pytest.fixture(scope="session")
def pgas2_netlist_library():
    source = build_pgas_source(2)
    netlist = elaborate(parse(source), mesh_top_name(2))
    return source, netlist, compile_netlist(netlist)


@pytest.fixture
def pgas1_pipe(pgas1_netlist_library) -> Pipe:
    _, netlist, library = pgas1_netlist_library
    return Pipe(netlist.top, library)


@pytest.fixture
def pgas2_pipe(pgas2_netlist_library) -> Pipe:
    _, netlist, library = pgas2_netlist_library
    return Pipe(netlist.top, library)


def run_cycles(pipe: Pipe, cycles: int, **inputs: int) -> dict:
    """Drive constant inputs for N cycles; return final outputs."""
    if inputs:
        pipe.set_inputs(**inputs)
    pipe.step(cycles)
    return pipe.outputs()
