"""CLI shell tests (``python -m repro``)."""

import io

import pytest

from repro.__main__ import Shell, main
from tests.conftest import COUNTER_SRC

EDITED = COUNTER_SRC.replace("assign sum = a + b;", "assign sum = a + b + 8'd1;")


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.v"
    path.write_text(COUNTER_SRC)
    return path


def make_shell(top="top"):
    out = io.StringIO()
    shell = Shell(COUNTER_SRC, top, checkpoint_interval=10, reset_cycles=1,
                  out=out)
    return shell, out


class TestShell:
    def test_boot_banner(self):
        shell, out = make_shell()
        text = out.getvalue()
        assert "top = top" in text
        assert "tb0" in text

    def test_table1_flow(self):
        shell, out = make_shell()
        handle = shell.session.stage_handle_for("top")
        shell.run_script(f"""
instPipe p0, {handle}
run tb0, p0, 25
outputs p0
chkp p0
""")
        text = out.getvalue()
        assert "cycle 25" in text
        assert "'c0': 24" in text  # 1 reset cycle + 24 counting

    def test_regs_verb(self):
        shell, out = make_shell()
        handle = shell.session.stage_handle_for("top")
        shell.run_script(f"instPipe p0, {handle}\nrun tb0, p0, 5\nregs p0, u0")
        assert "count_q = 0x4" in out.getvalue()

    def test_reload_verb(self, tmp_path):
        shell, out = make_shell()
        handle = shell.session.stage_handle_for("top")
        shell.run_script(f"instPipe p0, {handle}\nrun tb0, p0, 30")
        edited = tmp_path / "edited.v"
        edited.write_text(EDITED)
        shell.execute(f"reload {edited}")
        text = out.getvalue()
        assert "recompiled ['adder#(W=8)']" in text
        assert "swapped 2 instances" in text

    def test_verify_verb_after_reload(self, tmp_path):
        shell, out = make_shell()
        handle = shell.session.stage_handle_for("top")
        shell.run_script(f"instPipe p0, {handle}\nrun tb0, p0, 35")
        edited = tmp_path / "edited.v"
        edited.write_text(EDITED)
        shell.execute(f"reload {edited}")
        shell.execute("verify p0")
        assert "divergence from cycle" in out.getvalue()
        shell.execute("verify p0")
        assert "consistent" in out.getvalue()

    def test_lint_verb(self):
        shell, out = make_shell()
        shell.execute("lint")
        assert "lint clean" in out.getvalue()

    def test_errors_reported_not_raised(self):
        shell, out = make_shell()
        shell.execute("run tb0, ghost, 5")
        assert "error:" in out.getvalue()
        shell.execute("teleport p0")
        assert "unknown command" in out.getvalue()

    def test_quit_stops_script(self):
        shell, out = make_shell()
        handle = shell.session.stage_handle_for("top")
        shell.run_script(f"""
instPipe p0, {handle}
quit
run tb0, p0, 100
""")
        assert shell.session.pipe("p0").cycle == 0

    def test_unknown_top_rejected(self):
        from repro.hdl.errors import HDLError

        with pytest.raises(HDLError, match="top module"):
            make_shell(top="nope")


class TestMain:
    def test_main_with_script(self, design_file, tmp_path, capsys):
        script = tmp_path / "session.lsim"
        script.write_text("""
instPipe p0, stage2
run tb0, p0, 12
outputs p0
""")
        rc = main([str(design_file), "--top", "top",
                   "--script", str(script),
                   "--checkpoint-interval", "5",
                   "--reset-cycles", "1"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "cycle 12" in captured

    def test_main_missing_file(self, capsys):
        rc = main(["/nope/missing.v", "--script", "/dev/null"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_main_defaults_top_to_last_module(self, design_file, tmp_path,
                                              capsys):
        script = tmp_path / "s.lsim"
        script.write_text("lint\n")
        rc = main([str(design_file), "--script", str(script)])
        assert rc == 0
        assert "lint clean" in capsys.readouterr().out
