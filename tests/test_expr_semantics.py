"""Expression semantics: compile tiny designs, compare against Python.

These are the ground-truth tests for the code generator — every
operator's masking, signedness, and edge behaviour is exercised through
a real compile+simulate round trip, including Hypothesis property tests
against a reference model.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import compile_design
from repro.sim import Pipe

U8 = st.integers(min_value=0, max_value=255)
U16 = st.integers(min_value=0, max_value=65535)
U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def comb_pipe(expr: str, out_width: int = 8, in_width: int = 8,
              inputs=("a", "b")) -> Pipe:
    ports = ", ".join(f"input [{in_width - 1}:0] {name}" for name in inputs)
    source = f"""
module m (input clk, {ports}, output [{out_width - 1}:0] y);
  assign y = {expr};
endmodule
"""
    netlist, library = compile_design(source, "m")
    return Pipe(netlist.top, library)


def evaluate(expr: str, out_width: int = 8, in_width: int = 8, **values) -> int:
    pipe = comb_pipe(expr, out_width, in_width, tuple(values))
    pipe.set_inputs(**values)
    return pipe.eval()["y"]


class TestArithmetic:
    def test_addition_wraps(self):
        assert evaluate("a + b", a=200, b=100) == (300 & 0xFF)

    def test_subtraction_wraps(self):
        assert evaluate("a - b", a=3, b=5) == (3 - 5) & 0xFF

    def test_multiplication_masks(self):
        assert evaluate("a * b", a=20, b=20) == (400 & 0xFF)

    def test_division(self):
        assert evaluate("a / b", a=42, b=5) == 8

    def test_division_by_zero_is_all_ones(self):
        assert evaluate("a / b", a=42, b=0) == 0xFF

    def test_modulo(self):
        assert evaluate("a % b", a=42, b=5) == 2

    def test_modulo_by_zero_is_lhs(self):
        assert evaluate("a % b", a=42, b=0) == 42

    @given(a=U8, b=U8)
    @settings(max_examples=40, deadline=None)
    def test_add_matches_model(self, a, b):
        assert evaluate("a + b", a=a, b=b) == (a + b) & 0xFF

    @given(a=U8, b=U8)
    @settings(max_examples=40, deadline=None)
    def test_sub_matches_model(self, a, b):
        assert evaluate("a - b", a=a, b=b) == (a - b) & 0xFF


class TestBitwiseAndLogical:
    def test_and_or_xor(self):
        assert evaluate("a & b", a=0b1100, b=0b1010) == 0b1000
        assert evaluate("a | b", a=0b1100, b=0b1010) == 0b1110
        assert evaluate("a ^ b", a=0b1100, b=0b1010) == 0b0110

    def test_not_masks_to_width(self):
        assert evaluate("~a", a=0) == 0xFF
        assert evaluate("~a", a=0xF0) == 0x0F

    def test_logical_ops_produce_bits(self):
        assert evaluate("a && b", a=7, b=9) == 1
        assert evaluate("a && b", a=7, b=0) == 0
        assert evaluate("a || b", a=0, b=0) == 0
        assert evaluate("!a", a=0) == 1
        assert evaluate("!a", a=5) == 0

    def test_reduction_and(self):
        assert evaluate("&a", out_width=1, a=0xFF) == 1
        assert evaluate("&a", out_width=1, a=0xFE) == 0

    def test_reduction_or(self):
        assert evaluate("|a", out_width=1, a=0) == 0
        assert evaluate("|a", out_width=1, a=2) == 1

    def test_reduction_xor_is_parity(self):
        assert evaluate("^a", out_width=1, a=0b1011) == 1
        assert evaluate("^a", out_width=1, a=0b1010) == 0


class TestShifts:
    def test_left_shift_masks(self):
        assert evaluate("a << b", a=0x81, b=1) == 0x02

    def test_oversized_left_shift_is_zero(self):
        assert evaluate("a << b", a=0xFF, b=200) == 0

    def test_right_shift(self):
        assert evaluate("a >> b", a=0x80, b=3) == 0x10

    def test_arithmetic_shift_unsigned_base(self):
        # Without $signed the >>> behaves logically.
        assert evaluate("a >>> b", a=0x80, b=3) == 0x10

    def test_arithmetic_shift_signed(self):
        assert evaluate("$signed(a) >>> b", a=0x80, b=3) == 0xF0

    @given(a=U8, b=st.integers(min_value=0, max_value=15))
    @settings(max_examples=40, deadline=None)
    def test_sra_matches_model(self, a, b):
        signed = a - 256 if a >= 128 else a
        expected = (signed >> b) & 0xFF
        assert evaluate("$signed(a) >>> b", a=a, b=b) == expected


class TestComparisons:
    def test_unsigned_compare(self):
        assert evaluate("a < b", out_width=1, a=0x80, b=0x7F) == 0

    def test_signed_compare(self):
        # 0x80 is -128 signed, so it is less than 0x7F (=127).
        assert evaluate(
            "$signed(a) < $signed(b)", out_width=1, a=0x80, b=0x7F
        ) == 1

    def test_equality(self):
        assert evaluate("a == b", out_width=1, a=5, b=5) == 1
        assert evaluate("a != b", out_width=1, a=5, b=6) == 1

    @given(a=U8, b=U8)
    @settings(max_examples=40, deadline=None)
    def test_signed_lt_matches_model(self, a, b):
        sa = a - 256 if a >= 128 else a
        sb = b - 256 if b >= 128 else b
        assert evaluate(
            "$signed(a) < $signed(b)", out_width=1, a=a, b=b
        ) == int(sa < sb)


class TestSelectsAndConcat:
    def test_bit_select(self):
        assert evaluate("a[7]", out_width=1, a=0x80) == 1
        assert evaluate("a[0]", out_width=1, a=0x80) == 0

    def test_part_select(self):
        assert evaluate("a[7:4]", out_width=4, a=0xA5) == 0xA

    def test_indexed_part_select(self):
        assert evaluate("a[b +: 4]", out_width=4, a=0xA5, b=4) == 0xA

    def test_indexed_part_select_descending(self):
        assert evaluate("a[b -: 4]", out_width=4, a=0xA5, b=7) == 0xA

    def test_concat(self):
        assert evaluate("{a[3:0], b[3:0]}", a=0x0A, b=0x05) == 0xA5

    def test_replication(self):
        assert evaluate("{4{a[1:0]}}", a=0b10) == 0b10101010

    def test_replication_of_bit(self):
        assert evaluate("{8{a[0]}}", a=1) == 0xFF

    def test_sign_extension_idiom(self):
        # {{4{x[3]}}, x[3:0]} — the standard sign-extension pattern.
        assert evaluate("{{4{a[3]}}, a[3:0]}", a=0x8) == 0xF8
        assert evaluate("{{4{a[3]}}, a[3:0]}", a=0x7) == 0x07

    @given(a=U8, b=U8)
    @settings(max_examples=40, deadline=None)
    def test_concat_matches_model(self, a, b):
        assert evaluate(
            "{a, b}", out_width=16, a=a, b=b
        ) == ((a << 8) | b)


class TestTernary:
    def test_select_both_ways(self):
        assert evaluate("a[0] ? b : 8'd9", a=1, b=42) == 42
        assert evaluate("a[0] ? b : 8'd9", a=0, b=42) == 9

    def test_nested_ternary(self):
        expr = "a[1] ? 8'd1 : a[0] ? 8'd2 : 8'd3"
        assert evaluate(expr, a=0b10) == 1
        assert evaluate(expr, a=0b01) == 2
        assert evaluate(expr, a=0b00) == 3

    def test_select_mux_style_equivalent(self):
        source = """
module m (input clk, input [7:0] a, input [7:0] b, input s,
          output [7:0] y);
  assign y = s ? a : b;
endmodule
"""
        for style in ("branch", "select"):
            netlist, library = compile_design(source, "m", mux_style=style)
            pipe = Pipe(netlist.top, library)
            pipe.set_inputs(a=11, b=22, s=1)
            assert pipe.eval()["y"] == 11
            pipe.set_inputs(s=0)
            assert pipe.eval()["y"] == 22


class TestWideValues:
    def test_64bit_addition(self):
        big = (1 << 64) - 1
        assert evaluate(
            "a + b", out_width=64, in_width=64, a=big, b=1
        ) == 0

    def test_64bit_signed_compare(self):
        top_bit = 1 << 63
        assert evaluate(
            "$signed(a) < $signed(b)", out_width=1, in_width=64,
            a=top_bit, b=0,
        ) == 1

    @given(a=U64, b=U64)
    @settings(max_examples=30, deadline=None)
    def test_64bit_ops_match_model(self, a, b):
        mask = (1 << 64) - 1
        assert evaluate(
            "(a ^ b) + (a & b)", out_width=64, in_width=64, a=a, b=b
        ) == ((a ^ b) + (a & b)) & mask


class TestInputMasking:
    def test_oversized_input_masked(self):
        pipe = comb_pipe("a", inputs=("a",))
        pipe.set_inputs(a=0x1FF)  # wider than the 8-bit port
        assert pipe.eval()["y"] == 0xFF
