"""repro.passes.dataflow: the known-bits / value-range analysis.

Covers the abstract domain's algebra, the forward walk over real
modules (both fact tiers), site recording, cross-module input-fact
propagation, the facts cache, and the elision plans + const-reg
initialization built on top (repro.sanitize.elide).
"""

from repro import compile_design
from repro.hdl import elaborate, parse
from repro.passes.dataflow import (
    ValueFact,
    compute_netlist_facts,
    vf_const,
    vf_join,
    vf_to_width,
    vf_top,
    vf_widen,
)
from repro.sanitize import (
    build_elision_plan,
    reg_const_init,
    san_free_keys,
)


def facts_for(source, top="m", **kwargs):
    netlist = elaborate(parse(source), top)
    return compute_netlist_facts(netlist, **kwargs), netlist


# ---------------------------------------------------------------------------
# Domain algebra
# ---------------------------------------------------------------------------


class TestValueFactDomain:
    def test_const_roundtrip(self):
        fact = vf_const(5, 8)
        assert fact.is_const and fact.const_value == 5
        assert fact.truth() is True
        assert vf_const(0, 8).truth() is False

    def test_top_knows_nothing(self):
        fact = vf_top(8)
        assert fact.is_top
        assert fact.truth() is None
        assert (fact.lo, fact.hi) == (0, 255)

    def test_join_is_sound_for_both_abstractions(self):
        joined = vf_join(vf_const(4, 8), vf_const(6, 8))
        assert (joined.lo, joined.hi) == (4, 6)
        # Bit 1 differs between 0b100 and 0b110 -> unknown; bit 0
        # agrees (0), bit 2 agrees (1).
        assert joined.known_mask & 0b010 == 0
        assert joined.known_bits & 0b100 == 0b100

    def test_join_with_unknown_is_unknown(self):
        assert vf_join(vf_const(4, 8), None) is None

    def test_interval_implies_high_zero_bits(self):
        fact = vf_join(vf_const(2, 8), vf_const(3, 8))
        # hi=3: bits 2..7 provably zero.
        assert fact.known_mask & 0xFC == 0xFC
        assert fact.known_bits & 0xFC == 0

    def test_widen_jumps_moving_bounds(self):
        old = ValueFact(8, 0, 0, 0, 10)
        new = ValueFact(8, 0, 0, 0, 11)
        widened = vf_widen(old, new)
        assert widened.hi == 255  # still growing: jump to the extreme
        assert widened.lo == 0

    def test_to_width_zero_extends_with_known_high_bits(self):
        wide = vf_to_width(vf_const(5, 4), 8)
        assert wide.is_const and wide.const_value == 5
        narrowed = vf_to_width(vf_top(8), 4)
        assert narrowed.hi == 15


# ---------------------------------------------------------------------------
# Forward walk
# ---------------------------------------------------------------------------


MASKED_SRC = """
module m (
  input clk,
  input [7:0] a,
  output [7:0] y
);
  wire [7:0] low;
  wire [7:0] shifted;
  assign low = a & 8'h0F;
  assign shifted = low + 8'd16;
  assign y = shifted;
endmodule
"""


class TestForwardWalk:
    def test_mask_then_add_tracks_interval(self):
        facts, _ = facts_for(MASKED_SRC)
        env = facts["m"].env
        assert (env["low"].lo, env["low"].hi) == (0, 15)
        assert (env["shifted"].lo, env["shifted"].hi) == (16, 31)

    def test_known_bits_through_and(self):
        facts, _ = facts_for(MASKED_SRC)
        low = facts["m"].env["low"]
        assert low.known_mask & 0xF0 == 0xF0
        assert low.known_bits & 0xF0 == 0

    def test_env_tier_sees_reset_zero_registers(self):
        facts, _ = facts_for("""
module m (input clk, input en, output [7:0] y);
  reg [7:0] cleared;
  always @(posedge clk) begin
    if (en)
      cleared <= 8'd0;
  end
  assign y = cleared;
endmodule
""")
        mod = facts["m"]
        # Starts at reset zero and only ever rewritten to zero.
        assert mod.env["cleared"].is_const
        assert mod.env["cleared"].const_value == 0

    def test_stable_tier_keeps_counting_register_top(self):
        facts, _ = facts_for("""
module m (input clk, output [7:0] y);
  reg [7:0] count;
  always @(posedge clk) count <= count + 8'd1;
  assign y = count;
endmodule
""")
        mod = facts["m"]
        # From reset the counter can reach anything (widening); the
        # swap-survivable tier must not assume reset either.
        assert mod.env["count"].is_top
        assert mod.stable["count"].is_top

    def test_invariant_register_stays_bounded_in_env_tier(self):
        facts, _ = facts_for("""
module m (input clk, input [7:0] a, output [7:0] y);
  reg [7:0] held;
  always @(posedge clk) held <= a & 8'h03;
  assign y = held;
endmodule
""")
        mod = facts["m"]
        # From-reset: {0} joined with [0,3] across rounds -> [0,3].
        assert (mod.env["held"].lo, mod.env["held"].hi) == (0, 3)
        # Swap-survivable: an adopted state could hold anything.
        assert mod.stable["held"].is_top

    def test_fixpoint_terminates_on_feedback(self):
        # Widening caps the rounds; this just has to finish.
        facts, _ = facts_for("""
module m (input clk, input [7:0] a, output [7:0] y);
  reg [7:0] s0;
  reg [7:0] s1;
  always @(posedge clk) begin
    s0 <= s1 + a;
    s1 <= s0 ^ a;
  end
  assign y = s0;
endmodule
""")
        assert facts["m"].env["s0"].width == 8

    def test_explain_walks_the_derivation(self):
        facts, _ = facts_for(MASKED_SRC)
        chain = facts["m"].explain("shifted")
        assert any("shifted" in line for line in chain)
        assert any("low" in line for line in chain)
        assert any("module input" in line for line in chain)


# ---------------------------------------------------------------------------
# Site recording
# ---------------------------------------------------------------------------


class TestSites:
    def test_safe_dynamic_bit_index(self):
        facts, _ = facts_for("""
module m (input [7:0] a, input [2:0] sel, output y);
  assign y = a[sel];
endmodule
""")
        ((_, site),) = facts["m"].stable_ob_sites.items()
        assert site.safe and not site.provably_oob
        assert site.bound == 8

    def test_provably_oob_memory_write(self):
        facts, _ = facts_for("""
module m (input clk, input [7:0] a, output [7:0] y);
  reg [7:0] store [0:3];
  wire [3:0] addr;
  assign addr = (a & 8'h03) + 4'd4;
  always @(posedge clk) store[addr] <= a;
  assign y = store[a[1:0]];
endmodule
""")
        sites = facts["m"].ob_sites
        oob = [s for s in sites.values() if s.provably_oob]
        assert len(oob) == 1
        assert oob[0].bound == 4

    def test_safe_truncation_site(self):
        facts, _ = facts_for("""
module m (input [7:0] a, output [3:0] y);
  wire [7:0] nib;
  assign nib = a & 8'h0F;
  assign y = nib;
endmodule
""")
        ((_, site),) = facts["m"].stable_tr_sites.items()
        assert site.safe and not site.provably_lossy

    def test_conflicting_bounds_pin_site_to_unknown(self):
        # Two same-line sites on one signal can't happen, but two
        # recordings of one site across walks join; a joined fact that
        # can exceed the bound must not be safe.
        facts, _ = facts_for("""
module m (input [7:0] a, input sel, output y);
  wire [3:0] idx;
  assign idx = sel ? 4'd2 : 4'd12;
  assign y = a[idx];
endmodule
""")
        ((_, site),) = facts["m"].stable_ob_sites.items()
        assert not site.safe and not site.provably_oob


# ---------------------------------------------------------------------------
# Cross-module propagation + cache
# ---------------------------------------------------------------------------


HIER_SRC = """
module leaf(input [7:0] v, output [7:0] y);
  assign y = v + 8'd1;
endmodule

module m(input clk, input [7:0] a, output [7:0] out);
  wire [7:0] y0;
  wire [7:0] y1;
  leaf u0 (.v(8'd4), .y(y0));
  leaf u1 (.v(8'd6), .y(y1));
  assign out = y0 + y1;
endmodule
"""


class TestCrossModule:
    def test_input_facts_join_over_instantiation_sites(self):
        facts, _ = facts_for(HIER_SRC)
        leaf = facts["leaf"]
        # Two sites feed 4 and 6: the join is [4, 6].
        assert (leaf.input_facts["v"].lo, leaf.input_facts["v"].hi) == (4, 6)
        assert (leaf.env["y"].lo, leaf.env["y"].hi) == (5, 7)

    def test_parent_reads_child_output_facts(self):
        facts, _ = facts_for(HIER_SRC)
        parent = facts["m"]
        # Phase 1 summaries are context-free, so y0/y1 read as the
        # unconstrained leaf output — still bounded by the add.
        assert parent.env["out"].width == 8

    def test_cache_reuses_clean_modules(self):
        netlist = elaborate(parse(HIER_SRC), "m")
        fps = {"leaf": "fp-leaf", "m": "fp-m"}
        cache = {}
        computed, reused = [], []
        compute_netlist_facts(
            netlist, fps=fps, cache=cache,
            on_computed=computed.append, on_reused=reused.append,
        )
        assert computed and not reused
        computed2, reused2 = [], []
        compute_netlist_facts(
            netlist, fps=fps, cache=cache,
            on_computed=computed2.append, on_reused=reused2.append,
        )
        assert not computed2 and sorted(reused2) == sorted(computed)

    def test_digest_changes_with_behaviour(self):
        # The parent edit changes what it feeds the (untouched) child:
        # the child's phase-2 facts — and so its digest — must move.
        facts_a, _ = facts_for(HIER_SRC)
        facts_b, _ = facts_for(HIER_SRC.replace("8'd6", "8'd9"))
        assert facts_a["leaf"].digest != facts_b["leaf"].digest
        assert facts_b["leaf"].input_facts["v"].hi == 9


# ---------------------------------------------------------------------------
# Elision plans + const-reg initialization
# ---------------------------------------------------------------------------


ELIDE_SRC = """
module m (
  input clk,
  input [7:0] a,
  output [7:0] y,
  output [3:0] t
);
  wire [2:0] sel;
  wire [7:0] nib;
  assign sel = a[2:0];
  assign nib = a & 8'h0F;
  assign y = {7'd0, a[sel]};
  assign t = nib;
endmodule
"""


class TestElisionPlan:
    def test_safe_sites_elide(self):
        facts, _ = facts_for(ELIDE_SRC)
        plan = build_elision_plan(facts["m"])
        assert plan.ob_safe  # a[sel] with sel in [0,7] vs bound 8
        assert plan.tr_safe  # t = nib with nib in [0,15] into 4 bits
        assert plan.rr_fast

    def test_unsafe_sites_stay(self):
        facts, _ = facts_for("""
module m (input [7:0] a, input [3:0] sel, output y);
  assign y = a[sel];
endmodule
""")
        plan = build_elision_plan(facts["m"])
        assert not plan.ob_safe  # sel in [0,15] vs bound 8

    def test_const_reg_init_from_env_tier(self):
        facts, _ = facts_for("""
module m (input clk, output [7:0] y);
  reg [7:0] stuck;
  always @(posedge clk) stuck <= 8'd0;
  assign y = stuck;
endmodule
""", top="m")
        netlist = elaborate(parse("""
module m (input clk, output [7:0] y);
  reg [7:0] stuck;
  always @(posedge clk) stuck <= 8'd0;
  assign y = stuck;
endmodule
"""), "m")
        init = reg_const_init(facts["m"], netlist.modules["m"])
        assert init == {"stuck": 0}

    def test_san_free_requires_no_sites_anywhere(self):
        netlist = elaborate(parse(HIER_SRC), "m")
        free = san_free_keys(netlist)
        # leaf has a tr site? v + 1 is 8-bit into 8-bit: no.  Neither
        # module reads a register or memory: both are san-free.
        assert set(free) == set(netlist.modules)

    def test_register_read_is_never_san_free(self):
        netlist = elaborate(parse("""
module m (input clk, output [7:0] y);
  reg [7:0] q;
  always @(posedge clk) q <= q + 8'd1;
  assign y = q;
endmodule
"""), "m")
        assert san_free_keys(netlist) == frozenset()


# ---------------------------------------------------------------------------
# Compiled-module integration
# ---------------------------------------------------------------------------


class TestCompiledElision:
    def _sanitized(self, san_elide):
        from repro.passes import run_opt_pipeline
        from repro.sanitize import SanitizerRuntime

        runtime = SanitizerRuntime(mode="report")
        netlist = elaborate(parse(ELIDE_SRC), "m")
        library = run_opt_pipeline(
            netlist, sanitize=True, sanitize_runtime=runtime,
            san_elide=san_elide,
        )
        return netlist, library, runtime

    def test_sanitized_compile_reports_elision_counters(self):
        _, library, _ = self._sanitized(san_elide=True)
        (mod,) = library.values()
        assert mod.san_sites > 0
        assert 0 < mod.san_elided <= mod.san_sites

    def test_unsanitized_compile_has_no_counters(self):
        _, lib = compile_design(ELIDE_SRC, "m")
        (mod,) = lib.values()
        assert mod.san_sites == 0 and mod.san_elided == 0

    def test_elided_and_plain_sanitize_bit_exact(self):
        from repro import Pipe

        netlist, plain, p_rt = self._sanitized(san_elide=False)
        _, elided, e_rt = self._sanitized(san_elide=True)
        (plain_mod,) = plain.values()
        (elided_mod,) = elided.values()
        assert plain_mod.san_elided == 0
        assert elided_mod.san_elided > 0
        p = Pipe(netlist.top, plain)
        e = Pipe(netlist.top, elided)
        for a in range(0, 256, 7):
            p.set_inputs(a=a)
            e.set_inputs(a=a)
            assert p.eval() == e.eval()
            p.tick()
            e.tick()
        assert p_rt.counters() == e_rt.counters()
