"""PGAS multicore tests: remote stores, ring delivery, address map."""

import pytest

from repro.riscv import build_pgas_source, global_address
from repro.riscv.pgas import GLOBAL_FLAG, LOCAL_MEM_BYTES, mesh_top_name
from repro.riscv.programs import (
    RESULT_ADDR,
    fibonacci,
    hop_count_ring,
    load_node_program,
    load_same_program,
    node_halted,
    node_result,
    token_ring,
)


def boot(pipe):
    pipe.set_inputs(rst=1)
    pipe.step(2)
    pipe.set_inputs(rst=0)


def run_until_halted(pipe, max_cycles=4000):
    return pipe.run_until(lambda p, o: o["all_halted"] == 1, max_cycles)


class TestAddressMap:
    def test_global_address_layout(self):
        assert global_address(0, 0x100) == GLOBAL_FLAG | 0x100
        assert global_address(3, 0x80) == GLOBAL_FLAG | (3 << 15) | 0x80

    def test_offset_bounds_checked(self):
        with pytest.raises(ValueError):
            global_address(0, LOCAL_MEM_BYTES)

    def test_node_bounds_checked(self):
        with pytest.raises(ValueError):
            global_address(512, 0)

    def test_mesh_top_name(self):
        assert mesh_top_name(4) == "pgas_mesh_4x4"


class TestSourceGeneration:
    def test_source_scales_with_n(self):
        small = build_pgas_source(1)
        large = build_pgas_source(2)
        assert len(large) > len(small)
        assert "pgas_mesh_2x2" in large

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            build_pgas_source(0)

    def test_node_count_in_source(self):
        source = build_pgas_source(2)
        assert source.count("pgas_node n_") == 4
        assert source.count("ring_stop r_") == 4


class TestSingleNode:
    def test_all_halted_output(self, pgas1_pipe):
        load_same_program(pgas1_pipe, 1, fibonacci(5))
        boot(pgas1_pipe)
        assert pgas1_pipe.outputs()["all_halted"] == 0
        assert run_until_halted(pgas1_pipe)
        assert node_result(pgas1_pipe, 0) == 5

    def test_global_self_store_served_locally(self, pgas1_pipe):
        pgas1_pipe.reset_state()
        addr = global_address(0, RESULT_ADDR)
        load_same_program(pgas1_pipe, 1, f"""
    li   t0, 4242
    li   t1, {addr}
    sd   t0, 0(t1)
    ecall
""")
        boot(pgas1_pipe)
        assert run_until_halted(pgas1_pipe)
        assert node_result(pgas1_pipe, 0) == 4242

    def test_total_retired_output(self, pgas1_pipe):
        pgas1_pipe.reset_state()
        load_same_program(pgas1_pipe, 1, "nop\nnop\nnop\necall")
        boot(pgas1_pipe)
        run_until_halted(pgas1_pipe)
        assert pgas1_pipe.outputs()["total_retired"] == 4


class TestMulticore:
    def test_token_ring_2x2(self, pgas2_pipe):
        pgas2_pipe.reset_state()
        for i in range(4):
            load_node_program(pgas2_pipe, i, token_ring(i, 4))
        boot(pgas2_pipe)
        assert run_until_halted(pgas2_pipe)
        for i in range(4):
            assert node_result(pgas2_pipe, i) == 1000 + (i - 1) % 4

    def test_hop_count_ring_2x2(self, pgas2_pipe):
        pgas2_pipe.reset_state()
        for i in range(4):
            load_node_program(pgas2_pipe, i, hop_count_ring(i, 4))
        boot(pgas2_pipe)
        assert run_until_halted(pgas2_pipe, max_cycles=8000)
        assert node_result(pgas2_pipe, 0) == 4  # full lap
        for i in range(1, 4):
            assert node_result(pgas2_pipe, i) == i

    def test_contending_remote_stores_all_delivered(self, pgas2_pipe):
        # Three nodes all store to node 0's mailbox region at distinct
        # offsets in the same cycle window; the ring must deliver all.
        pgas2_pipe.reset_state()
        for i in range(1, 4):
            addr = global_address(0, 0x400 + 8 * i)
            load_node_program(pgas2_pipe, i, f"""
    li   t0, {100 + i}
    li   t1, {addr}
    sd   t0, 0(t1)
    ecall
""")
        load_node_program(pgas2_pipe, 0, """
wait:
    ld   t0, 0x408(zero)
    beqz t0, wait
    ld   t1, 0x410(zero)
    beqz t1, wait
    ld   t2, 0x418(zero)
    beqz t2, wait
    ecall
""")
        boot(pgas2_pipe)
        assert run_until_halted(pgas2_pipe, max_cycles=8000)
        mem = pgas2_pipe.find("n_0.u_mem").memory("mem")
        assert [mem[(0x400 + 8 * i) // 8] for i in (1, 2, 3)] == [101, 102, 103]

    def test_nodes_isolated_local_memory(self, pgas2_pipe):
        pgas2_pipe.reset_state()
        for i in range(4):
            load_node_program(pgas2_pipe, i, f"""
    li   t0, {i + 1}
    sd   t0, 0x300(zero)
    ecall
""")
        boot(pgas2_pipe)
        assert run_until_halted(pgas2_pipe)
        for i in range(4):
            mem = pgas2_pipe.find(f"n_{i}.u_mem").memory("mem")
            assert mem[0x300 // 8] == i + 1

    def test_remote_store_backpressure_stalls_not_drops(self, pgas2_pipe):
        # Back-to-back remote stores from one node: the second must wait
        # for the request register, but both arrive.
        pgas2_pipe.reset_state()
        a1 = global_address(1, 0x500)
        a2 = global_address(1, 0x508)
        load_node_program(pgas2_pipe, 0, f"""
    li   t0, 11
    li   t1, {a1}
    li   t2, 22
    li   t3, {a2}
    sd   t0, 0(t1)
    sd   t2, 0(t3)
    ecall
""")
        boot(pgas2_pipe)
        pgas2_pipe.step(300)
        mem = pgas2_pipe.find("n_1.u_mem").memory("mem")
        assert mem[0x500 // 8] == 11
        assert mem[0x508 // 8] == 22

    def test_per_node_halt_flags(self, pgas2_pipe):
        pgas2_pipe.reset_state()
        load_node_program(pgas2_pipe, 0, "ecall")
        for i in range(1, 4):
            load_node_program(pgas2_pipe, i, """
spin:
    j spin
""")
        boot(pgas2_pipe)
        pgas2_pipe.step(60)
        assert node_halted(pgas2_pipe, 0)
        assert not node_halted(pgas2_pipe, 1)
        assert pgas2_pipe.outputs()["all_halted"] == 0
