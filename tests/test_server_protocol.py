"""Wire-protocol framing tests (repro.server/v1)."""

import dataclasses
import json

import pytest

from repro.server import protocol
from repro.server.protocol import (
    Event,
    ProtocolError,
    Request,
    Response,
    decode,
    encode_event,
    encode_request,
    encode_response,
    error_response,
    ok_response,
    to_jsonable,
)


class TestRoundTrip:
    def test_request(self):
        request = Request(id=7, cmd="cmd",
                          params={"session": "a", "line": "peek p0"})
        decoded = decode(encode_request(request))
        assert decoded == request

    def test_ok_response(self):
        response = ok_response(3, {"c0": 42})
        decoded = decode(encode_response(response))
        assert decoded == Response(id=3, ok=True, value={"c0": 42})

    def test_error_response(self):
        response = error_response(9, "command", "unknown command 'zap'")
        decoded = decode(encode_response(response))
        assert not decoded.ok
        assert decoded.error == {
            "type": "command", "message": "unknown command 'zap'",
        }

    def test_event(self):
        event = Event(name="verify_status", session="alice",
                      data={"state": "running"})
        decoded = decode(encode_event(event))
        assert decoded == event

    def test_one_line_per_message(self):
        line = encode_request(Request(id=1, cmd="ping"))
        assert line.endswith("\n")
        assert "\n" not in line[:-1]

    def test_bytes_input(self):
        line = encode_request(Request(id=1, cmd="ping")).encode()
        assert decode(line) == Request(id=1, cmd="ping")


class TestRejects:
    def test_not_json(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode("instPipe p0, stage0\n")

    def test_not_an_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode("[1, 2, 3]\n")

    def test_unclassifiable(self):
        with pytest.raises(ProtocolError, match="neither"):
            decode('{"hello": "world"}\n')

    def test_request_without_int_id(self):
        with pytest.raises(ProtocolError, match="id"):
            decode('{"cmd": "ping", "id": "one"}\n')
        with pytest.raises(ProtocolError, match="id"):
            decode('{"cmd": "ping", "id": true}\n')

    def test_empty_cmd(self):
        with pytest.raises(ProtocolError, match="cmd"):
            decode('{"cmd": "", "id": 1}\n')

    def test_oversized_line(self):
        big = json.dumps(
            {"id": 1, "cmd": "open", "source": "x" * protocol.MAX_LINE_BYTES}
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            decode(big)

    def test_bad_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode(b'{"cmd": "ping", "id": 1, "x": "\xff\xfe"}\n')

    def test_error_response_needs_error_object(self):
        with pytest.raises(ProtocolError, match="error"):
            decode('{"id": 1, "ok": false}\n')


class TestToJsonable:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert to_jsonable(value) == value

    def test_containers_recurse(self):
        assert to_jsonable({"a": (1, 2), "b": {3, 1}}) == {
            "a": [1, 2], "b": [1, 3],
        }
        assert to_jsonable([{"k": frozenset(["b", "a"])}]) == [
            {"k": ["a", "b"]}
        ]

    def test_dataclasses_are_tagged(self):
        @dataclasses.dataclass
        class Thing:
            name: str
            sizes: tuple

        out = to_jsonable(Thing(name="t", sizes=(1, 2)))
        assert out == {"_type": "Thing", "name": "t", "sizes": [1, 2]}

    def test_non_string_keys_coerced(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_unknown_objects_fall_back_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert to_jsonable(Opaque()) == "<opaque>"

    def test_depth_capped(self):
        nested = value = {}
        for _ in range(20):
            value["next"] = {}
            value = value["next"]
        out = to_jsonable(nested)
        # Must terminate and produce *something* JSON-safe.
        json.dumps(out)

    def test_result_is_json_serializable(self):
        from repro.live.hotreload import SwapReport

        report = SwapReport(swapped_instances=2,
                            modules_changed={"b", "a"})
        out = to_jsonable(report)
        json.dumps(out)
        assert out["modules_changed"] == ["a", "b"]
        assert out["_type"] == "SwapReport"
