"""Differential fuzzing of the sanitizer over the clean corpus.

Reuses the generators from :mod:`tests.test_fuzz_codegen` and
:mod:`tests.test_fuzz_hierarchy`, recompiled with instrumentation in
``report`` mode.  Two properties must hold on every example:

* value transparency — the sanitized pipe agrees bit-for-bit with the
  clean pipe (the hooks never perturb simulation semantics);
* no invented findings — uninit-read, oob-index, and nb-write-conflict
  never fire on a cold, in-bounds, single-writer corpus, and
  trunc-overflow fires exactly when the reference interpreter says the
  output assignment actually dropped nonzero bits.

Both fuzzers also run with proof-driven check elision active
(``repro.sanitize.elide``, through the pass pipeline): the elided
build must agree bit-for-bit with the clean build AND report exactly
the hit counters of the unelided build — on the clean corpus and on a
seeded-bug corpus where findings genuinely fire.  Elision removing a
check that would have reported is the bug class these pin down.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import compile_design
from repro.codegen.pygen import compile_netlist
from repro.hdl import elaborate, parse
from repro.hdl.parser import parse_expr
from repro.sanitize import (
    SAN_NB_CONFLICT,
    SAN_OOB,
    SAN_TRUNC,
    SAN_UNINIT,
    SanitizerRuntime,
)
from repro.sim import Pipe
from tests.test_fuzz_codegen import (
    OUT_WIDTH,
    STIMULI,
    expr_text,
    module_for,
    ref_eval,
)
from tests.test_fuzz_hierarchy import random_design, stimulus


def sanitized_pipe(source, top):
    runtime = SanitizerRuntime(mode="report")
    netlist = elaborate(parse(source), top)
    library = compile_netlist(netlist, sanitize=True, runtime=runtime)
    return Pipe(netlist.top, library), runtime


def pipeline_pipe(source, top, san_elide=True, opt="none"):
    """Sanitized build through the pass pipeline (elision on/off)."""
    from repro.passes import run_opt_pipeline

    runtime = SanitizerRuntime(mode="report")
    netlist = elaborate(parse(source), top)
    library = run_opt_pipeline(
        netlist, opt=opt, sanitize=True, sanitize_runtime=runtime,
        san_elide=san_elide,
    )
    return Pipe(netlist.top, library), library, runtime


class TestExpressionFuzzSanitized:
    @given(expr=expr_text())
    @settings(max_examples=60, deadline=None)
    def test_report_mode_is_value_transparent(self, expr):
        source = module_for(expr)
        netlist, library = compile_design(source, "m")
        clean = Pipe(netlist.top, library)
        pipe, runtime = sanitized_pipe(source, "m")
        tree = parse_expr(expr)
        expect_trunc = False
        for env in STIMULI:
            clean.set_inputs(**env)
            pipe.set_inputs(**env)
            assert pipe.eval()["y"] == clean.eval()["y"], expr
            if ref_eval(tree, env) >> OUT_WIDTH:
                expect_trunc = True
        # The cold corpus is clean for every stateful check...
        assert runtime.hits[SAN_UNINIT] == 0, expr
        assert runtime.hits[SAN_OOB] == 0, expr
        assert runtime.hits[SAN_NB_CONFLICT] == 0, expr
        # ...and truncation fires exactly when the reference semantics
        # say the (only) assignment dropped nonzero bits.
        assert (runtime.hits[SAN_TRUNC] > 0) == expect_trunc, expr


class TestHierarchyFuzzSanitized:
    @given(source=random_design(), stim=stimulus())
    @settings(max_examples=25, deadline=None)
    def test_clean_corpus_has_zero_findings(self, source, stim):
        netlist, library = compile_design(source, "top")
        clean = Pipe(netlist.top, library)
        pipe, runtime = sanitized_pipe(source, "top")
        for rst, x in stim:
            clean.set_inputs(rst=int(rst), x=x)
            pipe.set_inputs(rst=int(rst), x=x)
            assert pipe.eval() == clean.eval(), source
            clean.tick()
            pipe.tick()
        assert runtime.findings == [], source
        assert all(count == 0 for count in runtime.hits.values()), source


class TestExpressionFuzzElided:
    @given(expr=expr_text())
    @settings(max_examples=60, deadline=None)
    def test_elision_is_value_and_finding_transparent(self, expr):
        # The expression corpus doubles as the trunc-overflow seeded
        # corpus: module_for() assigns into a fixed-width output, so a
        # slice of the examples genuinely fires trunc findings.
        source = module_for(expr)
        netlist, library = compile_design(source, "m")
        clean = Pipe(netlist.top, library)
        elided, elided_lib, e_rt = pipeline_pipe(source, "m")
        full, full_lib, f_rt = pipeline_pipe(source, "m", san_elide=False)
        for env in STIMULI:
            clean.set_inputs(**env)
            elided.set_inputs(**env)
            full.set_inputs(**env)
            y = clean.eval()["y"]
            assert elided.eval()["y"] == y, expr
            assert full.eval()["y"] == y, expr
        # Bit-exact is necessary but not sufficient: elision must not
        # change WHAT fires either.
        assert e_rt.hits == f_rt.hits, expr
        (full_mod,) = full_lib.values()
        assert full_mod.san_elided == 0


class TestHierarchyFuzzElided:
    @given(source=random_design(), stim=stimulus())
    @settings(max_examples=25, deadline=None)
    def test_elided_hierarchy_bit_exact_with_equal_findings(
        self, source, stim
    ):
        netlist, library = compile_design(source, "top")
        clean = Pipe(netlist.top, library)
        elided, _, e_rt = pipeline_pipe(source, "top", opt="full")
        full, _, f_rt = pipeline_pipe(
            source, "top", san_elide=False, opt="full"
        )
        for rst, x in stim:
            for pipe in (clean, elided, full):
                pipe.set_inputs(rst=int(rst), x=x)
            out = clean.eval()
            assert elided.eval() == out, source
            assert full.eval() == out, source
            for pipe in (clean, elided, full):
                pipe.tick()
        assert e_rt.hits == f_rt.hits, source


# Seeded-bug corpus: designs where findings MUST fire.  Elision is
# only admissible if the elided build reports the identical hits.

# A 4-word memory walked by a 3-bit counter: oob fires on the upper
# half of the count range.
SEEDED_OOB_MEM = """
module top (
  input clk,
  input rst,
  input [7:0] x,
  output [7:0] out
);
  reg [7:0] mem [0:3];
  reg [2:0] idx_q;
  assign out = mem[idx_q];
  always @(posedge clk) begin
    mem[idx_q[1:0]] <= x;
    if (rst) idx_q <= 0;
    else idx_q <= idx_q + 3'd1;
  end
endmodule
"""

# An input-driven bit index over an 8-bit signal: oob fires whenever
# x[3:0] > 7 (unprovable either way, so the site must stay).
SEEDED_OOB_BIT = """
module top (
  input clk,
  input rst,
  input [7:0] x,
  output out
);
  wire [7:0] word;
  assign word = x ^ 8'h5A;
  assign out = word[x[3:0]];
endmodule
"""

# A genuinely lossy truncation: x + 255 can carry into bit 8.
SEEDED_TRUNC = """
module top (
  input clk,
  input rst,
  input [7:0] x,
  output [7:0] out
);
  wire [8:0] wide;
  assign wide = {1'b0, x} + 9'd255;
  assign out = wide;
endmodule
"""


class TestSeededBugsElided:
    @pytest.mark.parametrize("source,kind", [
        (SEEDED_OOB_MEM, SAN_OOB),
        (SEEDED_OOB_BIT, SAN_OOB),
        (SEEDED_TRUNC, SAN_TRUNC),
    ])
    @pytest.mark.parametrize("opt", ["none", "full"])
    def test_elision_never_suppresses_a_seeded_finding(
        self, source, kind, opt
    ):
        elided, _, e_rt = pipeline_pipe(source, "top", opt=opt)
        full, _, f_rt = pipeline_pipe(
            source, "top", san_elide=False, opt=opt
        )
        for cycle in range(16):
            x = (cycle * 37 + 11) & 0xFF
            for pipe in (elided, full):
                pipe.set_inputs(rst=0, x=x)
            assert elided.eval() == full.eval(), source
            for pipe in (elided, full):
                pipe.tick()
        assert f_rt.hits[kind] > 0, "corpus failed to seed the bug"
        assert e_rt.hits == f_rt.hits, source

    def test_hot_reload_uninit_read_survives_elision(self):
        # The acceptance scenario from test_sanitize, but compiled
        # through the pipeline with elision + full opt: the swapped-in
        # shadow register is NOT provably constant (it latches the
        # counter), so its read keeps the rr check and the uninit
        # finding still fires on the first post-swap cycle.
        from repro.live.session import LiveSession
        from repro.sim.testbench import reset_sequence
        from tests.test_sanitize import EDIT, SRC

        session = LiveSession(
            SRC, checkpoint_interval=10, sanitize="report", opt="full"
        )
        tb = session.load_testbench(reset_sequence("rst", cycles=2))
        session.inst_pipe("p0", session.stage_handle_for("top"))
        session.run(tb, "p0", 25)
        session.apply_change(EDIT)
        session.run(tb, "p0", 1)
        findings = session.sanitize_runtime.findings
        assert any(f.kind == SAN_UNINIT for f in findings)
