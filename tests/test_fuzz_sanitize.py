"""Differential fuzzing of the sanitizer over the clean corpus.

Reuses the generators from :mod:`tests.test_fuzz_codegen` and
:mod:`tests.test_fuzz_hierarchy`, recompiled with instrumentation in
``report`` mode.  Two properties must hold on every example:

* value transparency — the sanitized pipe agrees bit-for-bit with the
  clean pipe (the hooks never perturb simulation semantics);
* no invented findings — uninit-read, oob-index, and nb-write-conflict
  never fire on a cold, in-bounds, single-writer corpus, and
  trunc-overflow fires exactly when the reference interpreter says the
  output assignment actually dropped nonzero bits.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro import compile_design
from repro.codegen.pygen import compile_netlist
from repro.hdl import elaborate, parse
from repro.hdl.parser import parse_expr
from repro.sanitize import (
    SAN_NB_CONFLICT,
    SAN_OOB,
    SAN_TRUNC,
    SAN_UNINIT,
    SanitizerRuntime,
)
from repro.sim import Pipe
from tests.test_fuzz_codegen import (
    OUT_WIDTH,
    STIMULI,
    expr_text,
    module_for,
    ref_eval,
)
from tests.test_fuzz_hierarchy import random_design, stimulus


def sanitized_pipe(source, top):
    runtime = SanitizerRuntime(mode="report")
    netlist = elaborate(parse(source), top)
    library = compile_netlist(netlist, sanitize=True, runtime=runtime)
    return Pipe(netlist.top, library), runtime


class TestExpressionFuzzSanitized:
    @given(expr=expr_text())
    @settings(max_examples=60, deadline=None)
    def test_report_mode_is_value_transparent(self, expr):
        source = module_for(expr)
        netlist, library = compile_design(source, "m")
        clean = Pipe(netlist.top, library)
        pipe, runtime = sanitized_pipe(source, "m")
        tree = parse_expr(expr)
        expect_trunc = False
        for env in STIMULI:
            clean.set_inputs(**env)
            pipe.set_inputs(**env)
            assert pipe.eval()["y"] == clean.eval()["y"], expr
            if ref_eval(tree, env) >> OUT_WIDTH:
                expect_trunc = True
        # The cold corpus is clean for every stateful check...
        assert runtime.hits[SAN_UNINIT] == 0, expr
        assert runtime.hits[SAN_OOB] == 0, expr
        assert runtime.hits[SAN_NB_CONFLICT] == 0, expr
        # ...and truncation fires exactly when the reference semantics
        # say the (only) assignment dropped nonzero bits.
        assert (runtime.hits[SAN_TRUNC] > 0) == expect_trunc, expr


class TestHierarchyFuzzSanitized:
    @given(source=random_design(), stim=stimulus())
    @settings(max_examples=25, deadline=None)
    def test_clean_corpus_has_zero_findings(self, source, stim):
        netlist, library = compile_design(source, "top")
        clean = Pipe(netlist.top, library)
        pipe, runtime = sanitized_pipe(source, "top")
        for rst, x in stim:
            clean.set_inputs(rst=int(rst), x=x)
            pipe.set_inputs(rst=int(rst), x=x)
            assert pipe.eval() == clean.eval(), source
            clean.tick()
            pipe.tick()
        assert runtime.findings == [], source
        assert all(count == 0 for count in runtime.hits.values()), source
