"""Patch library tests: every curated bug really is a bug.

Each patch is injected into the RTL and shown to change observable
behaviour on a sensitized program — i.e. the Fig. 8 bench swaps real
logic, not dead code.
"""

import pytest

from repro.codegen.pygen import compile_netlist
from repro.hdl import elaborate, parse
from repro.riscv import assemble, build_pgas_source
from repro.riscv.patches import PATCHES, get_patch, single_stage_patches
from repro.sim import Pipe

# Programs chosen to expose each bug; result read from 0x200.
SENSITIZERS = {
    "ex-forward-priority": """
    li   t0, 1
    addi t0, t0, 10
    addi t0, t0, 100
    sd   t0, 0x200(zero)
    ecall
""",
    "id-imm-sign": """
    li   t0, 100
    addi t0, t0, -1
    sd   t0, 0x200(zero)
    ecall
""",
    "ex-branch-target": """
    li   a0, 1
    j    over
    nop
over:
    li   a0, 2
    sd   a0, 0x200(zero)
    ecall
""",
    "mem-load-sign": """
    li   t0, -5
    sw   t0, 0x100(zero)
    lw   t1, 0x100(zero)
    sd   t1, 0x200(zero)
    ecall
""",
    "id-wb-bypass-missing": """
    addi t0, zero, 5
    nop
    nop
    add  t1, t0, t0
    sd   t1, 0x200(zero)
    ecall
""",
    "ex-sltu-signed": """
    li   t0, -1
    li   t1, 1
    sltu t2, t1, t0
    sd   t2, 0x200(zero)
    ecall
""",
    "wb-retire-count": """
    nop
    nop
    sd   zero, 0x200(zero)
    ecall
""",
}


def run_design(source, program_src, max_cycles=400):
    netlist = elaborate(parse(source), "pgas_mesh_1x1")
    library = compile_netlist(netlist)
    pipe = Pipe(netlist.top, library)
    program = assemble(program_src)
    pipe.find("n_0.u_mem").write_memory("mem", 0, program.as_mem64(4096))
    pipe.set_inputs(rst=1)
    pipe.step(2)
    pipe.set_inputs(rst=0)
    pipe.run_until(lambda p, o: o["all_halted"] == 1, max_cycles)
    result = pipe.find("n_0.u_mem").memory("mem")[0x200 // 8]
    retired = pipe.find("n_0.u_core.u_wb").peek_reg("retired_q")
    return result, retired, pipe


class TestPatchMechanics:
    def test_every_patch_applies_to_pristine_source(self):
        source = build_pgas_source(1)
        for name, patch in PATCHES.items():
            buggy = patch.inject(source)
            assert buggy != source, name
            assert patch.is_injected(buggy), name
            assert patch.fix(buggy) == source, name

    def test_inject_twice_rejected_semantics(self):
        source = build_pgas_source(1)
        patch = get_patch("id-imm-sign")
        buggy = patch.inject(source)
        with pytest.raises(ValueError):
            patch.inject(buggy)

    def test_unknown_patch_rejected(self):
        with pytest.raises(KeyError):
            get_patch("not-a-bug")

    def test_single_stage_patches_subset(self):
        names = {p.name for p in single_stage_patches()}
        assert "id-imm-sign" in names
        assert "id-wb-bypass-missing" in names
        assert "node-remote-decode" not in names

    def test_buggy_source_still_compiles(self):
        source = build_pgas_source(1)
        for name, patch in PATCHES.items():
            netlist = elaborate(parse(patch.inject(source)), "pgas_mesh_1x1")
            compile_netlist(netlist)  # must not raise


@pytest.mark.parametrize("name", sorted(SENSITIZERS))
def test_patch_changes_observable_behavior(name):
    patch = get_patch(name)
    program = SENSITIZERS[name]
    source = build_pgas_source(1)
    good_result, good_retired, _ = run_design(source, program)
    bad_result, bad_retired, _ = run_design(patch.inject(source), program)
    assert (good_result, good_retired) != (bad_result, bad_retired), (
        f"{name}: sensitizer did not expose the bug"
    )


def test_if_redirect_priority_bug_observable():
    """Needs a branch coinciding with a load-use stall."""
    patch = get_patch("if-redirect-priority")
    program = """
    li   t0, 0
    li   t1, 1
    sd   t1, 0x100(zero)
    ld   t2, 0x100(zero)
    beqz t2, wrong      # load-use stall + branch back-to-back
    li   a0, 1
    j    out
wrong:
    li   a0, 2
out:
    sd   a0, 0x200(zero)
    ecall
"""
    source = build_pgas_source(1)
    good_result, _, _ = run_design(source, program)
    assert good_result == 1
    # The bug may or may not fire on this exact schedule; at minimum the
    # patched design must still compile and halt.
    bad_result, _, pipe = run_design(patch.inject(source), program)
    assert pipe.outputs()["all_halted"] == 1


def test_node_remote_decode_bug_observable():
    """Self-addressed global stores leak onto the network when broken:
    the write lands *after* the core halts instead of locally at the
    store's MEM cycle."""
    from repro.riscv import global_address

    patch = get_patch("node-remote-decode")
    addr = global_address(0, 0x200)
    program = f"""
    li   t0, 777
    li   t1, {addr}
    sd   t0, 0(t1)
    ecall
"""
    source = build_pgas_source(1)

    # Good design: the value is present the moment the core halts.
    good_result, _, _ = run_design(source, program)
    assert good_result == 777

    # Buggy design: at halt time the store is still circling the ring.
    bad_result, _, pipe = run_design(patch.inject(source), program)
    assert bad_result == 0
    # ...and it arrives a couple of cycles later via the ring.
    pipe.step(5)
    assert pipe.find("n_0.u_mem").memory("mem")[0x200 // 8] == 777
