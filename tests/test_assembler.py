"""Assembler tests: encodings, pseudo-instructions, labels, directives.

Encoding correctness is checked by executing the assembled words on the
golden ISS (which decodes independently through repro.riscv.encode's
field extractors) and, for immediates, by decode round-trips.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.riscv import encode, isa
from repro.riscv.assembler import AsmError, assemble
from repro.riscv.golden import GoldenCore


def run(source, max_instructions=10_000, **kwargs):
    program = assemble(source)
    core = GoldenCore(**kwargs)
    core.load_program(program.words)
    core.run(max_instructions)
    return core


class TestBasicEncoding:
    def test_addi(self):
        core = run("addi a0, zero, 42\necall")
        assert core.reg(10) == 42

    def test_negative_immediate(self):
        core = run("addi a0, zero, -1\necall")
        assert core.reg(10) == isa.MASK64

    def test_register_ops(self):
        core = run("""
    addi t0, zero, 12
    addi t1, zero, 10
    add  a0, t0, t1
    sub  a1, t0, t1
    and  a2, t0, t1
    or   a3, t0, t1
    xor  a4, t0, t1
    ecall
""")
        assert core.reg(10) == 22
        assert core.reg(11) == 2
        assert core.reg(12) == 8
        assert core.reg(13) == 14
        assert core.reg(14) == 6

    def test_shifts(self):
        core = run("""
    addi t0, zero, 1
    slli a0, t0, 12
    addi t1, zero, -8
    srai a1, t1, 1
    srli a2, t1, 60
    ecall
""")
        assert core.reg(10) == 1 << 12
        assert core.reg(11) == isa.to_unsigned64(-4)
        assert core.reg(12) == 15

    def test_slt_family(self):
        core = run("""
    addi t0, zero, -1
    addi t1, zero, 1
    slt  a0, t0, t1
    sltu a1, t0, t1
    slti a2, t0, 0
    sltiu a3, t1, 2
    ecall
""")
        assert core.reg(10) == 1  # -1 < 1 signed
        assert core.reg(11) == 0  # 0xFFFF.. > 1 unsigned
        assert core.reg(12) == 1
        assert core.reg(13) == 1

    def test_lui_auipc(self):
        core = run("lui a0, 0x12345\nauipc a1, 0\necall")
        assert core.reg(10) == 0x12345000
        assert core.reg(11) == 4  # auipc at pc=4

    def test_word_ops_sign_extend(self):
        core = run("""
    lui  t0, 0x80000
    addiw a0, t0, 0
    addi t1, zero, 1
    subw a1, zero, t1
    ecall
""")
        assert core.reg(10) == isa.to_unsigned64(-(1 << 31))
        assert core.reg(11) == isa.MASK64  # -1


class TestMemoryInstructions:
    def test_store_load_roundtrip_all_sizes(self):
        core = run("""
    li   t0, 0x1122334455667788
    sd   t0, 0x100(zero)
    ld   a0, 0x100(zero)
    lw   a1, 0x100(zero)
    lwu  a2, 0x100(zero)
    lh   a3, 0x100(zero)
    lhu  a4, 0x100(zero)
    lb   a5, 0x100(zero)
    lbu  a6, 0x100(zero)
    ecall
""")
        assert core.reg(10) == 0x1122334455667788
        assert core.reg(11) == 0x55667788
        assert core.reg(12) == 0x55667788
        assert core.reg(13) == 0x7788
        assert core.reg(14) == 0x7788
        assert core.reg(15) == isa.to_unsigned64(isa.sign_extend(0x88, 8))
        assert core.reg(16) == 0x88

    def test_sub_word_stores_merge(self):
        core = run("""
    li   t0, -1
    sd   t0, 0x200(zero)
    sb   zero, 0x202(zero)
    ld   a0, 0x200(zero)
    ecall
""")
        assert core.reg(10) == 0xFFFFFFFFFF00FFFF

    def test_offset_addressing(self):
        core = run("""
    li   t0, 0x300
    li   t1, 77
    sd   t1, 8(t0)
    ld   a0, 8(t0)
    ecall
""")
        assert core.reg(10) == 77


class TestControlFlow:
    def test_forward_and_backward_branches(self):
        core = run("""
    li   t0, 5
    li   a0, 0
loop:
    addi a0, a0, 2
    addi t0, t0, -1
    bnez t0, loop
    ecall
""")
        assert core.reg(10) == 10

    def test_all_branch_conditions(self):
        core = run("""
    li t0, -1
    li t1, 1
    li a0, 0
    beq  t0, t0, l1
    ecall
l1: addi a0, a0, 1
    bne  t0, t1, l2
    ecall
l2: addi a0, a0, 1
    blt  t0, t1, l3
    ecall
l3: addi a0, a0, 1
    bge  t1, t0, l4
    ecall
l4: addi a0, a0, 1
    bltu t1, t0, l5
    ecall
l5: addi a0, a0, 1
    bgeu t0, t1, l6
    ecall
l6: addi a0, a0, 1
    ecall
""")
        assert core.reg(10) == 6

    def test_jal_links_and_jumps(self):
        core = run("""
    jal  ra, target
    ecall
target:
    mv   a0, ra
    ecall
""")
        assert core.reg(10) == 4

    def test_call_ret(self):
        core = run("""
    li   a0, 0
    call fn
    addi a0, a0, 1
    ecall
fn:
    addi a0, a0, 10
    ret
""")
        assert core.reg(10) == 11

    def test_jalr_computed_target(self):
        core = run("""
    la   t0, target
    jalr ra, t0, 0
    ecall
target:
    li   a0, 99
    ecall
""")
        assert core.reg(10) == 99


class TestPseudoInstructions:
    def test_li_small(self):
        assert assemble("li a0, 5").words == [
            encode.encode_i(isa.OP_IMM, 10, 0, 0, 5)
        ]

    def test_li_32bit(self):
        core = run("li a0, 0x12345678\necall")
        assert core.reg(10) == 0x12345678

    def test_li_negative_32bit(self):
        core = run("li a0, -305419896\necall")
        assert core.reg(10) == isa.to_unsigned64(-305419896)

    def test_li_64bit(self):
        core = run("li a0, 0x123456789abcdef0\necall")
        assert core.reg(10) == 0x123456789ABCDEF0

    @given(value=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    @settings(max_examples=40, deadline=None)
    def test_li_roundtrip_property(self, value):
        core = run(f"li a0, {value}\necall")
        assert core.reg(10) == isa.to_unsigned64(value)

    def test_mv_not_neg(self):
        core = run("""
    li t0, 21
    mv a0, t0
    not a1, t0
    neg a2, t0
    ecall
""")
        assert core.reg(10) == 21
        assert core.reg(11) == isa.to_unsigned64(~21)
        assert core.reg(12) == isa.to_unsigned64(-21)

    def test_seqz_snez(self):
        core = run("""
    li t0, 0
    li t1, 7
    seqz a0, t0
    seqz a1, t1
    snez a2, t0
    snez a3, t1
    ecall
""")
        assert [core.reg(r) for r in (10, 11, 12, 13)] == [1, 0, 0, 1]

    def test_nop_is_canonical(self):
        assert assemble("nop").words == [isa.NOP]


class TestDirectivesAndErrors:
    def test_org_pads(self):
        program = assemble(".org 0x10\naddi a0, zero, 1")
        assert len(program.words) == 5
        assert program.words[:4] == [0, 0, 0, 0]

    def test_word_and_dword_data(self):
        program = assemble(".word 0xAABBCCDD\n.dword 0x1122334455667788")
        assert program.words[0] == 0xAABBCCDD
        assert program.words[1] == 0x55667788
        assert program.words[2] == 0x11223344

    def test_equ_constants(self):
        core = run(".equ MAGIC, 1234\nli a0, MAGIC\necall")
        assert core.reg(10) == 1234

    def test_labels_with_equal_addresses(self):
        program = assemble("a:\nb:\n  nop")
        assert program.labels["a"] == program.labels["b"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble("x:\nnop\nx:\nnop")

    def test_unknown_instruction_rejected(self):
        with pytest.raises(AsmError, match="unknown instruction"):
            assemble("frobnicate a0, a1")

    def test_unknown_register_rejected(self):
        with pytest.raises(AsmError, match="unknown register"):
            assemble("addi q9, zero, 1")

    def test_immediate_overflow_rejected(self):
        with pytest.raises(Exception):
            assemble("addi a0, zero, 5000")

    def test_backwards_org_rejected(self):
        with pytest.raises(AsmError):
            assemble("nop\n.org 0x0\nnop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AsmError):
            assemble("j nowhere")

    def test_mem64_packing(self):
        program = assemble(".word 0x11111111, 0x22222222, 0x33333333")
        mem = program.as_mem64(4)
        assert mem[0] == 0x2222222211111111
        assert mem[1] == 0x33333333


class TestImmediateDecoders:
    @given(imm=st.integers(min_value=-2048, max_value=2047))
    @settings(max_examples=40, deadline=None)
    def test_i_immediate_roundtrip(self, imm):
        word = encode.encode_i(isa.OP_IMM, 1, 0, 2, imm)
        assert encode.imm_i(word) == imm

    @given(imm=st.integers(min_value=-2048, max_value=2047))
    @settings(max_examples=40, deadline=None)
    def test_s_immediate_roundtrip(self, imm):
        word = encode.encode_s(isa.OP_STORE, 3, 1, 2, imm)
        assert encode.imm_s(word) == imm

    @given(imm=st.integers(min_value=-2048, max_value=2047))
    @settings(max_examples=40, deadline=None)
    def test_b_immediate_roundtrip(self, imm):
        offset = imm * 2
        word = encode.encode_b(isa.OP_BRANCH, 0, 1, 2, offset)
        assert encode.imm_b(word) == offset

    @given(imm=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    @settings(max_examples=40, deadline=None)
    def test_j_immediate_roundtrip(self, imm):
        offset = imm * 2
        word = encode.encode_j(isa.OP_JAL, 1, offset)
        assert encode.imm_j(word) == offset


class TestDataAndAddressing:
    def test_la_to_data_label(self):
        core = run("""
    la   t0, table
    ld   a0, 0(t0)
    ld   a1, 8(t0)
    ecall
.org 0x100
table:
.dword 111, 222
""")
        assert core.reg(10) == 111
        assert core.reg(11) == 222

    def test_zero_directive_reserves_space(self):
        program = assemble("nop\n.zero 16\nnop")
        assert len(program.words) == 6
        assert program.words[1:5] == [0, 0, 0, 0]

    def test_label_arithmetic_via_auipc_pattern(self):
        core = run("""
    auipc t0, 0          # t0 = pc of this instruction
    addi  a0, t0, 0
    ecall
""")
        assert core.reg(10) == 0

    def test_equ_in_memory_operand(self):
        core = run("""
.equ SLOT, 0x140
    li   t0, 99
    sd   t0, SLOT(zero)
    ld   a0, SLOT(zero)
    ecall
""")
        assert core.reg(10) == 99

    def test_branch_to_numeric_address(self):
        core = run("""
    li   a0, 1
    j    12
    li   a0, 2
    ecall
""")
        # Jump to byte address 12 skips the second li.
        assert core.reg(10) == 1

    def test_program_too_big_rejected(self):
        program = assemble(".zero 32768\nnop")
        with pytest.raises(AsmError, match="exceeds memory"):
            program.as_mem64(4096)
