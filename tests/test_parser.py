"""Parser unit tests: grammar coverage and error reporting."""

import pytest

from repro.hdl import ast_nodes as ast
from repro.hdl.errors import ParseError
from repro.hdl.parser import parse, parse_expr


def one_module(source, name="m"):
    return parse(source).modules[name]


class TestModuleStructure:
    def test_empty_module(self):
        m = one_module("module m (input clk); endmodule")
        assert m.name == "m"
        assert [p.name for p in m.ports] == ["clk"]

    def test_module_without_ports(self):
        m = one_module("module m (); endmodule")
        assert m.ports == []

    def test_multiple_modules(self):
        d = parse("module a (input x); endmodule module b (input y); endmodule")
        assert set(d.modules) == {"a", "b"}

    def test_duplicate_module_rejected(self):
        with pytest.raises(ParseError):
            parse("module a (input x); endmodule module a (input y); endmodule")

    def test_unterminated_module_rejected(self):
        with pytest.raises(ParseError):
            parse("module a (input x); wire w;")

    def test_module_line_numbers(self):
        d = parse("\n\nmodule a (input x); endmodule")
        assert d.modules["a"].line == 3


class TestPorts:
    def test_directions_and_widths(self):
        m = one_module(
            "module m (input [7:0] a, output [15:0] b, input c); endmodule"
        )
        directions = [(p.direction, p.name) for p in m.ports]
        assert directions == [("input", "a"), ("output", "b"), ("input", "c")]
        assert isinstance(m.ports[0].msb, ast.Num)
        assert m.ports[2].msb is None

    def test_direction_carries_over_commas(self):
        m = one_module("module m (input a, b, output c); endmodule")
        assert [(p.direction, p.name) for p in m.ports] == [
            ("input", "a"), ("input", "b"), ("output", "c"),
        ]

    def test_output_reg_port(self):
        m = one_module("module m (input clk, output reg [3:0] q); endmodule")
        assert m.ports[1].is_reg

    def test_missing_direction_rejected(self):
        with pytest.raises(ParseError):
            parse("module m (a, b); endmodule")


class TestParameters:
    def test_header_parameters(self):
        m = one_module("module m #(parameter W = 8, D = 4) (input clk); endmodule")
        assert [(p.name, p.default.value) for p in m.params] == [("W", 8), ("D", 4)]

    def test_repeated_parameter_keyword(self):
        m = one_module(
            "module m #(parameter W = 8, parameter D = 4) (input clk); endmodule"
        )
        assert [p.name for p in m.params] == ["W", "D"]

    def test_body_parameter_and_localparam(self):
        m = one_module(
            "module m (input clk); parameter A = 1; localparam B = A + 1; endmodule"
        )
        assert [(p.name, p.is_local) for p in m.params] == [
            ("A", False), ("B", True),
        ]

    def test_parameter_expression_default(self):
        m = one_module("module m #(parameter W = 4 * 2 + 1) (input clk); endmodule")
        assert isinstance(m.params[0].default, ast.Binary)


class TestDeclarationsAndAssigns:
    def test_wire_and_reg(self):
        m = one_module(
            "module m (input clk); wire [7:0] w; reg r, s; endmodule"
        )
        assert [(n.kind, n.name) for n in m.nets] == [
            ("wire", "w"), ("reg", "r"), ("reg", "s"),
        ]

    def test_memory_declaration(self):
        m = one_module(
            "module m (input clk); reg [63:0] mem [0:4095]; endmodule"
        )
        assert m.nets[0].is_memory

    def test_continuous_assign(self):
        m = one_module("module m (input a, output y); assign y = a; endmodule")
        assert m.assigns[0].target.name == "y"

    def test_multiple_assigns_one_statement(self):
        m = one_module(
            "module m (input a, output x, output y); assign x = a, y = a; endmodule"
        )
        assert len(m.assigns) == 2


class TestAlwaysBlocks:
    def test_posedge_block(self):
        m = one_module(
            "module m (input clk); reg q; always @(posedge clk) q <= 1; endmodule"
        )
        assert m.always_blocks[0].kind == "seq"
        assert m.always_blocks[0].clock == "clk"

    def test_comb_block(self):
        m = one_module(
            "module m (input a); reg q; always @(*) q = a; endmodule"
        )
        assert m.always_blocks[0].kind == "comb"

    def test_nonblocking_in_comb_rejected(self):
        with pytest.raises(ParseError):
            parse("module m (input a); reg q; always @(*) q <= a; endmodule")

    def test_blocking_in_seq_rejected(self):
        with pytest.raises(ParseError):
            parse(
                "module m (input clk); reg q; always @(posedge clk) q = 1; endmodule"
            )

    def test_if_else_chain(self):
        m = one_module("""
module m (input clk, input a, input b);
  reg q;
  always @(posedge clk) begin
    if (a) q <= 1;
    else if (b) q <= 0;
    else q <= q;
  end
endmodule
""")
        stmt = m.always_blocks[0].body[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.If)

    def test_case_with_default(self):
        m = one_module("""
module m (input clk, input [1:0] sel);
  reg [3:0] q;
  always @(posedge clk) begin
    case (sel)
      2'd0: q <= 1;
      2'd1, 2'd2: q <= 2;
      default: q <= 0;
    endcase
  end
endmodule
""")
        case = m.always_blocks[0].body[0]
        assert isinstance(case, ast.Case)
        assert [len(labels) for labels, _ in case.arms] == [1, 2, 0]

    def test_partial_bit_assign(self):
        m = one_module("""
module m (input clk, input [2:0] i);
  reg [7:0] q;
  always @(posedge clk) q[i] <= 1;
endmodule
""")
        target = m.always_blocks[0].body[0].target
        assert target.index is not None

    def test_part_select_assign(self):
        m = one_module("""
module m (input clk);
  reg [7:0] q;
  always @(posedge clk) q[3:0] <= 4'd5;
endmodule
""")
        target = m.always_blocks[0].body[0].target
        assert target.msb is not None and target.lsb is not None


class TestInstances:
    def test_named_connections(self):
        m = one_module("""
module m (input clk, input [7:0] a, output [7:0] y);
  child #(.W(8)) u0 (.clk(clk), .in(a), .out(y));
endmodule
""")
        inst = m.instances[0]
        assert inst.module == "child"
        assert inst.name == "u0"
        assert set(inst.connections) == {"clk", "in", "out"}
        assert "W" in inst.param_overrides

    def test_unconnected_port_dropped(self):
        m = one_module("""
module m (input clk);
  child u0 (.clk(clk), .unused());
endmodule
""")
        assert set(m.instances[0].connections) == {"clk"}


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("a + b * c")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = parse_expr("a << 2 < b")
        assert e.op == "<"
        assert e.left.op == "<<"

    def test_logical_lowest(self):
        e = parse_expr("a == b && c == d")
        assert e.op == "&&"

    def test_ternary_right_associative(self):
        e = parse_expr("a ? b : c ? d : e")
        assert isinstance(e, ast.Ternary)
        assert isinstance(e.if_false, ast.Ternary)

    def test_parentheses_override(self):
        e = parse_expr("(a + b) * c")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_unary_operators(self):
        for op in ("!", "~", "-", "&", "|", "^"):
            e = parse_expr(f"{op}a")
            assert isinstance(e, ast.Unary) and e.op == op

    def test_unary_plus_is_noop(self):
        assert isinstance(parse_expr("+a"), ast.Id)

    def test_concat(self):
        e = parse_expr("{a, b, 2'b01}")
        assert isinstance(e, ast.Concat)
        assert len(e.parts) == 3

    def test_replication(self):
        e = parse_expr("{4{a}}")
        assert isinstance(e, ast.Repl)
        assert e.count.value == 4

    def test_replication_of_concat(self):
        e = parse_expr("{2{a, b}}")
        assert isinstance(e, ast.Repl)
        assert isinstance(e.value, ast.Concat)

    def test_nested_concat_with_replication(self):
        e = parse_expr("{{52{x[31]}}, x[31:20]}")
        assert isinstance(e, ast.Concat)
        assert isinstance(e.parts[0], ast.Repl)
        assert isinstance(e.parts[1], ast.Slice)

    def test_bit_select(self):
        e = parse_expr("a[3]")
        assert isinstance(e, ast.Index)

    def test_part_select(self):
        e = parse_expr("a[7:4]")
        assert isinstance(e, ast.Slice)

    def test_indexed_part_select(self):
        e = parse_expr("a[i +: 8]")
        assert isinstance(e, ast.IndexedPart)
        assert e.ascending

    def test_indexed_part_select_descending(self):
        e = parse_expr("a[i -: 8]")
        assert not e.ascending

    def test_signed_call(self):
        e = parse_expr("$signed(a) >>> 2")
        assert e.op == ">>>"
        assert isinstance(e.left, ast.SysCall)

    def test_unknown_syscall_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("$display(a)")

    def test_single_element_braces_collapse(self):
        assert isinstance(parse_expr("{a}"), ast.Id)
