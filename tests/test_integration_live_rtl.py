"""End-to-end integration: the paper's debugging story on the real
RISC-V workload.

A developer runs a PGAS simulation, hits a bug deep into the run, fixes
one pipeline-stage module, and gets an updated answer through checkpoint
reload + replay — then background verification repairs the checkpoint
history.  Exactly the Fig. 1(b) workflow.
"""

import pytest

from repro.live.session import LiveSession
from repro.riscv import build_pgas_source
from repro.riscv.patches import get_patch
from repro.riscv.programs import (
    boot_program,
    boot_program_spec,
    busy_counter,
    node_result,
)

# Counts DOWN from a large value, continuously publishing the counter.
# `addi t0, t0, -1` is exactly what the id-imm-sign bug breaks: the
# immediate zero-extends to +4095 and the countdown runs away upward.
COUNTDOWN = """
    li   s0, 1000000
loop:
    addi s0, s0, -1
    sd   s0, 0x200(zero)
    bnez s0, loop
    ecall
"""


@pytest.fixture(scope="module")
def buggy_session():
    """A session whose design carries the immediate-sign bug, with the
    countdown program and checkpoint history."""
    source = get_patch("id-imm-sign").inject(build_pgas_source(1))
    session = LiveSession(source, checkpoint_interval=50, reload_distance=60)
    session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_1x1"))
    tb = session.load_testbench(
        boot_program(COUNTDOWN, count=1),
        factory=boot_program_spec(COUNTDOWN, count=1),
    )
    session.run(tb, "uut", 220)
    return session, tb


def expected_countdown(cycle: int) -> int:
    """Reference counter value at a given cycle (fixed design).

    The loop body runs addi/sd/bnez with a 2-cycle redirect penalty:
    one decrement per 5 cycles after the ~7-cycle boot prologue.
    """
    iterations = max((cycle - 7) // 5 + 1, 0)
    return 1_000_000 - iterations


class TestLiveDebugLoop:
    def test_bug_is_visible_before_fix(self, buggy_session):
        session, _ = buggy_session
        pipe = session.pipe("uut")
        result = node_result(pipe, 0)
        # Broken decode: the counter ran UP from 1,000,000.
        assert result > 1_000_000

    def test_fix_through_live_loop(self, buggy_session):
        session, tb = buggy_session
        pipe = session.pipe("uut")
        stop_cycle = pipe.cycle
        assert len(session.store("uut")) >= 3

        patch = get_patch("id-imm-sign")
        report = session.apply_change(patch.fix(session.compiler.source))

        # The incremental path: only the decode stage recompiled.
        assert report.recompiled_keys == ["rv_id"]
        assert report.behavioral
        assert report.checkpoint_cycle is not None
        assert pipe.cycle == stop_cycle

        # The fast estimate replayed from a stale (buggy-history)
        # checkpoint: better than nothing, but still wrong — exactly
        # the situation §III-F's background verification exists for.
        estimate = node_result(pipe, 0)

        verdict = session.verify_consistency("uut", repair=True)
        assert not verdict.all_consistent
        assert verdict.divergence_cycle == 0
        assert session.verify_consistency("uut").all_consistent

        fixed = node_result(pipe, 0)
        assert fixed == expected_countdown(pipe.cycle)
        assert fixed < 1_000_000  # counting down now
        assert fixed != estimate or estimate < 1_000_000

    def test_continue_running_after_fix(self, buggy_session):
        session, tb = buggy_session
        pipe = session.pipe("uut")
        session.run(tb, "uut", 50)
        assert node_result(pipe, 0) == expected_countdown(pipe.cycle)

    def test_checkpoints_usable_after_repair(self, buggy_session):
        session, tb = buggy_session
        pipe = session.pipe("uut")
        checkpoint = session.store("uut").nearest_before(pipe.cycle)
        session.ldch("uut", checkpoint)
        assert pipe.cycle == checkpoint.cycle
        assert node_result(pipe, 0) == expected_countdown(pipe.cycle)


class TestWhatIfExploration:
    def test_copy_pipe_explores_alternate_future(self):
        """Paper §III-A 'what if': copy the pipe, poke state, compare."""
        session = LiveSession(build_pgas_source(1), checkpoint_interval=100)
        session.inst_pipe("main", session.stage_handle_for("pgas_mesh_1x1"))
        asm = busy_counter(1_000_000)
        tb = session.load_testbench(boot_program(asm, count=1))
        session.run(tb, "main", 100)

        session.copy_pipe("whatif", "main")
        whatif = session.pipe("whatif")
        # Inject the "what if": force the loop counter forward.
        core = whatif.find("n_0.u_core")
        rf = core.find("u_id").memory("rf")
        rf[9] = 5000  # s1 = loop count
        whatif.invalidate()
        session.run(tb, "whatif", 20)
        session.run(tb, "main", 20)
        assert node_result(whatif, 0) >= 5000
        assert node_result(session.pipe("main"), 0) < 5000
