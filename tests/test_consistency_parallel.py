"""Process-parallel consistency verification (Fig. 6's scaling story).

Workers rebuild the simulator from a picklable WorkerContext (source,
top, testbench factory specs) and verify disjoint checkpoint batches.
"""

import pytest

from repro import obs
from repro.live.session import LiveSession
from repro.riscv import build_pgas_source
from repro.riscv.patches import get_patch
from repro.riscv.programs import boot_program, boot_program_spec

# Counts DOWN via `addi s0, s0, -1` — sensitive to the id-imm-sign bug,
# so buggy-design checkpoints diverge from fixed-design replay.
ASM = """
    li   s0, 1000000
loop:
    addi s0, s0, -1
    sd   s0, 0x200(zero)
    bnez s0, loop
    ecall
"""


def make_session(source=None):
    session = LiveSession(
        source or build_pgas_source(1),
        checkpoint_interval=40,
        reload_distance=50,
    )
    session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_1x1"))
    tb = session.load_testbench(
        boot_program(ASM, count=1), factory=boot_program_spec(ASM, count=1)
    )
    session.run(tb, "uut", 170)
    return session, tb


@pytest.mark.slow
class TestParallelVerification:
    def test_parallel_matches_serial_consistent(self):
        session, _ = make_session()
        try:
            serial = session.verify_consistency("uut", workers=1)
            parallel = session.verify_consistency("uut", workers=2)
            assert serial.all_consistent
            assert parallel.all_consistent
            assert len(parallel.segments) == len(serial.segments)
            assert parallel.workers == 2
        finally:
            session.close()

    def test_parallel_finds_divergence(self):
        buggy = get_patch("id-imm-sign").inject(build_pgas_source(1))
        session, _ = make_session(buggy)
        try:
            session.apply_change(get_patch("id-imm-sign").fix(buggy))
            parallel = session.verify_consistency("uut", workers=2)
            assert not parallel.all_consistent
            assert parallel.divergence_cycle == 0
        finally:
            session.close()

    def test_missing_factory_falls_back_to_serial(self):
        session = LiveSession(build_pgas_source(1), checkpoint_interval=40)
        session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_1x1"))
        tb = session.load_testbench(boot_program(ASM, count=1))  # no factory
        session.run(tb, "uut", 90)
        report = session.verify_consistency("uut", workers=4)
        assert report.workers == 1  # graceful fallback
        assert report.all_consistent

    def test_workers_exceed_segments(self):
        # More workers than segments: dynamic scheduling leaves the
        # surplus idle, and every result still carries a valid dense
        # worker index (the old batch splitter attributed by batch
        # position, which broke down here).
        session, _ = make_session()
        try:
            report = session.verify_consistency("uut", workers=6)
            assert report.all_consistent
            assert 1 <= len(report.segments) < 6
            used = {s.worker for s in report.segments}
            assert all(w >= 0 for w in used)
            assert len(used) <= len(report.segments)
        finally:
            session.close()

    def test_warm_pool_compiles_once_per_worker(self):
        # Verifying twice against an unchanged design must compile the
        # design exactly once per worker: the second pass is served
        # entirely from the worker-side fingerprint caches.
        session, _ = make_session()
        try:
            metrics = obs.get_metrics()
            compiles0 = metrics.counter("consistency.worker_compiles")
            hits0 = metrics.counter("consistency.worker_cache_hits")
            first = session.verify_consistency("uut", workers=2)
            second = session.verify_consistency("uut", workers=2)
            assert first.all_consistent and second.all_consistent
            used = {s.worker for s in first.segments}
            used |= {s.worker for s in second.segments}
            total_compiles = (
                metrics.counter("consistency.worker_compiles") - compiles0
            )
            assert total_compiles == len(used)
            assert total_compiles <= 2
            # Every other segment was a cache hit.
            total_segments = len(first.segments) + len(second.segments)
            hits = metrics.counter("consistency.worker_cache_hits") - hits0
            assert hits == total_segments - total_compiles
        finally:
            session.close()
