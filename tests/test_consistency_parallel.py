"""Process-parallel consistency verification (Fig. 6's scaling story).

Workers rebuild the simulator from a picklable WorkerContext (source,
top, testbench factory specs) and verify disjoint checkpoint batches.
"""

import pytest

from repro.live.session import LiveSession
from repro.riscv import build_pgas_source
from repro.riscv.patches import get_patch
from repro.riscv.programs import boot_program, boot_program_spec

# Counts DOWN via `addi s0, s0, -1` — sensitive to the id-imm-sign bug,
# so buggy-design checkpoints diverge from fixed-design replay.
ASM = """
    li   s0, 1000000
loop:
    addi s0, s0, -1
    sd   s0, 0x200(zero)
    bnez s0, loop
    ecall
"""


def make_session(source=None):
    session = LiveSession(
        source or build_pgas_source(1),
        checkpoint_interval=40,
        reload_distance=50,
    )
    session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_1x1"))
    tb = session.load_testbench(
        boot_program(ASM, count=1), factory=boot_program_spec(ASM, count=1)
    )
    session.run(tb, "uut", 170)
    return session, tb


@pytest.mark.slow
class TestParallelVerification:
    def test_parallel_matches_serial_consistent(self):
        session, _ = make_session()
        serial = session.verify_consistency("uut", workers=1)
        parallel = session.verify_consistency("uut", workers=2)
        assert serial.all_consistent
        assert parallel.all_consistent
        assert len(parallel.segments) == len(serial.segments)
        assert parallel.workers == 2

    def test_parallel_finds_divergence(self):
        buggy = get_patch("id-imm-sign").inject(build_pgas_source(1))
        session, _ = make_session(buggy)
        session.apply_change(get_patch("id-imm-sign").fix(buggy))
        parallel = session.verify_consistency("uut", workers=2)
        assert not parallel.all_consistent
        assert parallel.divergence_cycle == 0

    def test_missing_factory_falls_back_to_serial(self):
        session = LiveSession(build_pgas_source(1), checkpoint_interval=40)
        session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_1x1"))
        tb = session.load_testbench(boot_program(ASM, count=1))  # no factory
        session.run(tb, "uut", 90)
        report = session.verify_consistency("uut", workers=4)
        assert report.workers == 1  # graceful fallback
        assert report.all_consistent
