"""Background verification (§III-F: "re-verified in the background").

The slow class drives real worker pools on the PGAS mesh: session
commands must keep running while a verify is in flight, a superseding
edit must cancel pending segments, and a divergence must invalidate
the checkpoints past the divergence cycle.  The cheap class covers the
``verify``/``verifyStatus``/``verifyWait``/``peek`` command plumbing
without ever spawning a process pool.
"""

import pytest

from repro import obs
from repro.hdl.errors import SimulationError
from repro.live.commands import CommandError, CommandInterpreter
from repro.live.session import LiveSession
from repro.riscv import build_pgas_source
from repro.riscv.patches import get_patch
from repro.riscv.programs import boot_program, boot_program_spec
from repro.sim.testbench import hold_inputs
from tests.conftest import COUNTER_SRC

# Counts DOWN via `addi s0, s0, -1` — sensitive to the id-imm-sign bug,
# so buggy-design checkpoints diverge from fixed-design replay.
ASM = """
    li   s0, 1000000
loop:
    addi s0, s0, -1
    sd   s0, 0x200(zero)
    bnez s0, loop
    ecall
"""


def make_session(source=None, cycles=170):
    session = LiveSession(
        source or build_pgas_source(1),
        checkpoint_interval=40,
        reload_distance=50,
    )
    session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_1x1"))
    tb = session.load_testbench(
        boot_program(ASM, count=1), factory=boot_program_spec(ASM, count=1)
    )
    session.run(tb, "uut", cycles)
    return session, tb


@pytest.mark.slow
class TestBackgroundVerify:
    def test_session_commands_do_not_block(self):
        session, tb = make_session()
        try:
            job = session.verify_background("uut", workers=2)
            # Commands return while the workers are still compiling the
            # design — the whole point of moving verification off the
            # session thread.
            outs = session.peek("uut")
            assert isinstance(outs, dict) and outs
            assert not job.done()
            assert session.verify_status("uut").state == "running"
            session.run(tb, "uut", 10)  # simulation advances mid-verify
            report = session.wait_for_verify("uut", timeout=300)
            assert report is not None
            assert report.all_consistent
            assert session.verify_status("uut").state == "consistent"
            assert session.pipe("uut").cycle == 180
        finally:
            session.close()

    def test_superseding_edit_cancels_pending_segments(self):
        # One worker over many segments: an edit landing mid-verify
        # revokes the segments that have not started and marks the job
        # superseded, so its (stale) verdict is never acted on.  The
        # edit races the worker, and on a fast machine the verify can
        # finish before the cancel lands (nothing left to revoke), so
        # retry until the edit wins the race at least once.
        for attempt in range(4):
            buggy = get_patch("id-imm-sign").inject(build_pgas_source(1))
            session, _ = make_session(buggy, cycles=410)
            try:
                metrics = obs.get_metrics()
                cancelled0 = metrics.counter(
                    "consistency.segments_cancelled"
                )
                superseded0 = metrics.counter("consistency.jobs_superseded")
                job = session.verify_background("uut", workers=1)
                session.apply_change(get_patch("id-imm-sign").fix(buggy))
                assert job.superseded
                report = job.result(timeout=300)
                assert report is not None
                assert report.status == "cancelled"
                assert session.verify_status("uut").state == "cancelled"
                assert (
                    metrics.counter("consistency.jobs_superseded")
                    > superseded0
                )
                # Superseded verdicts must not invalidate checkpoints,
                # even though the completed segments did observe the
                # divergence.
                assert len(session.store("uut")) > 0
                if report.cancelled_segments > 0:
                    assert (
                        metrics.counter("consistency.segments_cancelled")
                        > cancelled0
                    )
                    return
            finally:
                session.close()
        pytest.fail("verify finished before the edit on every attempt")

    def test_divergence_invalidates_checkpoints(self):
        # apply_change(verify="background") wires the verify into the
        # edit itself; the divergent verdict must drop every checkpoint
        # past the divergence cycle (here: all of them).
        buggy = get_patch("id-imm-sign").inject(build_pgas_source(1))
        session, _ = make_session(buggy)
        try:
            metrics = obs.get_metrics()
            invalidated0 = metrics.counter(
                "consistency.background_invalidations"
            )
            erd = session.apply_change(
                get_patch("id-imm-sign").fix(buggy), verify="background"
            )
            assert "uut" in erd.background_verifies
            report = session.wait_for_verify("uut", timeout=300)
            assert report is not None
            assert not report.all_consistent
            assert report.divergence_cycle == 0
            assert session.verify_status("uut").state == "divergent"
            assert len(session.store("uut")) == 0
            assert (
                metrics.counter("consistency.background_invalidations")
                == invalidated0 + 1
            )
        finally:
            session.close()


def make_counter_interp(interval=10):
    session = LiveSession(COUNTER_SRC, checkpoint_interval=interval)
    session.inst_pipe("p0", session.stage_handle_for("top"))
    tb = session.load_testbench(hold_inputs(rst=0))
    interp = CommandInterpreter(session, read_file={}.__getitem__)
    return session, tb, interp


class TestVerifyCommands:
    def test_verifystatus_idle_before_any_verify(self):
        _, _, interp = make_counter_interp()
        status = interp.execute("verifyStatus p0").value
        assert status.state == "idle"
        assert status.total_segments == 0

    def test_verifystatus_unknown_pipe_rejected(self):
        _, _, interp = make_counter_interp()
        with pytest.raises(CommandError):
            interp.execute("verifyStatus nope")

    def test_peek_command_reads_outputs(self):
        _, tb, interp = make_counter_interp()
        interp.execute(f"run {tb}, p0, 5")
        outs = interp.execute("peek p0").value
        assert outs["c0"] == 5

    def test_peek_does_not_advance(self):
        session, tb, interp = make_counter_interp()
        interp.execute(f"run {tb}, p0, 5")
        interp.execute("peek p0")
        assert session.pipe("p0").cycle == 5

    def test_verify_needs_factory_spec(self):
        # hold_inputs was loaded without factory=..., so background
        # verification has no rebuild recipe for worker processes.
        _, tb, interp = make_counter_interp()
        interp.execute(f"run {tb}, p0, 15")
        with pytest.raises(CommandError, match="factory"):
            interp.execute("verify p0")

    def test_verify_rejects_bad_worker_counts(self):
        _, _, interp = make_counter_interp()
        with pytest.raises(CommandError):
            interp.execute("verify p0, 0")
        with pytest.raises(CommandError):
            interp.execute("verify p0, soon")

    def test_verifywait_without_job_returns_none(self):
        _, _, interp = make_counter_interp()
        assert interp.execute("verifyWait p0").value is None

    def test_verify_background_requires_compiled_pipe(self):
        session = LiveSession(COUNTER_SRC, checkpoint_interval=10)
        with pytest.raises(SimulationError):
            session.verify_background("ghost")

    def test_close_is_idempotent_and_context_manager_closes(self):
        with LiveSession(COUNTER_SRC, checkpoint_interval=10) as session:
            session.inst_pipe("p0", session.stage_handle_for("top"))
        session.close()  # second close is a no-op
