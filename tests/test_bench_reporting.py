"""bench.reporting / bench.tables formatting edge cases."""

from repro.bench.reporting import (
    format_phase_breakdown,
    format_series,
    format_table,
)
from repro.bench.run import compare_to_baseline
from repro.bench.tables import ERD_PHASES, erd_phase_rows
from repro.live.session import ERDReport


class TestFormatTable:
    def test_none_cells_render_as_na(self):
        text = format_table("t", ["a", "b"], [[1.0, None], [None, "NA"]])
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "NA" in lines[4] and "NA" in lines[5]

    def test_large_floats_get_thousands_separators(self):
        text = format_table("t", ["x"], [[1234567.89]])
        assert "1,234,568" in text

    def test_small_floats_keep_two_decimals(self):
        text = format_table("t", ["x"], [[3.14159]])
        assert "3.14" in text

    def test_empty_rows_render_header_only(self):
        text = format_table("empty", ["a", "b"], [])
        lines = text.splitlines()
        assert len(lines) == 4  # title, rule, header, separator
        assert "a" in lines[2] and "b" in lines[2]

    def test_row_labels_prepend_a_column(self):
        text = format_table("t", ["v"], [[1], [2]], row_labels=["x", "y"])
        lines = text.splitlines()
        assert lines[4].strip().startswith("x")
        assert lines[5].strip().startswith("y")

    def test_columns_align(self):
        text = format_table("t", ["value"], [[1.0], [123456.0]],
                            row_labels=["a", "bb"])
        lines = text.splitlines()
        assert len(lines[4]) == len(lines[5])


class TestFormatSeries:
    def test_none_points_render_as_na(self):
        text = format_series("s", {"line": [(1, 2.5), (2, None)]},
                             x_label="n", y_label="sec")
        assert "(n -> sec)" in text
        assert "2.500" in text
        assert "NA" in text

    def test_int_points_render_plain(self):
        text = format_series("s", {"line": [(1, 42)]})
        assert "42" in text

    def test_empty_series_is_title_only(self):
        text = format_series("nothing", {})
        assert text.splitlines() == ["nothing", "======="]


class TestFormatPhaseBreakdown:
    PHASES = {
        "compile": {"count": 2, "total_s": 0.030},
        "replay": {"count": 1, "total_s": 0.070},
    }

    def test_sorted_by_descending_total(self):
        text = format_phase_breakdown("phases", self.PHASES)
        lines = text.splitlines()
        assert lines[4].strip().startswith("replay")
        assert lines[5].strip().startswith("compile")

    def test_default_budget_shares_sum_to_100(self):
        text = format_phase_breakdown("phases", self.PHASES)
        assert "70.00" in text  # replay: 70 ms and 70 %
        assert "30.00" in text

    def test_explicit_total_scales_shares(self):
        text = format_phase_breakdown("phases", self.PHASES,
                                      total_seconds=0.2)
        assert "35.00" in text  # replay 70 ms of 200 ms
        assert "15.00" in text

    def test_zero_budget_gives_na_shares(self):
        text = format_phase_breakdown(
            "phases", {"idle": {"count": 1, "total_s": 0.0}}
        )
        assert "NA" in text

    def test_empty_phases(self):
        text = format_phase_breakdown("phases", {})
        assert len(text.splitlines()) == 4


class TestERDPhaseRows:
    def _report(self, scale):
        return ERDReport(
            behavioral=True,
            version="1.1",
            parse_seconds=0.001 * scale,
            compile_seconds=0.010 * scale,
            swap_seconds=0.002 * scale,
            reload_seconds=0.003 * scale,
            replay_seconds=0.020 * scale,
        )

    def test_one_row_per_report_in_milliseconds(self):
        columns, rows, labels = erd_phase_rows(
            [("1x1", self._report(1)), ("2x2", self._report(2))]
        )
        assert columns == [f"{p} ms" for p in ERD_PHASES] + ["total ms"]
        assert labels == ["1x1", "2x2"]
        assert rows[0][0] == 1.0  # parse: 1 ms
        assert abs(rows[1][-1] - 72.0) < 1e-9  # doubled total in ms

    def test_total_column_is_the_phase_sum(self):
        _, rows, _ = erd_phase_rows([("r", self._report(1))])
        assert abs(sum(rows[0][:-1]) - rows[0][-1]) < 1e-9

    def test_empty_reports(self):
        columns, rows, labels = erd_phase_rows([])
        assert rows == [] and labels == []
        assert columns[-1] == "total ms"


class TestRegressionGate:
    def _artifact(self, latency, calibration=1.0):
        return {
            "schema": "repro.bench/v1",
            "calibration_s": calibration,
            "fig7": {"per_edit_latency_s": {"1": latency}},
        }

    def test_within_allowance_passes(self):
        failures = compare_to_baseline(
            self._artifact(0.110), self._artifact(0.100), 0.25
        )
        assert failures == []

    def test_regression_fails_with_a_message(self):
        failures = compare_to_baseline(
            self._artifact(0.140), self._artifact(0.100), 0.25
        )
        assert len(failures) == 1
        assert "per-edit latency regressed" in failures[0]

    def test_slower_host_scales_the_allowance(self):
        # 1.4x the baseline latency on a 1.5x-slower host: allowed.
        failures = compare_to_baseline(
            self._artifact(0.140, calibration=1.5),
            self._artifact(0.100, calibration=1.0),
            0.25,
        )
        assert failures == []

    def test_faster_host_never_shrinks_the_allowance(self):
        failures = compare_to_baseline(
            self._artifact(0.110, calibration=0.5),
            self._artifact(0.100, calibration=1.0),
            0.25,
        )
        assert failures == []

    def test_calibration_scale_is_capped(self):
        failures = compare_to_baseline(
            self._artifact(0.600, calibration=100.0),
            self._artifact(0.100, calibration=1.0),
            0.25,
        )
        assert len(failures) == 1  # capped at 4x: allowed 0.5 s

    def test_missing_size_in_current_run_fails(self):
        current = self._artifact(0.1)
        current["fig7"]["per_edit_latency_s"] = {}
        failures = compare_to_baseline(current, self._artifact(0.1), 0.25)
        assert "missing from current run" in failures[0]

    def test_empty_baseline_fails(self):
        failures = compare_to_baseline(
            self._artifact(0.1), {"schema": "repro.bench/v1"}, 0.25
        )
        assert "no fig7" in failures[0]


class TestCIWorkflow:
    def test_workflow_yaml_parses(self):
        import pathlib

        import pytest

        yaml = pytest.importorskip("yaml")
        workflow = (pathlib.Path(__file__).resolve().parents[1]
                    / ".github" / "workflows" / "ci.yml")
        with open(workflow) as fh:
            doc = yaml.safe_load(fh)
        assert set(doc["jobs"]) == {
            "lint", "test", "bench-smoke", "server-smoke",
            "analyze-examples", "load-smoke",
        }
        matrix = doc["jobs"]["test"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.10", "3.11", "3.12"]
        # Every job funnels through the shared setup action and the
        # workflow cancels superseded runs.
        assert "concurrency" in doc
        for name, job in doc["jobs"].items():
            uses = [step.get("uses", "") for step in job["steps"]]
            assert "./.github/actions/setup-livesim" in uses, name

    def test_setup_action_yaml_parses(self):
        import pathlib

        import pytest

        yaml = pytest.importorskip("yaml")
        action = (pathlib.Path(__file__).resolve().parents[1]
                  / ".github" / "actions" / "setup-livesim"
                  / "action.yml")
        with open(action) as fh:
            doc = yaml.safe_load(fh)
        assert doc["runs"]["using"] == "composite"
        assert doc["inputs"]["python-version"]["default"] == "3.12"
