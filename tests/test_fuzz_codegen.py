"""Differential fuzzing of the code generators.

Hypothesis generates random LHDL expressions; each is compiled through
BOTH code generators (shared-module pygen and flattening flatgen, in
both mux styles) and the results are compared against an independent
reference interpreter implementing the documented semantics
(see repro.codegen.exprgen's module docstring).  Any disagreement is a
compiler bug.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import compile_design
from repro.codegen.flatgen import compile_flat
from repro.hdl import ast_nodes as ast
from repro.hdl import elaborate, parse
from repro.hdl.parser import parse_expr
from repro.sim import Pipe

INPUTS = {"a": 8, "b": 8, "c": 16, "d": 1}
OUT_WIDTH = 16


# ---------------------------------------------------------------------------
# Reference interpreter (independent of the code generators)
# ---------------------------------------------------------------------------


def ref_width(expr: ast.Expr) -> int:
    if isinstance(expr, ast.Num):
        return expr.width if expr.width is not None else max(
            32, expr.value.bit_length()
        )
    if isinstance(expr, ast.Id):
        return INPUTS[expr.name]
    if isinstance(expr, ast.Unary):
        return 1 if expr.op in ("!", "&", "|", "^") else ref_width(expr.operand)
    if isinstance(expr, ast.Binary):
        if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return 1
        if expr.op in ("<<", ">>", ">>>"):
            return ref_width(expr.left)
        return max(ref_width(expr.left), ref_width(expr.right))
    if isinstance(expr, ast.Ternary):
        return max(ref_width(expr.if_true), ref_width(expr.if_false))
    if isinstance(expr, ast.Concat):
        return sum(ref_width(p) for p in expr.parts)
    if isinstance(expr, ast.Repl):
        return expr.count.value * ref_width(expr.value)
    if isinstance(expr, ast.Index):
        return 1
    if isinstance(expr, ast.Slice):
        return expr.msb.value - expr.lsb.value + 1
    if isinstance(expr, ast.SysCall):
        return ref_width(expr.args[0])
    raise AssertionError(type(expr))


def is_signed(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.SysCall) and expr.func == "$signed":
        return True
    if isinstance(expr, ast.Ternary):
        return is_signed(expr.if_true) and is_signed(expr.if_false)
    return False


def sext(value: int, width: int) -> int:
    sign = 1 << (width - 1)
    return (value ^ sign) - sign


def ref_eval(expr: ast.Expr, env: dict) -> int:
    """Evaluate to the masked value of the node's width."""
    w = ref_width(expr)
    mask = (1 << w) - 1
    if isinstance(expr, ast.Num):
        return expr.value & mask
    if isinstance(expr, ast.Id):
        return env[expr.name] & mask
    if isinstance(expr, ast.Unary):
        v = ref_eval(expr.operand, env)
        ow = ref_width(expr.operand)
        if expr.op == "~":
            return (~v) & ((1 << ow) - 1)
        if expr.op == "-":
            return (-v) & ((1 << ow) - 1)
        if expr.op == "!":
            return 0 if v else 1
        if expr.op == "&":
            return 1 if v == (1 << ow) - 1 else 0
        if expr.op == "|":
            return 1 if v else 0
        if expr.op == "^":
            return bin(v).count("1") & 1
    if isinstance(expr, ast.Binary):
        l = ref_eval(expr.left, env)
        r = ref_eval(expr.right, env)
        wl = ref_width(expr.left)
        wr = ref_width(expr.right)
        big = (1 << max(wl, wr)) - 1
        op = expr.op
        if op == "+":
            return (l + r) & big
        if op == "-":
            return (l - r) & big
        if op == "*":
            return (l * r) & big
        if op == "/":
            return (l // r) & big if r else big
        if op == "%":
            return (l % r) if r else l
        if op == "<<":
            return ((l << r) & ((1 << wl) - 1)) if r <= wl else 0
        if op == ">>":
            return l >> r
        if op == ">>>":
            if is_signed(expr.left):
                return (sext(l, wl) >> r) & ((1 << wl) - 1)
            return l >> r
        if op in ("<", "<=", ">", ">="):
            if is_signed(expr.left) and is_signed(expr.right):
                l, r = sext(l, wl), sext(r, wr)
            return int(eval(f"{l} {op} {r}"))  # noqa: S307 - ints only
        if op == "==":
            return int(l == r)
        if op == "!=":
            return int(l != r)
        if op == "&&":
            return int(bool(l) and bool(r))
        if op == "||":
            return int(bool(l) or bool(r))
        if op == "&":
            return l & r
        if op == "|":
            return l | r
        if op == "^":
            return l ^ r
    if isinstance(expr, ast.Ternary):
        return (
            ref_eval(expr.if_true, env)
            if ref_eval(expr.cond, env)
            else ref_eval(expr.if_false, env)
        )
    if isinstance(expr, ast.Concat):
        out = 0
        for part in expr.parts:
            out = (out << ref_width(part)) | ref_eval(part, env)
        return out
    if isinstance(expr, ast.Repl):
        v = ref_eval(expr.value, env)
        vw = ref_width(expr.value)
        out = 0
        for _ in range(expr.count.value):
            out = (out << vw) | v
        return out
    if isinstance(expr, ast.Index):
        return (env[expr.base] >> ref_eval(expr.index, env)) & 1
    if isinstance(expr, ast.Slice):
        return (env[expr.base] >> expr.lsb.value) & mask
    if isinstance(expr, ast.SysCall):
        return ref_eval(expr.args[0], env)
    raise AssertionError(type(expr))


# ---------------------------------------------------------------------------
# Expression text generation
# ---------------------------------------------------------------------------


@st.composite
def expr_text(draw, depth=0):
    if depth >= 3:
        choice = draw(st.sampled_from(["id", "num"]))
    else:
        choice = draw(st.sampled_from(
            ["id", "num", "bin", "bin", "un", "tern", "concat", "repl",
             "slice", "index", "signed_cmp", "sra"]
        ))
    if choice == "id":
        return draw(st.sampled_from(sorted(INPUTS)))
    if choice == "num":
        width = draw(st.sampled_from([4, 8, 16]))
        value = draw(st.integers(0, (1 << width) - 1))
        return f"{width}'d{value}"
    if choice == "bin":
        op = draw(st.sampled_from(
            ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
             "==", "!=", "<", "<=", ">", ">=", "&&", "||"]
        ))
        left = draw(expr_text(depth=depth + 1))
        right = draw(expr_text(depth=depth + 1))
        return f"({left} {op} {right})"
    if choice == "un":
        op = draw(st.sampled_from(["~", "-", "!", "&", "|", "^"]))
        inner = draw(expr_text(depth=depth + 1))
        return f"({op}({inner}))"
    if choice == "tern":
        c = draw(expr_text(depth=depth + 1))
        t = draw(expr_text(depth=depth + 1))
        f = draw(expr_text(depth=depth + 1))
        return f"(({c}) ? ({t}) : ({f}))"
    if choice == "concat":
        parts = draw(st.lists(expr_text(depth=depth + 1), min_size=2,
                              max_size=3))
        return "{" + ", ".join(parts) + "}"
    if choice == "repl":
        count = draw(st.integers(1, 3))
        inner = draw(st.sampled_from(sorted(INPUTS)))
        return f"{{{count}{{{inner}}}}}"
    if choice == "slice":
        name = draw(st.sampled_from(["a", "b", "c"]))
        width = INPUTS[name]
        lsb = draw(st.integers(0, width - 1))
        msb = draw(st.integers(lsb, width - 1))
        return f"{name}[{msb}:{lsb}]"
    if choice == "index":
        name = draw(st.sampled_from(["a", "b", "c"]))
        bit = draw(st.integers(0, INPUTS[name] - 1))
        return f"{name}[{bit}]"
    if choice == "signed_cmp":
        left = draw(st.sampled_from(sorted(INPUTS)))
        right = draw(st.sampled_from(sorted(INPUTS)))
        op = draw(st.sampled_from(["<", "<=", ">", ">="]))
        return f"($signed({left}) {op} $signed({right}))"
    if choice == "sra":
        name = draw(st.sampled_from(["a", "b", "c"]))
        sh = draw(st.integers(0, 7))
        return f"($signed({name}) >>> {sh})"
    raise AssertionError(choice)


def module_for(expr: str) -> str:
    ports = ", ".join(
        f"input [{w - 1}:0] {n}" if w > 1 else f"input {n}"
        for n, w in INPUTS.items()
    )
    return f"""
module m (input clk, {ports}, output [{OUT_WIDTH - 1}:0] y);
  assign y = {expr};
endmodule
"""


STIMULI = [
    {"a": 0, "b": 0, "c": 0, "d": 0},
    {"a": 255, "b": 255, "c": 65535, "d": 1},
    {"a": 0x80, "b": 0x7F, "c": 0x8000, "d": 1},
    {"a": 1, "b": 2, "c": 3, "d": 0},
    {"a": 0xAA, "b": 0x55, "c": 0x1234, "d": 1},
]


class TestExpressionFuzz:
    @given(expr=expr_text())
    @settings(max_examples=120, deadline=None)
    def test_pygen_matches_reference(self, expr):
        tree = parse_expr(expr)
        source = module_for(expr)
        netlist, library = compile_design(source, "m")
        pipe = Pipe(netlist.top, library)
        out_mask = (1 << OUT_WIDTH) - 1
        for env in STIMULI:
            pipe.set_inputs(**env)
            expected = ref_eval(tree, env) & out_mask
            assert pipe.eval()["y"] == expected, expr

    @given(expr=expr_text())
    @settings(max_examples=60, deadline=None)
    def test_opt_levels_bit_exact(self, expr):
        """opt=full (constant folding + dead logic + guards) must agree
        with the unoptimized build on every stimulus — the optimization
        passes may only change *how* the value is computed."""
        source = module_for(expr)
        plain_netlist, plain_lib = compile_design(source, "m")
        opt_netlist, opt_lib = compile_design(source, "m", opt="full")
        plain = Pipe(plain_netlist.top, plain_lib)
        opt = Pipe(opt_netlist.top, opt_lib)
        for env in STIMULI:
            plain.set_inputs(**env)
            opt.set_inputs(**env)
            assert plain.eval()["y"] == opt.eval()["y"], expr

    @given(expr=expr_text())
    @settings(max_examples=40, deadline=None)
    def test_all_four_compilers_agree(self, expr):
        source = module_for(expr)
        pipes = []
        for style in ("branch", "select"):
            netlist, library = compile_design(source, "m", mux_style=style)
            pipes.append(Pipe(netlist.top, library))
            flat = compile_flat(elaborate(parse(source), "m"),
                                mux_style=style)
            pipes.append(Pipe(flat.key, {flat.key: flat}))
        for env in STIMULI:
            values = set()
            for pipe in pipes:
                pipe.set_inputs(**env)
                values.add(pipe.eval()["y"])
            assert len(values) == 1, (expr, env, values)
