"""Multi-pipe sessions and cache lifecycle across many edits."""


from repro.live.session import LiveSession
from repro.sim.testbench import hold_inputs
from tests.conftest import COUNTER_SRC

TWO_TOPS = COUNTER_SRC + """
module alt_top (
  input clk,
  input rst,
  output [7:0] fast
);
  counter #(.W(8)) u_fast (.clk(clk), .rst(rst), .step(8'd5), .count(fast));
endmodule
"""


class TestMultiPipeSessions:
    def _session(self):
        session = LiveSession(TWO_TOPS, checkpoint_interval=10)
        session.inst_pipe("main", session.stage_handle_for("top"))
        session.inst_pipe("alt", session.stage_handle_for("alt_top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        return session, tb

    def test_pipes_share_compiled_children(self):
        session, _ = self._session()
        main_counter = session.pipe("main").find("u0").code
        alt_counter = session.pipe("alt").find("u_fast").code
        assert main_counter is alt_counter  # one compile, two tops

    def test_run_is_per_pipe(self):
        session, tb = self._session()
        session.run(tb, "main", 10)
        session.run(tb, "alt", 4)
        assert session.pipe("main").outputs()["c0"] == 10
        assert session.pipe("alt").outputs()["fast"] == 20
        assert session.pipe("main").cycle == 10
        assert session.pipe("alt").cycle == 4

    def test_apply_change_updates_every_pipe(self):
        session, tb = self._session()
        session.run(tb, "main", 20)
        session.run(tb, "alt", 20)
        edited = TWO_TOPS.replace("assign sum = a + b;",
                                  "assign sum = a + b + 8'd1;")
        report = session.apply_change(edited)
        assert set(report.pipes_updated) == {"main", "alt"}
        # Shared module compiled once even though two pipes swap it.
        assert report.recompiled_keys.count("adder#(W=8)") == 1
        session.run(tb, "main", 1)
        session.run(tb, "alt", 1)
        # The fast estimate replays from the cycle-10 checkpoint with
        # the new logic: main = 10 + 2*10, alt = 50 + 6*10; one more
        # cycle adds +2 / +6.
        assert session.pipe("main").outputs()["c0"] == 10 + 2 * 10 + 2
        assert session.pipe("alt").outputs()["fast"] == 50 + 6 * 10 + 6

    def test_per_pipe_checkpoint_stores(self):
        session, tb = self._session()
        session.run(tb, "main", 30)
        session.run(tb, "alt", 12)
        assert session.store("main").cycles() == [10, 20, 30]
        assert session.store("alt").cycles() == [10]

    def test_verify_each_pipe_independently(self):
        session, tb = self._session()
        session.run(tb, "main", 25)
        session.run(tb, "alt", 25)
        edited = TWO_TOPS.replace("assign sum = a + b;",
                                  "assign sum = a - b;")
        session.apply_change(edited)
        assert not session.verify_consistency("main").all_consistent
        assert not session.verify_consistency("alt").all_consistent
        session.verify_consistency("main", repair=True)
        assert session.verify_consistency("main").all_consistent
        # alt's history is untouched by main's repair.
        assert not session.verify_consistency("alt").all_consistent


class TestEditChurn:
    def test_many_edits_stay_fast_and_correct(self):
        """A long edit session: the compile cache grows, eviction trims
        it, and every intermediate design still behaves."""
        session = LiveSession(COUNTER_SRC, checkpoint_interval=25)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        session.run(tb, "p0", 25)

        variants = ["a ^ b", "a | b", "a & b", "a + b + 8'd2", "a + b"]
        for expr in variants:
            edited = COUNTER_SRC.replace("assign sum = a + b;",
                                         f"assign sum = {expr};")
            report = session.apply_change(edited)
            assert report.behavioral
            assert len(report.recompiled_keys) <= 1

        # Final design is back to the original adder.
        session.run(tb, "p0", 5)
        assert session.pipe("p0").outputs()["c0"] == 30

        evicted = session.compiler.evict_stale(keep_generations=2)
        assert evicted >= 1
        # Current design still compiles (from cache or fresh) and runs.
        report = session.apply_change(
            COUNTER_SRC.replace("assign sum = a + b;",
                                "assign sum = a + b + 8'd0;")
        )
        assert report.behavioral
        session.run(tb, "p0", 5)
        assert session.pipe("p0").outputs()["c0"] == 35

    def test_version_history_tracks_every_edit(self):
        session = LiveSession(COUNTER_SRC)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        for i in range(3):
            edited = COUNTER_SRC.replace(
                "assign sum = a + b;", f"assign sum = a + b + 8'd{i + 1};"
            )
            session.apply_change(edited)
        assert len(session.history.versions()) == 4  # root + 3 edits
        chain = []
        version = session.version
        while version is not None:
            chain.append(version)
            version = session.history.parent_of(version)
        assert len(chain) == 4
