"""Load-test harness tests: the scripted driver (against the cheap
single-process server — no worker spawn cost in the unit suite), the
p99 baseline-gate logic, and the chaos-mode sample classification."""

import pytest

from repro.bench.loadtest import (
    COMMAND_CLASSES,
    LoadtestConfig,
    _latency_from_samples,
    _split_by_disruption,
    compare_to_baseline,
    run_loadtest,
)


class TestDriver:
    def test_small_threaded_run(self):
        result = run_loadtest(LoadtestConfig(
            sessions=3, workers=0, runs=1, run_cycles=20, concurrency=2,
        ))
        assert result["mode"] == "threaded"
        assert result["errors"] == 0
        # open + instpipe + (run + peek) * 1 + close = 5 per session.
        assert result["commands"] == 3 * 5
        for cls in COMMAND_CLASSES:
            stats = result["latency_s"][cls]
            assert stats["count"] == 3
            assert stats["p99"] >= stats["p50"] > 0
        assert result["commands_per_sec"] > 0
        assert result["server"]["sessions_left"] == 0


def _artifact(p99_ms, calibration_s=1.0, errors=0):
    return {
        "calibration_s": calibration_s,
        "errors": errors,
        "latency_s": {
            "run": {"count": 10, "p50": p99_ms / 2e3, "p99": p99_ms / 1e3},
        },
    }


class TestBaselineGate:
    def test_missing_baseline_data(self):
        assert compare_to_baseline(_artifact(1.0), {}, 0.5) == [
            "baseline JSON has no latency_s data"
        ]

    def test_within_allowance_passes(self):
        failures = compare_to_baseline(
            _artifact(p99_ms=14.0), _artifact(p99_ms=10.0), 0.5
        )
        assert failures == []

    def test_regression_fails_with_detail(self):
        failures = compare_to_baseline(
            _artifact(p99_ms=20.0), _artifact(p99_ms=10.0), 0.5
        )
        assert len(failures) == 1
        assert "run p99 latency regressed" in failures[0]
        assert "20.0 ms > allowed 15.0 ms" in failures[0]

    def test_slow_host_scales_the_allowance_up(self):
        # Current host is 2x slower than the baseline host: a 2x
        # latency still fits once calibration scaling kicks in.
        failures = compare_to_baseline(
            _artifact(p99_ms=20.0, calibration_s=2.0),
            _artifact(p99_ms=10.0, calibration_s=1.0),
            0.5,
        )
        assert failures == []

    def test_fast_host_does_not_scale_down(self):
        failures = compare_to_baseline(
            _artifact(p99_ms=20.0, calibration_s=0.5),
            _artifact(p99_ms=10.0, calibration_s=1.0),
            0.5,
        )
        assert len(failures) == 1

    def test_missing_class_fails(self):
        current = _artifact(1.0)
        del current["latency_s"]["run"]
        current["latency_s"]["open"] = {"count": 1, "p99": 0.001}
        failures = compare_to_baseline(current, _artifact(1.0), 0.5)
        assert failures == ["loadtest: command class 'run' missing "
                            "from current run"]

    def test_session_errors_fail_the_gate(self):
        failures = compare_to_baseline(
            _artifact(1.0, errors=2), _artifact(1.0), 0.5
        )
        assert len(failures) == 1
        assert "2 session scripts failed" in failures[0]

    def test_cli_rejects_bad_counts(self):
        from repro.bench.loadtest import main

        assert main(["--sessions", "0"]) == 2

    def test_cli_rejects_chaos_without_workers(self):
        from repro.bench.loadtest import main

        assert main(["--chaos", "--workers", "0"]) == 2


class TestChaosClassification:
    def test_split_uses_interval_overlap(self):
        windows = [{"start": 10.0, "end": 11.0}]
        samples = [
            ("run", 9.0, 9.5, True),      # ends before -> clean
            ("run", 9.5, 10.5, True),     # straddles start -> disrupted
            ("run", 10.2, 10.4, False),   # inside -> disrupted
            ("run", 10.9, 12.0, True),    # straddles end -> disrupted
            ("run", 11.0, 12.0, True),    # starts at end -> clean
        ]
        clean, disrupted = _split_by_disruption(samples, windows)
        assert [s[1] for s in clean] == [9.0, 11.0]
        assert [s[1] for s in disrupted] == [9.5, 10.2, 10.9]

    def test_split_with_no_windows_keeps_everything_clean(self):
        samples = [("open", 0.0, 1.0, True)]
        clean, disrupted = _split_by_disruption(samples, [])
        assert clean == samples
        assert disrupted == []

    def test_multiple_windows_any_overlap_disrupts(self):
        windows = [
            {"start": 1.0, "end": 2.0},
            {"start": 5.0, "end": 6.0},
        ]
        samples = [
            ("peek", 3.0, 4.0, True),   # between windows -> clean
            ("peek", 5.5, 5.6, True),   # in the second -> disrupted
        ]
        clean, disrupted = _split_by_disruption(samples, windows)
        assert len(clean) == 1 and len(disrupted) == 1

    def test_latency_from_samples_skips_failed_commands(self):
        samples = [
            ("open", 0.0, 1.0, True),
            ("open", 0.0, 5.0, False),   # failed: must not skew p99
            ("run", 2.0, 2.5, True),
        ]
        stats = _latency_from_samples(samples)
        assert stats["open"]["count"] == 1
        assert stats["open"]["max"] == pytest.approx(1.0)
        assert stats["run"]["count"] == 1
        # Classes with no clean samples report empty histograms.
        assert stats["close"]["count"] == 0
