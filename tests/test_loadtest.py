"""Load-test harness tests: the scripted driver (against the cheap
single-process server — no worker spawn cost in the unit suite) and
the p99 baseline-gate logic."""

from repro.bench.loadtest import (
    COMMAND_CLASSES,
    LoadtestConfig,
    compare_to_baseline,
    run_loadtest,
)


class TestDriver:
    def test_small_threaded_run(self):
        result = run_loadtest(LoadtestConfig(
            sessions=3, workers=0, runs=1, run_cycles=20, concurrency=2,
        ))
        assert result["mode"] == "threaded"
        assert result["errors"] == 0
        # open + instpipe + (run + peek) * 1 + close = 5 per session.
        assert result["commands"] == 3 * 5
        for cls in COMMAND_CLASSES:
            stats = result["latency_s"][cls]
            assert stats["count"] == 3
            assert stats["p99"] >= stats["p50"] > 0
        assert result["commands_per_sec"] > 0
        assert result["server"]["sessions_left"] == 0


def _artifact(p99_ms, calibration_s=1.0, errors=0):
    return {
        "calibration_s": calibration_s,
        "errors": errors,
        "latency_s": {
            "run": {"count": 10, "p50": p99_ms / 2e3, "p99": p99_ms / 1e3},
        },
    }


class TestBaselineGate:
    def test_missing_baseline_data(self):
        assert compare_to_baseline(_artifact(1.0), {}, 0.5) == [
            "baseline JSON has no latency_s data"
        ]

    def test_within_allowance_passes(self):
        failures = compare_to_baseline(
            _artifact(p99_ms=14.0), _artifact(p99_ms=10.0), 0.5
        )
        assert failures == []

    def test_regression_fails_with_detail(self):
        failures = compare_to_baseline(
            _artifact(p99_ms=20.0), _artifact(p99_ms=10.0), 0.5
        )
        assert len(failures) == 1
        assert "run p99 latency regressed" in failures[0]
        assert "20.0 ms > allowed 15.0 ms" in failures[0]

    def test_slow_host_scales_the_allowance_up(self):
        # Current host is 2x slower than the baseline host: a 2x
        # latency still fits once calibration scaling kicks in.
        failures = compare_to_baseline(
            _artifact(p99_ms=20.0, calibration_s=2.0),
            _artifact(p99_ms=10.0, calibration_s=1.0),
            0.5,
        )
        assert failures == []

    def test_fast_host_does_not_scale_down(self):
        failures = compare_to_baseline(
            _artifact(p99_ms=20.0, calibration_s=0.5),
            _artifact(p99_ms=10.0, calibration_s=1.0),
            0.5,
        )
        assert len(failures) == 1

    def test_missing_class_fails(self):
        current = _artifact(1.0)
        del current["latency_s"]["run"]
        current["latency_s"]["open"] = {"count": 1, "p99": 0.001}
        failures = compare_to_baseline(current, _artifact(1.0), 0.5)
        assert failures == ["loadtest: command class 'run' missing "
                            "from current run"]

    def test_session_errors_fail_the_gate(self):
        failures = compare_to_baseline(
            _artifact(1.0, errors=2), _artifact(1.0), 0.5
        )
        assert len(failures) == 1
        assert "2 session scripts failed" in failures[0]

    def test_cli_rejects_bad_counts(self):
        from repro.bench.loadtest import main

        assert main(["--sessions", "0"]) == 2
