"""Lexer unit tests: token classification, literals, comments, errors."""

import pytest

from repro.hdl.errors import LexError
from repro.hdl.lexer import behavioral_fingerprint, tokenize
from repro.hdl.tokens import (
    EOF, IDENT, KEYWORD, NUMBER, OP, PUNCT, SIZED_NUMBER, SYSCALL,
)


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_recognized(self):
        assert kinds("module endmodule wire reg") == [
            (KEYWORD, "module"),
            (KEYWORD, "endmodule"),
            (KEYWORD, "wire"),
            (KEYWORD, "reg"),
        ]

    def test_identifiers(self):
        assert kinds("foo _bar x42 a$b") == [
            (IDENT, "foo"), (IDENT, "_bar"), (IDENT, "x42"), (IDENT, "a$b"),
        ]

    def test_identifier_at_end_of_input(self):
        # Regression: '' in "_$" is True, which once made this loop forever.
        toks = tokenize("endmodule")
        assert toks[0].value == "endmodule"
        assert toks[-1].kind == EOF

    def test_punctuation_and_operators(self):
        assert kinds("( ) [ ] { } ; , # @ = .") == [
            (PUNCT, c) for c in "()[]{};,#@=."
        ]

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == EOF

    def test_syscall_token(self):
        assert kinds("$signed $clog2") == [
            (SYSCALL, "$signed"), (SYSCALL, "$clog2"),
        ]

    def test_bare_dollar_rejected(self):
        with pytest.raises(LexError):
            tokenize("$ ")

    def test_unknown_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("a \\ b")


class TestNumbers:
    def test_plain_decimal(self):
        tok = tokenize("1234")[0]
        assert tok.kind == NUMBER
        assert tok.num_value == 1234

    def test_decimal_with_underscores(self):
        assert tokenize("1_000_000")[0].num_value == 1000000

    def test_sized_hex(self):
        tok = tokenize("8'hFF")[0]
        assert tok.kind == SIZED_NUMBER
        assert (tok.num_width, tok.num_value) == (8, 255)

    def test_sized_binary(self):
        tok = tokenize("4'b1010")[0]
        assert (tok.num_width, tok.num_value) == (4, 10)

    def test_sized_decimal(self):
        tok = tokenize("12'd100")[0]
        assert (tok.num_width, tok.num_value) == (12, 100)

    def test_sized_octal(self):
        tok = tokenize("6'o77")[0]
        assert (tok.num_width, tok.num_value) == (6, 63)

    def test_sized_literal_truncates_to_width(self):
        tok = tokenize("4'hFF")[0]
        assert tok.num_value == 0xF

    def test_unsized_based_literal_defaults_32(self):
        tok = tokenize("'b1")[0]
        assert (tok.num_width, tok.num_value) == (32, 1)

    def test_empty_sized_literal_rejected(self):
        with pytest.raises(LexError):
            tokenize("8'h ;")

    def test_bad_base_rejected(self):
        with pytest.raises(LexError):
            tokenize("8'q0")

    def test_zero_width_rejected(self):
        with pytest.raises(LexError):
            tokenize("0'd1")


class TestOperators:
    def test_multi_char_operators_greedy(self):
        assert kinds("<= >= == != && || << >> >>>") == [
            (OP, "<="), (OP, ">="), (OP, "=="), (OP, "!="),
            (OP, "&&"), (OP, "||"), (OP, "<<"), (OP, ">>"), (OP, ">>>"),
        ]

    def test_indexed_part_select_ops(self):
        assert kinds("+: -:") == [(OP, "+:"), (OP, "-:")]

    def test_arrowless_single_ops(self):
        assert kinds("+ - * / % & | ^ ~ ! < > ?") == [
            (OP, c) for c in "+-*/%&|^~!<>?"
        ]


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("a // comment here\nb") == [(IDENT, "a"), (IDENT, "b")]

    def test_line_comment_at_eof(self):
        assert kinds("a // trailing") == [(IDENT, "a")]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == [(IDENT, "a"), (IDENT, "b")]

    def test_unterminated_block_comment_rejected(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_line_numbers_track_newlines(self):
        toks = tokenize("a\n  b\n    c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]
        assert toks[1].col == 3


class TestFingerprint:
    def test_comment_changes_do_not_change_fingerprint(self):
        a = behavioral_fingerprint("assign x = a + b; // one")
        b = behavioral_fingerprint("assign x = a + b; // two")
        assert a == b

    def test_whitespace_changes_do_not_change_fingerprint(self):
        a = behavioral_fingerprint("assign x=a+b;")
        b = behavioral_fingerprint("assign  x =\n  a + b ;")
        assert a == b

    def test_behavioral_change_changes_fingerprint(self):
        a = behavioral_fingerprint("assign x = a + b;")
        b = behavioral_fingerprint("assign x = a - b;")
        assert a != b

    def test_equivalent_literals_same_fingerprint(self):
        # 8'hFF and 8'd255 encode the same value and width.
        assert behavioral_fingerprint("8'hFF") == behavioral_fingerprint("8'd255")

    def test_different_width_literal_differs(self):
        assert behavioral_fingerprint("8'd1") != behavioral_fingerprint("9'd1")

    def test_renamed_identifier_differs(self):
        assert behavioral_fingerprint("wire a;") != behavioral_fingerprint("wire b;")
