"""The §III-A 'skip initialization' use case.

"Restarting a simulation is universally slow... With hot reload,
parallel checkpoint history verification, and deterministic register
transformations, this behavior can come for free": a checkpoint taken
after the expensive boot can seed a *fresh* session — even one whose
design has since been edited, thanks to the Table V transform rules.
"""


from repro.live.checkpoint import CheckpointStore
from repro.live.session import LiveSession
from repro.live.transform import RegisterTransform, TransformOp
from repro.sim.testbench import hold_inputs
from tests.conftest import COUNTER_SRC


def booted_session(tmp_path, cycles=500):
    """Simulate an expensive init and persist the post-init state."""
    session = LiveSession(COUNTER_SRC, checkpoint_interval=100)
    session.inst_pipe("p0", session.stage_handle_for("top"))
    tb = session.load_testbench(hold_inputs(rst=0))
    session.run(tb, "p0", cycles)
    path = str(tmp_path / "post_boot.pkl")
    session.chkp("p0", path)
    return session, path


class TestSkipInitialization:
    def test_fresh_session_resumes_from_saved_state(self, tmp_path):
        _, path = booted_session(tmp_path)

        # A brand new session (fresh process in real life): no need to
        # re-run the 500-cycle boot.
        session = LiveSession(COUNTER_SRC)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        tb = session.load_testbench(hold_inputs(rst=0))
        session.ldch("p0", path)
        pipe = session.pipe("p0")
        assert pipe.cycle == 500
        assert pipe.outputs()["c0"] == 500 & 0xFF
        session.run(tb, "p0", 10)
        assert pipe.outputs()["c0"] == 510 & 0xFF

    def test_resume_into_edited_design_via_transforms(self, tmp_path):
        _, path = booted_session(tmp_path)

        # The new session runs an EDITED design whose counter register
        # was renamed; the Table V rename rule carries the boot state
        # across versions.
        renamed = COUNTER_SRC.replace("count_q", "tally_q").replace(
            "if (rst)", "if (rst || 1'b0)"
        )
        session = LiveSession(renamed)
        session.inst_pipe("p0", session.stage_handle_for("top"))
        # Cross-version load: apply the rename transform directly.
        store = CheckpointStore(interval=1)
        store.load(path)
        checkpoint = store.all()[-1]
        transform = RegisterTransform(
            [TransformOp("rename", "count_q", new_name="tally_q")]
        )
        session.pipe("p0").restore_transformed(
            checkpoint.snapshot, lambda module: transform
        )
        session.pipe("p0").cycle = checkpoint.cycle
        pipe = session.pipe("p0")
        assert pipe.find("u0").peek_reg("tally_q") == 500 & 0xFF
        tb = session.load_testbench(hold_inputs(rst=0))
        session.run(tb, "p0", 5)
        assert pipe.outputs()["c0"] == 505 & 0xFF

    def test_riscv_boot_skip(self, tmp_path):
        """The paper's motivating case (BOOM's slow debug-monitor init):
        boot a core once, then every later session starts mid-program."""
        from repro.riscv import build_pgas_source
        from repro.riscv.programs import (
            boot_program,
            busy_counter,
            node_result,
        )

        asm = busy_counter(1_000_000)
        first = LiveSession(build_pgas_source(1), checkpoint_interval=100)
        first.inst_pipe("uut", first.stage_handle_for("pgas_mesh_1x1"))
        tb1 = first.load_testbench(boot_program(asm, count=1))
        first.run(tb1, "uut", 300)
        path = str(tmp_path / "warm_core.pkl")
        first.chkp("uut", path)
        warm_result = node_result(first.pipe("uut"), 0)
        assert warm_result > 0

        second = LiveSession(build_pgas_source(1))
        second.inst_pipe("uut", second.stage_handle_for("pgas_mesh_1x1"))
        tb2 = second.load_testbench(boot_program(asm, count=1))
        second.ldch("uut", path)
        pipe = second.pipe("uut")
        assert pipe.cycle == 300
        assert node_result(pipe, 0) == warm_result
        second.run(tb2, "uut", 40)
        # Loop = addi + sd + taken blt (2-cycle redirect): 5 cycles/iter.
        assert node_result(pipe, 0) == warm_result + 8
