"""Public-API integrity: every exported name resolves and the
documented entry points work as advertised."""

import importlib

import pytest

import repro
from tests.conftest import COUNTER_SRC

PACKAGES = [
    "repro",
    "repro.hdl",
    "repro.ir",
    "repro.codegen",
    "repro.sim",
    "repro.live",
    "repro.baseline",
    "repro.hostmodel",
    "repro.riscv",
    "repro.bench",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_compile_design_entry_point():
    netlist, library = repro.compile_design(COUNTER_SRC, "top")
    assert netlist.top in library
    pipe = repro.Pipe(netlist.top, library)
    pipe.set_inputs(rst=0)
    pipe.step(3)
    assert pipe.outputs()["c0"] == 3


def test_compile_design_with_params():
    source = """
module m #(parameter W = 8) (input clk, output [W-1:0] y);
  reg [W-1:0] q;
  assign y = q;
  always @(posedge clk) q <= q + 1;
endmodule
"""
    netlist, library = repro.compile_design(source, "m", params={"W": 12})
    assert netlist.top == "m#(W=12)"


def test_readme_quickstart_flow():
    """The exact flow the README shows."""
    from repro import LiveSession
    from repro.sim.testbench import hold_inputs

    session = LiveSession(COUNTER_SRC)
    pipe = session.inst_pipe("p0", session.stage_handle_for("top"))
    tb = session.load_testbench(hold_inputs(rst=0))
    session.run(tb, "p0", 1_000)

    edited = COUNTER_SRC.replace("assign sum = a + b;",
                                 "assign sum = a + b + 8'd1;")
    report = session.apply_change(edited)
    assert report.recompiled_keys == ["adder#(W=8)"]
    assert report.total_seconds < 2.0
    assert pipe.outputs()["c0"] > 0

    verdict = session.verify_consistency("p0", repair=True)
    assert verdict is not None


def test_exceptions_exported_and_catchable():
    from repro import HDLError, ParseError

    with pytest.raises(HDLError):
        repro.parse("module broken (")
    with pytest.raises(ParseError):
        repro.parse("module broken (")
