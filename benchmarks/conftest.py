"""Shared benchmark fixtures.

Mesh sizes default to 1, 2, 4 (laptop-friendly).  Set
``REPRO_BENCH_SIZES=1,2,4,8,16`` to sweep the paper's full range — the
16x16 baseline compile will exhaust its budget and report NA, exactly
like the paper's 24-hour Verilator timeout.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.workloads import collect_sizes


def bench_sizes():
    raw = os.environ.get("REPRO_BENCH_SIZES", "1,2,4")
    return tuple(int(x) for x in raw.split(",") if x.strip())


def baseline_budget():
    return float(os.environ.get("REPRO_BENCH_BASELINE_BUDGET_S", "30"))


@pytest.fixture(scope="session")
def sizes():
    return bench_sizes()


@pytest.fixture(scope="session")
def size_results(sizes):
    """One full workbench sweep, shared by every figure/table bench."""
    return collect_sizes(
        sizes=sizes,
        sim_cycles=60,
        baseline_budget_s=baseline_budget(),
        measure_baseline_speed=True,
    )


def emit(text: str) -> None:
    """Print a reproduced artifact so it lands in the bench log."""
    print("\n" + text + "\n")
