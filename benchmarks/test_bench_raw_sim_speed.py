"""Substrate raw simulation speed (honest wall-clock numbers).

The paper's KHz numbers come from compiled C++; this substrate is pure
Python, so absolute speeds are ~100x lower (documented in DESIGN.md /
EXPERIMENTS.md).  This bench records what the substrate actually does:
cycles/second per design size for the shared-code simulator, and the
per-core aggregate ("global" speed, the paper's unit).
"""


from repro.bench.reporting import format_table

from .conftest import emit


def test_raw_speed_report(benchmark, size_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for result in size_results:
        design_hz = result.livesim_sim_hz or 0.0
        base_hz = result.baseline_sim_hz
        rows.append([
            result.cores,
            round(design_hz, 1),
            round(design_hz * result.cores, 1),
            round(base_hz, 1) if base_hz else None,
        ])
    emit(format_table(
        "Substrate raw simulation speed (pure Python; shapes, not "
        "absolute KHz, are the reproduction target)",
        ["cores", "design Hz", "aggregate core-Hz", "baseline design Hz"],
        rows,
        row_labels=[f"{r.n}x{r.n}" for r in size_results],
    ))
    # Aggregate throughput should not collapse with size (code sharing).
    aggregate = [r[2] for r in rows]
    assert aggregate[-1] > 0.2 * aggregate[0]


def test_bench_single_cycle(benchmark, size_results, sizes):
    """Cost of one simulated cycle at the largest size."""
    from repro.bench.workloads import PGASWorkbench

    bench = PGASWorkbench(sizes[-1], checkpoint_interval=10_000)
    session = bench.build_session()
    bench.run(10)
    pipe = session.pipe("uut")
    pipe.set_inputs(rst=0)

    benchmark(lambda: pipe.step(1))
    assert pipe.cycle > 10
