"""Figure 7: compilation + simulation time to reach N cycles.

Regenerates the paper's lines (per size: LiveSim full, Verilator,
LiveSim from checkpoint) and benchmarks the two compile flows whose
offsets anchor them.
"""


from repro.baseline import BaselineCompiler
from repro.bench.figures import fig7_crossover_kilocycles, fig7_series
from repro.bench.reporting import format_series
from repro.bench.tables import table7
from repro.hdl import elaborate, parse
from repro.live.compiler_live import LiveCompiler
from repro.riscv.pgas import build_pgas_source, mesh_top_name

from .conftest import emit

MARKS = [1, 10, 100, 1_000, 10_000, 76_000, 1_000_000]


def test_fig7_report(benchmark, size_results, sizes):
    rows = benchmark.pedantic(
        lambda: table7(sizes=list(sizes), trace_cycles=5),
        rounds=1, iterations=1,
    )
    series = fig7_series(size_results, table7_rows=rows)
    emit(format_series(
        "Figure 7 — seconds to reach N kilocycles/core "
        "(compile offset + host-model slope)",
        {s.label: s.points(MARKS) for s in series},
        x_label="kilocycles/core",
        y_label="seconds",
    ))
    # Crossover report (paper: 1x1 crossover at 76M cycles).
    live = next(s for s in series if s.label == f"LiveSim {sizes[0]}x{sizes[0]} (full simulation)")
    veri = next(s for s in series if s.label == f"Verilator {sizes[0]}x{sizes[0]}")
    crossing = fig7_crossover_kilocycles(live, veri)
    emit("1x1 crossover: Verilator passes LiveSim after "
         f"{crossing:.0f} kilocycles" if crossing else
         "1x1 crossover: none (one flow dominates)")
    # The from-checkpoint line is flat and < 2 s at every size (the
    # paper's headline property).
    for s in series:
        if "from checkpoint" in s.label:
            assert s.at(10_000_000) < 2.0


def test_bench_livesim_full_compile(benchmark, sizes):
    n = sizes[-1]
    source = build_pgas_source(n)

    def full_compile():
        compiler = LiveCompiler(source)
        return compiler.compile_top(mesh_top_name(n))

    result = benchmark.pedantic(full_compile, rounds=3, iterations=1)
    assert result.library


def test_bench_baseline_compile(benchmark, sizes):
    n = min(sizes[-1], 4)  # keep the default run fast
    netlist = elaborate(parse(build_pgas_source(n)), mesh_top_name(n))

    def baseline_compile():
        return BaselineCompiler(mode="replicate", budget_seconds=120).compile(
            netlist
        )

    result = benchmark.pedantic(baseline_compile, rounds=1, iterations=1)
    assert result.succeeded
