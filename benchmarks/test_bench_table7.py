"""Table VII: KHz / IPC / I$ MPKI / D$ MPKI / BR MPKI per size and
compilation style, via the host performance model."""


from repro.bench.reporting import format_table
from repro.bench.tables import table7, table7_formatted_rows
from repro.codegen.cost import design_cost
from repro.hdl import elaborate, parse
from repro.hostmodel.trace import TraceSynthesizer
from repro.riscv.pgas import build_pgas_source, mesh_top_name

from .conftest import emit


def test_table7_report(benchmark, sizes):
    rows = benchmark.pedantic(
        lambda: table7(sizes=list(sizes), trace_cycles=5,
                       verilator_na_at=16),
        rounds=1, iterations=1,
    )
    columns, body = table7_formatted_rows(rows)
    emit(format_table(
        "Table VII — simulation efficiency (host model, calibrated to "
        "the paper's 1x1 LiveSim = 1974 KHz)",
        columns,
        body,
        row_labels=["KHz", "IPC", "I$ MPKI", "D$ MPKI", "BR MPKI"],
    ))
    by_n = {r.n: r for r in rows}
    smallest, largest = sizes[0], sizes[-1]
    # The paper's qualitative claims:
    if by_n[smallest].verilator is not None:
        assert by_n[smallest].verilator.khz > by_n[smallest].livesim.khz
    if largest >= 4 and by_n[largest].verilator is not None:
        assert by_n[largest].livesim.khz > by_n[largest].verilator.khz
        assert by_n[largest].verilator.i_mpki > 10.0
        assert by_n[largest].livesim.i_mpki < 1.0


def test_bench_trace_synthesis(benchmark, sizes):
    n = sizes[-1]
    netlist = elaborate(parse(build_pgas_source(n)), mesh_top_name(n))
    cost = design_cost(netlist, "branch")

    def run_trace():
        return TraceSynthesizer(cost).run(cycles=4, warmup=1)

    stats = benchmark.pedantic(run_trace, rounds=2, iterations=1)
    assert stats.instructions > 0


def test_bench_cost_model(benchmark, sizes):
    n = sizes[-1]
    netlist = elaborate(parse(build_pgas_source(n)), mesh_top_name(n))

    def both_styles():
        return design_cost(netlist, "branch"), design_cost(netlist, "select")

    live, veri = benchmark(both_styles)
    # Code-footprint law: shared once vs replicated per instance.
    assert veri.code_bytes > live.code_bytes
