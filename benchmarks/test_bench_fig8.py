"""Figure 8: hot-reload ERD latency per mesh size.

The paper's claim: under 2 seconds for every size up to 16x16 (256
cores), flat in the instance count because parse+compile dominate and
happen once.  The benchmarked operation is a complete apply_change —
LiveParser -> LiveCompiler -> swap every instance -> checkpoint reload
-> replay.
"""

import itertools


from repro.bench.figures import fig8_bars
from repro.bench.reporting import format_table
from repro.bench.workloads import PGASWorkbench
from repro.riscv.patches import single_stage_patches

from .conftest import emit


def test_fig8_report(benchmark, size_results):
    bars = benchmark.pedantic(
        lambda: fig8_bars(size_results), rounds=1, iterations=1
    )
    emit(format_table(
        "Figure 8 — edit-run-debug latency per mesh size (ms)",
        ["cores", "parse", "compile", "swap", "reload", "replay",
         "total", "swapped insts"],
        [
            [
                bar.cores,
                round(1e3 * bar.parse_s, 1),
                round(1e3 * bar.compile_s, 1),
                round(1e3 * bar.swap_s, 1),
                round(1e3 * bar.reload_s, 1),
                round(1e3 * bar.replay_s, 1),
                round(1e3 * bar.total_s, 1),
                bar.swapped_instances,
            ]
            for bar in bars
        ],
        row_labels=[f"{bar.n}x{bar.n}" for bar in bars],
    ))
    for bar in bars:
        assert bar.under_two_seconds, (
            f"{bar.n}x{bar.n} ERD {bar.total_s:.2f}s breaks the 2 s goal"
        )


def test_bench_erd_loop(benchmark, sizes):
    """Benchmark one full ERD iteration at the largest size, cycling
    through the curated single-stage bug patches (each round applies a
    never-before-seen edit, like the paper's git-log bug fixes)."""
    n = sizes[-1]
    bench = PGASWorkbench(n, checkpoint_interval=50)
    bench.build_session()
    bench.run(160)
    patches = itertools.cycle(p.name for p in single_stage_patches())

    def erd_once():
        return bench.hot_reload(next(patches))

    report = benchmark.pedantic(erd_once, rounds=4, iterations=1)
    assert report.total_seconds < 2.0


def test_bench_swap_only(benchmark, sizes):
    """Isolate the swap cost (paper: 'the cost of copying that, even
    256 times, is still eclipsed by other parts')."""
    from repro.live.hotreload import HotReloader
    from repro.riscv.patches import get_patch

    n = sizes[-1]
    bench = PGASWorkbench(n, checkpoint_interval=50)
    session = bench.build_session()
    bench.run(60)
    pipe = session.pipe("uut")
    patch = get_patch("ex-branch-target")
    variants = []
    for source in (patch.inject(session.compiler.source),
                   session.compiler.source):
        session.compiler.update_source(source)
        variants.append(session.compiler.compile_top(bench.top).library)
    flip = itertools.cycle(variants)

    def swap_once():
        return HotReloader().swap_pipe(pipe, next(flip))

    report = benchmark.pedantic(swap_once, rounds=6, iterations=1)
    assert report.seconds < 1.0
