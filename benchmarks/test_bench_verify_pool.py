"""Fig. 6 on the persistent verifier pool: speedup vs workers.

Unlike ``test_bench_consistency`` (which measures the one-shot
pool-per-call path), this bench exercises the session-owned
:class:`~repro.live.consistency.VerifierPool`: the first verify pays
one design compile per worker, the second is served entirely from the
worker-side fingerprint caches — the steady state of a live session.
"""

import os

import pytest

from repro.bench.figures import verify_pool_scaling
from repro.bench.reporting import format_table

from .conftest import emit


def _emit_scaling(result) -> None:
    rows = [["serial", round(result.serial_wall_s, 3), None, None, None]]
    for workers in sorted(result.warm_wall_s):
        rows.append([
            workers,
            round(result.cold_wall_s[workers], 3),
            round(result.warm_wall_s[workers], 3),
            round(result.speedup(workers) or 0.0, 2),
            result.worker_compiles[workers],
        ])
    emit(format_table(
        "Fig. 6 — verification wall time vs workers "
        f"({result.segments} segments, persistent pool)",
        ["cold s", "warm s", "warm speedup", "compiles"],
        [row[1:] for row in rows],
        row_labels=[str(row[0]) for row in rows],
    ))


def test_verify_pool_speedup(benchmark):
    """4 workers on >= 8 segments must beat serial wall time once the
    worker design caches are warm.

    Segments are 240 cycles each so per-segment replay work dominates
    the per-future IPC cost (snapshot pickling) — with 40-cycle
    segments the overhead can mask the parallel win.
    """
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 cores for the 4-worker point")
    result = benchmark.pedantic(
        lambda: verify_pool_scaling(
            n=1, run_cycles=1920, interval=240, worker_counts=(4,)
        ),
        rounds=1, iterations=1,
    )
    _emit_scaling(result)
    assert result.all_consistent
    assert result.segments >= 8
    # Each worker compiled the design at most once across both verifies
    # (cold + warm); the warm pass was all cache hits.
    assert result.worker_compiles[4] <= 4
    assert result.cache_hits[4] >= result.segments
    assert result.warm_wall_s[4] < result.serial_wall_s


def test_verify_pool_scaling_report(benchmark):
    worker_counts = (2, 4) if (os.cpu_count() or 1) >= 4 else (2,)
    result = benchmark.pedantic(
        lambda: verify_pool_scaling(
            n=1, run_cycles=320, interval=40, worker_counts=worker_counts
        ),
        rounds=1, iterations=1,
    )
    _emit_scaling(result)
    assert result.all_consistent
