"""Fig. 6: checkpoint-delta consistency verification and its
parallel scaling."""

import os


from repro.bench.figures import consistency_scaling
from repro.bench.reporting import format_table
from repro.live.session import LiveSession
from repro.riscv import build_pgas_source
from repro.riscv.programs import boot_program, boot_program_spec, busy_counter

from .conftest import emit

ASM = busy_counter(10_000_000)


def test_consistency_scaling_report(benchmark):
    workers = (2, 4) if (os.cpu_count() or 1) >= 4 else (2,)
    result = benchmark.pedantic(
        lambda: consistency_scaling(
            n=1, run_cycles=400, interval=40, worker_counts=workers
        ),
        rounds=1, iterations=1,
    )
    rows = [[1, round(result.serial_wall_s, 3)]]
    for count, wall in result.parallel_wall_s.items():
        rows.append([count, round(wall, 3)])
    emit(format_table(
        "Figure 6 — consistency verification wall time vs workers "
        f"({result.checkpoints} checkpoints)",
        ["workers", "wall seconds"],
        rows,
    ))
    assert result.all_consistent


def test_bench_serial_verification(benchmark):
    session = LiveSession(build_pgas_source(1), checkpoint_interval=40)
    session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_1x1"))
    tb = session.load_testbench(
        boot_program(ASM, count=1), factory=boot_program_spec(ASM, count=1)
    )
    session.run(tb, "uut", 300)

    def verify():
        return session.verify_consistency("uut", workers=1)

    report = benchmark.pedantic(verify, rounds=2, iterations=1)
    assert report.all_consistent


def test_bench_repair_after_divergence(benchmark):
    """The §III-F recovery path: find the divergence, rebuild history."""
    from repro.riscv.patches import get_patch

    countdown = """
    li   s0, 1000000
loop:
    addi s0, s0, -1
    sd   s0, 0x200(zero)
    bnez s0, loop
    ecall
"""

    def diverge_and_repair():
        buggy = get_patch("id-imm-sign").inject(build_pgas_source(1))
        session = LiveSession(buggy, checkpoint_interval=40)
        session.inst_pipe("uut", session.stage_handle_for("pgas_mesh_1x1"))
        tb = session.load_testbench(
            boot_program(countdown, count=1),
            factory=boot_program_spec(countdown, count=1),
        )
        session.run(tb, "uut", 200)
        session.apply_change(
            get_patch("id-imm-sign").fix(session.compiler.source)
        )
        return session.verify_consistency("uut", repair=True)

    report = benchmark.pedantic(diverge_and_repair, rounds=2, iterations=1)
    assert not report.all_consistent  # divergence was found (then fixed)
