"""Table VIII: compilation time — LiveSim hot reload vs LiveSim full vs
the Verilator-like baseline (NA when the budget runs out)."""


from repro.bench.reporting import format_table
from repro.bench.tables import table8, table8_shape_checks
from repro.live.compiler_live import LiveCompiler
from repro.riscv.patches import get_patch
from repro.riscv.pgas import build_pgas_source, mesh_top_name

from .conftest import emit


def test_table8_report(benchmark, size_results):
    rows = benchmark.pedantic(
        lambda: table8(size_results), rounds=1, iterations=1
    )
    emit(format_table(
        "Table VIII — compilation time (seconds); NA = budget exceeded "
        "(the paper's 24 h Verilator timeout)",
        [f"{r.n}x{r.n}" for r in rows],
        [
            [round(r.hot_reload_s, 3) if r.hot_reload_s else None
             for r in rows],
            [round(r.livesim_full_s, 3) for r in rows],
            [round(r.verilator_s, 3) if r.verilator_s is not None else None
             for r in rows],
        ],
        row_labels=["LiveSim Hot Reload", "LiveSim Full", "Verilator"],
    ))
    checks = table8_shape_checks(rows)
    assert checks.get("hot_reload_under_2s", True), checks
    assert checks.get("hot_reload_sublinear", True), checks
    assert checks.get("baseline_slower_at_largest", True), checks


def test_bench_incremental_recompile(benchmark, sizes):
    """The hot-reload compile path: one changed stage module."""
    n = sizes[-1]
    source = build_pgas_source(n)
    compiler = LiveCompiler(source)
    compiler.compile_top(mesh_top_name(n))
    patch = get_patch("id-imm-sign")
    state = {"injected": False}

    def incremental():
        current = compiler.source
        edited = patch.fix(current) if state["injected"] else patch.inject(current)
        state["injected"] = not state["injected"]
        compiler.update_source(edited)
        return compiler.compile_top(mesh_top_name(n))

    result = benchmark.pedantic(incremental, rounds=4, iterations=1)
    # At most the edited module recompiles once the cache is warm.
    assert len(result.report.recompiled_keys) <= 1


def test_bench_comment_only_edit(benchmark, sizes):
    """LiveParser's short-circuit: comment edits must cost parsing only."""
    n = sizes[-1]
    source = build_pgas_source(n)
    compiler = LiveCompiler(source)
    compiler.compile_top(mesh_top_name(n))
    counter = {"i": 0}

    def comment_edit():
        counter["i"] += 1
        edited = compiler.source + f"\n// editing pass {counter['i']}\n"
        return compiler.update_source(edited)

    analysis = benchmark.pedantic(comment_edit, rounds=5, iterations=1)
    assert not analysis.behavioral
