"""§V-B: checkpointing overhead.

The paper measures 10-20% simulation slowdown with checkpointing on,
and a <3 MB checkpoint for the 256-core PGAS.  We measure the same two
quantities on this substrate.
"""


from repro.bench.figures import checkpoint_overhead
from repro.bench.reporting import format_table
from repro.bench.workloads import PGASWorkbench

from .conftest import emit


def test_checkpoint_overhead_report(benchmark, sizes):
    results = benchmark.pedantic(
        lambda: [checkpoint_overhead(n=n, cycles=300, interval=25)
                 for n in sizes[:2]],
        rounds=1, iterations=1,
    )
    rows = []
    for result in results:
        rows.append([
            result.n * result.n,
            round(result.hz_without, 1),
            round(result.hz_with, 1),
            round(result.overhead_percent, 1),
            result.checkpoints_taken,
            result.checkpoint_bytes,
        ])
    emit(format_table(
        "§V-B — checkpointing overhead (paper: 10-20 %)",
        ["cores", "Hz (off)", "Hz (on)", "overhead %", "taken",
         "bytes/checkpoint"],
        rows,
        row_labels=[f"{n}x{n}" for n in sizes[:2]],
    ))
    for row in rows:
        assert row[3] < 100  # bounded overhead


def test_checkpoint_size_scales_with_cores(benchmark, sizes):
    """Paper: the 256-core PGAS checkpoint is < 3 MB (dominated by the
    32 KB node memories).  Verify the per-core payload matches that
    arithmetic: ~33 KB/core."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per_core = {}
    for n in sizes[:2]:
        bench = PGASWorkbench(n, checkpoint_interval=50)
        session = bench.build_session()
        bench.run(5)
        checkpoint = session.chkp("uut")
        per_core[n] = checkpoint.total_bytes() / (n * n)
    emit(format_table(
        "Checkpoint payload (paper: <3 MB at 256 cores)",
        ["bytes/core", "projected 256-core MB"],
        [[round(v), round(v * 256 / 1e6, 2)] for v in per_core.values()],
        row_labels=[f"{n}x{n}" for n in per_core],
    ))
    for value in per_core.values():
        # 32 KB memory + architectural state, well under 3MB/256 cores.
        assert 33_000 < value < 12_000_000 / 256


def test_bench_checkpoint_capture(benchmark, sizes):
    n = sizes[-1]
    bench = PGASWorkbench(n, checkpoint_interval=1_000_000)
    session = bench.build_session()
    bench.run(10)
    pipe = session.pipe("uut")
    store = session.store("uut")

    def capture():
        return store.take(pipe, "1.0", 0)

    checkpoint = benchmark(capture)
    assert checkpoint.total_bytes() > 0
