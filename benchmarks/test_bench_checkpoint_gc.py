"""Fig. 2(c): checkpoint garbage collection — bounded population,
newest window intact, older tail thinned toward equal spacing."""


from repro.bench.reporting import format_table
from repro.live.checkpoint import Checkpoint, CheckpointStore, GCPolicy

from .conftest import emit


def synthetic_checkpoints(count, spacing=100):
    return [
        Checkpoint(id=i, cycle=i * spacing, snapshot=None, version="1.0",
                   op_index=0)
        for i in range(count)
    ]


def test_gc_policy_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    policy = GCPolicy(keep_latest=100, older_budget=100)
    rows = []
    for total in (50, 150, 500, 2_000, 10_000):
        checkpoints = synthetic_checkpoints(total)
        victims = policy.select_victims(checkpoints)
        survivors = total - len(victims)
        rows.append([total, len(victims), survivors])
        assert survivors <= 200
    emit(format_table(
        "Figure 2c — GC policy (keep 100 latest, thin older to ~100 "
        "equally spaced)",
        ["stream length", "collected", "surviving"],
        rows,
    ))


def test_bench_gc_selection(benchmark):
    policy = GCPolicy(keep_latest=100, older_budget=100)
    checkpoints = synthetic_checkpoints(5_000)

    def select():
        return policy.select_victims(checkpoints)

    victims = benchmark(select)
    assert len(victims) > 0


def test_bench_store_insert_with_gc(benchmark):
    """Steady-state insertion cost with GC in the loop."""
    store = CheckpointStore(
        interval=1, policy=GCPolicy(keep_latest=50, older_budget=25)
    )
    from repro import compile_design
    from repro.sim import Pipe
    from tests.conftest import COUNTER_SRC

    netlist, library = compile_design(COUNTER_SRC, "top")
    pipe = Pipe(netlist.top, library)
    pipe.set_inputs(rst=0)

    def insert():
        pipe.step(1)
        return store.take(pipe, "1.0", 0)

    benchmark(insert)
    assert len(store) <= 75
