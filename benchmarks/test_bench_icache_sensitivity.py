"""Ablation: the I$-size sensitivity behind Table VII's cliff.

The paper attributes Verilator's large-design slowdown to instruction
cache misses.  If that causal story is right, growing the modeled I$
must move the baseline's cliff to larger designs while leaving LiveSim
(whose shared-code footprint is constant) unaffected.  This bench
sweeps the I$ size and checks exactly that.
"""


from repro.bench.reporting import format_table
from repro.codegen.cost import design_cost
from repro.hdl import elaborate, parse
from repro.hostmodel.cache import CacheConfig
from repro.hostmodel.perf import HostMachine, PerfModel
from repro.riscv.pgas import build_pgas_source, mesh_top_name

from .conftest import emit

ICACHE_KB = (16, 32, 128, 1024)


def _costs(n):
    netlist = elaborate(parse(build_pgas_source(n)), mesh_top_name(n))
    return design_cost(netlist, "branch"), design_cost(netlist, "select")


def test_icache_sensitivity_report(benchmark, sizes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    n = min(sizes[-1], 4)
    live_cost, veri_cost = _costs(n)
    rows = []
    mpki = {}
    for kb in ICACHE_KB:
        machine = HostMachine(icache=CacheConfig(size_bytes=kb * 1024))
        model = PerfModel(machine)
        live = model.evaluate(live_cost, trace_cycles=4)
        veri = model.evaluate(veri_cost, trace_cycles=4)
        mpki[kb] = (live.i_mpki, veri.i_mpki)
        rows.append([
            kb, round(live.i_mpki, 2), round(veri.i_mpki, 2),
            round(live.ipc, 2), round(veri.ipc, 2),
        ])
    emit(format_table(
        f"I$-size ablation on the {n}x{n} PGAS (the Table VII causal story)",
        ["I$ KB", "LiveSim I$ MPKI", "Verilator I$ MPKI",
         "LiveSim IPC", "Verilator IPC"],
        rows,
    ))
    # LiveSim's shared code fits everywhere: flat, near-zero MPKI.
    assert all(live < 1.0 for live, _ in mpki.values())
    # The baseline thrashes a 32 KB I$ but is rescued by a big one —
    # cache capacity is the mechanism, exactly as the paper argues.
    assert mpki[32][1] > 20.0
    assert mpki[1024][1] < mpki[32][1] / 10


def test_bench_perf_model_eval(benchmark, sizes):
    n = min(sizes[-1], 4)
    live_cost, _ = _costs(n)
    model = PerfModel()
    result = benchmark(lambda: model.evaluate(live_cost, trace_cycles=3))
    assert result.khz > 0
