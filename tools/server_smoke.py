#!/usr/bin/env python
"""End-to-end smoke test for the LiveSim server over a real socket.

Starts ``python -m repro.server`` as a subprocess on an ephemeral port
with an on-disk artifact store, drives a scripted client session
(ldLib / instPipe / run / chkp / swapStage / lint / verify, plus a
reload refused by the static-analysis gate and forced with override),
asserts a clean shutdown, then restarts the server on the same store
and checks the warm path: the same design compiles entirely from disk
artifacts.  The cold leg also stands up the WebSocket gateway
(``repro.server.ws``) against the running server and drives the live
trace path through it: static page served, ``watch`` streamed value
changes matching a post-hoc ``trace`` read, and a bit-identical
``replay`` window.  A third leg boots the sharded frontend
(``--workers 2``),
SIGKILLs one worker mid-session, checks the session rehydrates on the
restarted worker from its journal + checkpoint, then resizes the pool
2->4->2 and checks a migrated session keeps its simulated state
through both moves.

Exit code 0 means every step passed.  Used by the ``server-smoke`` CI
job; also runnable by hand::

    PYTHONPATH=src python tools/server_smoke.py
"""

import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.server.client import LiveSimClient, ServerError  # noqa: E402

DESIGN = """
module adder #(parameter W = 8) (
  input clk,
  input [W-1:0] a,
  input [W-1:0] b,
  output [W-1:0] sum
);
  assign sum = a + b;
endmodule

module counter #(parameter W = 8) (
  input clk,
  input rst,
  input [W-1:0] step,
  output [W-1:0] count
);
  reg [W-1:0] count_q;
  wire [W-1:0] next;
  adder #(.W(W)) u_add (.clk(clk), .a(count_q), .b(step), .sum(next));
  assign count = count_q;
  always @(posedge clk) begin
    if (rst)
      count_q <= 0;
    else
      count_q <= next;
  end
endmodule

module top (
  input clk,
  input rst,
  output [7:0] c0,
  output [7:0] c1
);
  counter #(.W(8)) u0 (.clk(clk), .rst(rst), .step(8'd1), .count(c0));
  counter #(.W(8)) u1 (.clk(clk), .rst(rst), .step(8'd3), .count(c1));
endmodule
"""

# Same adder interface, +1 behaviour: loading this library is an edit
# (duplicate modules replace), and swapStage hot-swaps it into a pipe.
PATCH = """
module adder #(parameter W = 8) (
  input clk,
  input [W-1:0] a,
  input [W-1:0] b,
  output [W-1:0] sum
);
  assign sum = a + b + 8'd1;
endmodule
"""

# DESIGN with a combinational feedback loop added to top: the gate
# must refuse this reload (a *new* error finding) until overridden.
# The loop converges under fixpoint evaluation (fb is monotonically
# masked), so the forced swap still simulates.
LOOP_DESIGN = DESIGN.replace(
    "  counter #(.W(8)) u1 (.clk(clk), .rst(rst), .step(8'd3), .count(c1));",
    "  counter #(.W(8)) u1 (.clk(clk), .rst(rst), .step(8'd3), .count(c1));\n"
    "  wire [7:0] fb;\n"
    "  assign fb = fb & c0;",
)

# Sanitizer leg: a read-only lookup memory addressed through a masked
# part-select.  The edit drops the mask, so the 3-bit counter indexes
# past the 4-word memory — the instrumented replay must report it.
SAN_DESIGN = """
module lut (
  input clk,
  input rst,
  output [7:0] out
);
  reg [7:0] mem [0:3];
  reg [2:0] idx_q;
  assign out = mem[idx_q[1:0]];
  always @(posedge clk) begin
    if (rst) idx_q <= 0;
    else idx_q <= idx_q + 3'd1;
  end
endmodule
"""
SAN_EDIT = SAN_DESIGN.replace("mem[idx_q[1:0]]", "mem[idx_q]")

LISTEN_RE = re.compile(r"livesim server listening on ([\d.]+):(\d+)")


def check(condition, label):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        raise SystemExit(f"smoke step failed: {label}")


def start_server(store, workers=0, state_dir=None):
    argv = [sys.executable, "-m", "repro.server", "--port", "0",
            "--store", store]
    if workers:
        argv += ["--workers", str(workers)]
    if state_dir:
        argv += ["--state-dir", state_dir]
    proc = subprocess.Popen(
        argv,
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": SRC},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"  server: {line}")
        match = LISTEN_RE.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    raise SystemExit("server never announced its port")


def stop_server(proc, client):
    client.shutdown_server()
    client.close()
    output = proc.stdout.read()
    for line in output.splitlines():
        sys.stdout.write(f"  server: {line}\n")
    code = proc.wait(timeout=30)
    check(code == 0, f"server exited cleanly (code {code})")
    check("livesim server stopped" in output, "server logged its stop")


def cold_session(host, port, patch_path):
    client = LiveSimClient(host, port, timeout=60.0, read_timeout=120.0)
    info = client.open_session("smoke", DESIGN)
    check(info["handles"].get("top") == "stage2", "open: top is stage2")
    client.command("smoke", "instPipe p0, stage2")
    result = client.command("smoke", "run tb0, p0, 200")
    check(result["c0"] == 198, f"run: c0={result['c0']} (want 198)")
    cp = client.command("smoke", "chkp p0")
    check(cp["cycle"] == 200, "chkp at cycle 200")
    client.command("smoke", f"ldLib patch, {patch_path}")
    swap = client.command("smoke", "swapStage p0, u0.u_add")
    check(swap["swapped_instances"] == 1, "swapStage: 1 instance swapped")
    # The patched adder adds +1: c0 now steps by 2 per cycle.
    result = client.command("smoke", "run tb0, p0, 10")
    check(result["c0"] == 198 + 20,
          f"patched run: c0={result['c0']} (want 218)")
    client.command("smoke", "verify p0")
    event = client.wait_event(
        "verify_status",
        predicate=lambda e: e.data["state"] != "running",
        timeout=60.0,
    )
    check(event.data["state"] == "consistent",
          f"verify: state={event.data['state']}")
    report = client.command("smoke", "verifyWait p0")
    check(report["all_consistent"] is True, "verifyWait: all consistent")

    # Static analysis over the socket: the design is clean.
    lint = client.command("smoke", "lint p0")
    check(lint["_type"] == "AnalysisReport" and lint["findings"] == [],
          "lint: clean design, no findings")
    check(lint["analyzed_keys"] or lint["reused_keys"],
          "lint: analyzer covered the netlist")

    # A reload introducing a comb loop is refused by the gate...
    try:
        client.reload("smoke", LOOP_DESIGN)
        check(False, "gate: comb-loop reload was refused")
    except ServerError as exc:
        check(exc.kind == "gate" and "comb-loop" in exc.message,
              f"gate: comb-loop reload refused ([{exc.kind}])")
    outputs = client.command("smoke", "peek p0")
    check(outputs["c0"] == 218, "gate: blocked reload rolled back")
    # ...and lands when forced with override.
    forced = client.reload("smoke", LOOP_DESIGN, override=True)
    check(forced["gate_overridden"] is True, "gate: override accepted")
    check(any(f["kind"] == "comb-loop" for f in forced["new_findings"]),
          "gate: override reports the comb-loop finding")
    event = client.wait_event("lint_findings", timeout=30.0)
    check(any(f["kind"] == "comb-loop" for f in event.data["findings"]),
          "lint_findings event streams the comb-loop")
    stats = client.stats()
    check(stats["store"]["artifacts"] >= 3,
          f"store holds {stats['store']['artifacts']} artifacts")
    return client


def sanitize_session(client):
    """Sanitized session over the socket: ``san report``, then an edit
    that introduces an out-of-bounds memory index; the finding must
    stream back as a ``lint_findings`` event."""
    info = client.open_session("san", SAN_DESIGN)
    handle = info["handles"]["lut"]
    status = client.command("san", "san")
    check(status["mode"] == "off" and status["instrumented"] is False,
          "san: sessions start uninstrumented")
    toggled = client.command("san", "san report")
    check(toggled["mode"] == "report", "san report: mode toggled")
    client.command("san", f"instPipe p0, {handle}")
    client.command("san", "run tb0, p0, 30")
    status = client.command("san", "san")
    check(status["instrumented"] is True and status["findings"] == 0,
          "san: clean design simulates with zero findings")
    client.reload("san", SAN_EDIT)
    event = client.wait_event("lint_findings", timeout=30.0)
    oob = [f for f in event.data["new_findings"]
           if f["kind"] == "san-oob-index"]
    check(oob and oob[0]["module"] == "lut",
          "san: oob finding streamed as lint_findings event")
    check("memory index" in oob[0]["message"],
          f"san: finding names the index ({oob[0]['message']!r})")
    status = client.command("san", "san")
    check(status["hits"]["san-oob-index"] > 0,
          f"san: hit counters dumped ({status['hits']})")
    client.close_session("san")


def gateway_session(host, port):
    """WebSocket gateway leg: bridge a masked-frame stdlib client to
    the running server, stream live value changes for a watched signal,
    and check them against a post-hoc ``trace`` read and a time-travel
    ``replay`` window."""
    from repro.server.ws import (
        OP_TEXT,
        FrameParser,
        WsGateway,
        client_handshake,
        encode_frame,
        iter_messages,
    )

    gateway = WsGateway(upstream_host=host, upstream_port=port, port=0)
    ws_host, ws_port = gateway.start()
    try:
        # Plain HTTP GET (no upgrade) serves the waveform page.
        plain = socket.create_connection((ws_host, ws_port), timeout=10)
        plain.sendall(b"GET / HTTP/1.1\r\nHost: smoke\r\n\r\n")
        page = b""
        while b"</html>" not in page:
            chunk = plain.recv(65536)
            if not chunk:
                break
            page += chunk
        plain.close()
        check(b"200 OK" in page and b"LiveSim live waveforms" in page,
              "gateway: static waveform page served")

        sock = socket.create_connection((ws_host, ws_port), timeout=30)
        client_handshake(sock)
        check(True, "gateway: RFC 6455 handshake accepted")
        parser = FrameParser(require_mask=False)
        messages = iter_messages(sock, parser)
        state = {"rid": 0, "events": []}

        def request(obj):
            state["rid"] += 1
            obj["id"] = state["rid"]
            sock.sendall(encode_frame(
                json.dumps(obj).encode(), OP_TEXT, mask=os.urandom(4)
            ))
            for _, payload in messages:
                msg = json.loads(payload)
                if "event" in msg:
                    state["events"].append(msg)
                    continue
                if msg.get("id") == state["rid"]:
                    if not msg.get("ok"):
                        raise SystemExit(f"gateway request failed: {msg}")
                    return msg["value"]
            raise SystemExit("gateway closed mid-request")

        pong = request({"cmd": "ping"})
        check(pong.get("pong") is True, "gateway: ping bridged")
        request({"cmd": "open", "session": "ws", "source": DESIGN})
        request({"cmd": "cmd", "session": "ws",
                 "line": "instPipe p0, stage2"})
        watched = request({"cmd": "watch", "session": "ws",
                           "pipe": "p0", "signal": "c0"})
        check(watched["signal"] == "c0" and not watched["missing"],
              "gateway: watch armed a live probe")
        request({"cmd": "cmd", "session": "ws", "line": "run tb0, p0, 40"})

        # Drain value_change events (change-only: reset-held values
        # emit once), then read the full window post-hoc.
        streamed = {}
        sock.settimeout(0.5)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and len(streamed) < 38:
            try:
                _, payload = next(iter_messages(sock, parser))
            except (socket.timeout, StopIteration):
                continue
            msg = json.loads(payload)
            if msg.get("event") != "value_change":
                continue
            for event in msg["data"]["events"]:
                if "value" in event:
                    streamed[event["cycle"]] = event["value"]
        sock.settimeout(30)
        check(len(streamed) >= 38,
              f"gateway: {len(streamed)} value changes streamed")

        window = request({"cmd": "trace", "session": "ws", "pipe": "p0",
                          "signal": "c0", "start": 0, "end": 40})
        post = {cycle: value for cycle, value in window["samples"]}
        mismatches = [
            cycle for cycle, value in streamed.items()
            if post.get(cycle) != value
        ]
        check(not mismatches,
              "gateway: streamed events match the post-hoc trace")

        replay = request({"cmd": "replay", "session": "ws", "pipe": "p0",
                          "start": 10, "end": 30, "signals": ["c0"]})
        replayed = {cycle: value
                    for cycle, value in replay["signals"]["c0"]}
        check(all(replayed.get(c) == post.get(c) for c in range(10, 30)),
              "gateway: replay window bit-identical to live trace")
        removed = request({"cmd": "unwatch", "session": "ws",
                           "pipe": "p0", "signal": "c0"})
        check(removed["removed"] is True, "gateway: unwatch dropped probe")
        request({"cmd": "close", "session": "ws"})
        sock.close()
    finally:
        gateway.shutdown()


def warm_session(host, port):
    client = LiveSimClient(host, port, timeout=60.0, read_timeout=120.0)
    client.open_session("warm", DESIGN)
    client.command("warm", "instPipe p0, stage2")
    result = client.command("warm", "run tb0, p0, 50")
    check(result["c0"] == 48, "warm run: rehydrated modules simulate")
    hits = client.stats()["metrics"]["counters"].get(
        "compile.store_hits", 0
    )
    check(hits >= 3, f"warm restart: compile.store_hits={hits} (want >=3)")
    return client


def sharded_session(host, port):
    """Sharded leg: two sessions on different workers, one worker
    SIGKILLed mid-session; its session must come back on the restarted
    worker with journal+checkpoint state intact, while the other
    worker's session is untouched."""
    from repro.server.shard import HashRing

    # Pick names the frontend's consistent-hash ring places on worker
    # 0 and worker 1 respectively (same ring construction: 2 nodes,
    # default replica count).
    ring = HashRing(range(2))
    names, i = {}, 0
    while len(names) < 2:
        name = f"shard-{i}"
        names.setdefault(ring.lookup(name), name)
        i += 1
    victim, survivor = names[0], names[1]

    client = LiveSimClient(host, port, timeout=60.0, read_timeout=120.0)
    pong = client.ping()
    check(pong.get("sharded") is True and pong.get("workers") == 2,
          "sharded: ping reports 2 workers")
    client.open_session(victim, DESIGN)
    client.open_session(survivor, DESIGN)
    client.command(victim, "instPipe p0, stage2")
    client.command(survivor, "instPipe p0, stage2")
    result = client.command(victim, "run tb0, p0, 200")
    check(result["c0"] == 198, f"sharded run: c0={result['c0']} (want 198)")
    cp = client.command(victim, "chkp p0")
    check(cp["cycle"] == 200, "sharded chkp at cycle 200")
    client.command(survivor, "run tb0, p0, 50")

    stats = client.stats()
    by_id = {w["id"]: w for w in stats["workers"]}
    check(by_id[0]["sessions"] == 1 and by_id[1]["sessions"] == 1,
          "sharded: one session per worker")
    os.kill(by_id[0]["pid"], 9)

    # The next command to the dead worker waits for restart +
    # rehydration (journal replay + checkpoint restore), then runs.
    outputs = client.command(victim, "peek p0")
    check(outputs["c0"] == 198,
          f"rehydrate: checkpointed state intact (c0={outputs['c0']})")
    result = client.command(victim, "run tb0, p0, 10")
    check(result["c0"] == 208,
          f"rehydrate: simulation continues (c0={result['c0']})")
    outputs = client.command(survivor, "peek p0")
    check(outputs["c0"] == 48,
          "rehydrate: other worker's session untouched")

    # Event streams still reach this client after the session moved to
    # the restarted worker process.
    client.command(victim, "verify p0")
    event = client.wait_event(
        "verify_status",
        predicate=lambda e: e.data["state"] != "running",
        timeout=60.0,
    )
    check(event.session == victim
          and event.data["state"] == "consistent",
          "rehydrate: verify events route to the client")

    stats = client.stats()
    by_id = {w["id"]: w for w in stats["workers"]}
    check(by_id[0]["alive"] and by_id[0]["restarts"] == 1,
          "sharded: worker 0 restarted exactly once")
    client.close_session(victim)
    client.close_session(survivor)
    return client


def resize_step(client):
    """Resize 2->4->2: a session whose ring owner changes must migrate
    with its simulated state intact — the persist step checkpoints at
    the *current* cycle, so a migration loses nothing even without an
    explicit chkp."""
    from repro.server.shard import HashRing

    ring2, ring4 = HashRing(range(2)), HashRing(range(4))
    i = 0
    while ring4.lookup(f"mig-{i}") == ring2.lookup(f"mig-{i}"):
        i += 1
    name = f"mig-{i}"

    client.open_session(name, DESIGN)
    client.command(name, "instPipe p0, stage2")
    result = client.command(name, "run tb0, p0, 120")
    check(result["c0"] == 118, f"resize prep: c0={result['c0']} (want 118)")

    value = client.resize(4)
    check(value["workers"] == 4 and value["previous"] == 2,
          "resize: pool grew 2 -> 4")
    check(name in value["migrated"],
          f"resize: session {name} migrated to a new worker")
    placed = next(s["worker"] for s in client.sessions()
                  if s["session"] == name)
    check(placed == ring4.lookup(name),
          f"resize: session landed on ring-assigned worker {placed}")
    outputs = client.command(name, "peek p0")
    check(outputs["c0"] == 118,
          "resize: checkpointed state survived the migration")

    value = client.resize(2)
    check(value["workers"] == 2 and value["retired"] == [2, 3],
          "resize: pool shrank 4 -> 2, high workers retired")
    result = client.command(name, "run tb0, p0, 10")
    check(result["c0"] == 128,
          "resize: session simulates after moving back")
    stats = client.stats()
    check(sorted(w["id"] for w in stats["workers"]) == [0, 1],
          "resize: stats shows the shrunk pool")
    client.close_session(name)


def main():
    with tempfile.TemporaryDirectory(prefix="livesim-smoke-") as tmp:
        store = os.path.join(tmp, "artifacts")
        patch_path = os.path.join(tmp, "patch.v")
        with open(patch_path, "w") as fh:
            fh.write(PATCH)

        print("[1/3] cold server: scripted session")
        proc, host, port = start_server(store)
        try:
            client = cold_session(host, port, patch_path)
            print("      sanitized session: san report + oob edit")
            sanitize_session(client)
            print("      websocket gateway: watch / trace / replay")
            gateway_session(host, port)
        except BaseException:
            proc.kill()
            raise
        stop_server(proc, client)

        print("[2/3] warm restart: same store, zero recompiles")
        proc, host, port = start_server(store)
        try:
            client = warm_session(host, port)
        except BaseException:
            proc.kill()
            raise
        stop_server(proc, client)

        print("[3/3] sharded mode: worker kill + rehydration + resize")
        proc, host, port = start_server(
            store, workers=2, state_dir=os.path.join(tmp, "state")
        )
        try:
            client = sharded_session(host, port)
            print("      live resize: 2 -> 4 -> 2 with migration")
            resize_step(client)
        except BaseException:
            proc.kill()
            raise
        stop_server(proc, client)

    print("server smoke: all steps passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
