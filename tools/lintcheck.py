#!/usr/bin/env python
"""Offline approximation of the CI lint job (``ruff check .``).

The CI workflow runs ruff with the rule set from ``pyproject.toml``
(E4/E5/E7/E9, pyflakes F, isort I).  This script re-implements the
high-signal subset with only the standard library, for environments
where ruff isn't installable.  It is intentionally conservative: a
clean run here is strong (not perfect) evidence the ruff job passes.

Checks:

* E9    — syntax errors (``compile``)
* E401  — multiple imports on one line
* E402  — module-level import not at top of file
* E501  — line too long (honours the codegen per-file ignore)
* E711/E712 — comparisons to None/True/False
* E722  — bare ``except:``
* E731  — lambda assignment
* F401  — unused module-level import (``__all__``-aware)
* F541  — f-string without placeholders
* F811  — redefinition of an unused top-level name
* F841  — local variable assigned but never used (simple cases)
* I001  — import block ordering (ruff/isort defaults: sections,
          straight-before-from, furthest-to-closest relatives)

Usage: ``python tools/lintcheck.py [paths...]`` (default: repo root).
Exits non-zero when findings exist.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

LINE_LENGTH = 100
E501_IGNORED_DIRS = ("src/repro/codegen",)
FIRST_PARTY = ("repro", "tests", "benchmarks")

try:
    STDLIB = set(sys.stdlib_module_names)
except AttributeError:  # pragma: no cover - python < 3.10
    STDLIB = set()


class Finding:
    def __init__(self, path: Path, line: int, code: str, message: str):
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def iter_py_files(roots: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            files.append(root)
            continue
        for path in sorted(root.rglob("*.py")):
            parts = set(path.parts)
            if {".git", "build", "dist", "__pycache__", ".venv"} & parts:
                continue
            files.append(path)
    return files


# ---------------------------------------------------------------------------
# Text-level checks
# ---------------------------------------------------------------------------


def check_text(path: Path, text: str, findings: List[Finding]) -> None:
    ignore_e501 = any(str(path).startswith(d) for d in E501_IGNORED_DIRS)
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "# noqa" in line:
            continue
        if not ignore_e501 and len(line) > LINE_LENGTH:
            findings.append(Finding(
                path, lineno, "E501",
                f"line too long ({len(line)} > {LINE_LENGTH})",
            ))
        stripped = line.strip()
        if re.match(r"^import \w+(\.\w+)*\s*,", stripped):
            findings.append(Finding(
                path, lineno, "E401", "multiple imports on one line"
            ))
        if re.search(r"[=!]=\s*None\b", stripped):
            findings.append(Finding(
                path, lineno, "E711", "comparison to None (use `is`)"
            ))
        if re.search(r"[=!]=\s*(True|False)\b", stripped):
            findings.append(Finding(
                path, lineno, "E712", "comparison to True/False"
            ))
        if re.match(r"^except\s*:", stripped):
            findings.append(Finding(path, lineno, "E722", "bare except"))


# ---------------------------------------------------------------------------
# AST-level checks
# ---------------------------------------------------------------------------


def module_all(tree: ast.Module) -> List[str]:
    names: List[str] = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.append(element.value)
    return names


def used_names(tree: ast.Module) -> set:
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    # Quoted annotations ("Optional[WorkerContext]") count as usage —
    # but only strings in annotation position, matching pyflakes.
    annotations: List[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                if arg.annotation is not None:
                    annotations.append(arg.annotation)
            if node.returns is not None:
                annotations.append(node.returns)
        elif isinstance(node, ast.AnnAssign):
            annotations.append(node.annotation)
    for annotation in annotations:
        for node in ast.walk(annotation):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                for token in re.findall(
                    r"[A-Za-z_][A-Za-z0-9_]*", node.value
                ):
                    used.add(token)
    return used


def check_unused_imports(
    path: Path, tree: ast.Module, lines: List[str], findings: List[Finding]
) -> None:
    exported = set(module_all(tree))
    used = used_names(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            entries = [
                (alias, (alias.asname or alias.name).split(".")[0])
                for alias in node.names
            ]
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            entries = [
                (alias, alias.asname or alias.name) for alias in node.names
            ]
        else:
            continue
        if "# noqa" in lines[node.lineno - 1]:
            continue
        for alias, bound in entries:
            if bound == "*":
                continue
            if alias.asname is not None and alias.asname == alias.name:
                continue  # redundant alias = explicit re-export
            if bound in exported or bound in used:
                continue
            findings.append(Finding(
                path, node.lineno, "F401",
                f"{bound!r} imported but unused",
            ))


def check_fstrings(path: Path, text: str, findings: List[Finding]) -> None:
    """Token-based F541 so implicitly-concatenated parts are seen
    individually and format specs (`:.2f`) don't confuse the check."""
    import io
    import tokenize

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except tokenize.TokenError:  # pragma: no cover - defensive
        return
    for token in tokens:
        if token.type != tokenize.STRING:
            continue
        match = re.match(r"^([A-Za-z]*)['\"]", token.string)
        if match is None or "f" not in match.group(1).lower():
            continue
        if "{" not in token.string:
            findings.append(Finding(
                path, token.start[0], "F541",
                "f-string without placeholders",
            ))


def check_lambda_assignment(
    path: Path, tree: ast.Module, findings: List[Finding]
) -> None:
    for node in ast.walk(tree):
        value = None
        if isinstance(node, ast.Assign):
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value = node.value
        if isinstance(value, ast.Lambda):
            findings.append(Finding(
                path, node.lineno, "E731", "lambda assigned to a name"
            ))


def check_late_imports(
    path: Path, tree: ast.Module, lines: List[str],
    findings: List[Finding],
) -> None:
    seen_code = False
    for node in tree.body:
        if isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Constant
        ):
            continue  # docstring / string constant
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if seen_code and "# noqa" not in lines[node.lineno - 1]:
                findings.append(Finding(
                    path, node.lineno, "E402",
                    "module-level import not at top of file",
                ))
            continue
        if isinstance(node, ast.If):
            # `if TYPE_CHECKING:` / version guards around imports are
            # conventional; don't count them as code.
            continue
        seen_code = True


def check_unused_locals(
    path: Path, tree: ast.Module, findings: List[Finding]
) -> None:
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        assigned: Dict[str, int] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    assigned.setdefault(target.id, node.lineno)
        if not assigned:
            continue
        loaded = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
            elif isinstance(node, (ast.AugAssign, ast.Global, ast.Nonlocal)):
                if isinstance(node, ast.AugAssign):
                    if isinstance(node.target, ast.Name):
                        loaded.add(node.target.id)
                else:
                    loaded.update(node.names)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                loaded.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", node.value))
        for name, lineno in sorted(assigned.items()):
            if name not in loaded:
                findings.append(Finding(
                    path, lineno, "F841",
                    f"local variable {name!r} assigned but never used",
                ))


def check_redefinitions(
    path: Path, tree: ast.Module, findings: List[Finding]
) -> None:
    defined: Dict[str, int] = {}
    for node in tree.body:
        names: List[Tuple[str, int]] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.append((node.name, node.lineno))
        elif isinstance(node, ast.Import):
            names.extend(
                ((a.asname or a.name).split(".")[0], node.lineno)
                for a in node.names
            )
        elif isinstance(node, ast.ImportFrom):
            names.extend(
                (a.asname or a.name, node.lineno)
                for a in node.names
                if a.name != "*"
            )
        for name, lineno in names:
            if name in defined:
                findings.append(Finding(
                    path, lineno, "F811",
                    f"redefinition of {name!r} "
                    f"(first defined line {defined[name]})",
                ))
            defined[name] = lineno


# ---------------------------------------------------------------------------
# Import ordering (I001 approximation)
# ---------------------------------------------------------------------------


def import_section(node) -> int:
    """0=future, 1=stdlib, 2=third-party, 3=first-party, 4=relative."""
    if isinstance(node, ast.ImportFrom):
        if node.level > 0:
            return 4
        module = node.module or ""
    else:
        module = node.names[0].name
    root = module.split(".")[0]
    if root == "__future__":
        return 0
    if root in STDLIB:
        return 1
    if root in FIRST_PARTY:
        return 3
    return 2


def import_sort_key(node) -> tuple:
    """Approximate ruff/isort default ordering within a section."""
    if isinstance(node, ast.Import):
        # Straight imports sort before from-imports.
        return (0, node.names[0].name.lower())
    level = node.level
    module = node.module or ""
    # furthest-to-closest: more dots first.
    return (1, -level, module.lower())


def check_import_order(
    path: Path, tree: ast.Module, lines: List[str], findings: List[Finding]
) -> None:
    # Contiguous top-of-module import block (docstring allowed first).
    block: List = []
    for node in tree.body:
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            if not block:
                continue
            break
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if "# noqa" in lines[node.lineno - 1]:
                return
            block.append(node)
        else:
            break
    if len(block) < 2:
        return
    keys = [(import_section(n), import_sort_key(n)) for n in block]
    if keys != sorted(keys):
        ordered = sorted(zip(keys, block), key=lambda p: p[0])
        want = ", ".join(_import_repr(n) for _, n in ordered)
        findings.append(Finding(
            path, block[0].lineno, "I001",
            f"import block unsorted; expected order: {want}",
        ))


def _import_repr(node) -> str:
    if isinstance(node, ast.Import):
        return node.names[0].name
    return "." * node.level + (node.module or "")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def check_file(path: Path) -> List[Finding]:
    findings: List[Finding] = []
    text = path.read_text()
    lines = text.splitlines()
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        findings.append(Finding(
            path, exc.lineno or 0, "E9", f"syntax error: {exc.msg}"
        ))
        return findings
    check_text(path, text, findings)
    check_unused_imports(path, tree, lines, findings)
    check_fstrings(path, text, findings)
    check_lambda_assignment(path, tree, findings)
    check_late_imports(path, tree, lines, findings)
    check_unused_locals(path, tree, findings)
    check_redefinitions(path, tree, findings)
    check_import_order(path, tree, lines, findings)
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    roots = [Path(arg) for arg in argv] or [Path(".")]
    findings: List[Finding] = []
    files = iter_py_files(roots)
    for path in files:
        findings.extend(check_file(path))
    for finding in findings:
        print(finding)
    print(f"{len(findings)} finding(s) in {len(files)} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
